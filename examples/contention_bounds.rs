//! The §5.3 bounds and rule of thumb, visualised: for any homogeneous
//! all-to-all pattern the response time lives in
//! `(W + 2St + 2So, W + 2St + 3.46So)` and "contention costs about one extra
//! handler".
//!
//! ```text
//! cargo run --release --example contention_bounds
//! ```

use lopc::model::all_to_all::upper_bound_constant;
use lopc::prelude::*;
use lopc::report::{render_chart, ChartOptions, Figure, Series};

fn main() {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    println!("eq. 5.12 bounds for P=32, St=25, So=200, C^2=0");
    println!(
        "kappa(C^2): kappa(0)={:.3} (paper: 3.46), kappa(1)={:.3}, kappa(2)={:.3}\n",
        upper_bound_constant(0.0),
        upper_bound_constant(1.0),
        upper_bound_constant(2.0)
    );

    let ws: Vec<f64> = (1..=11).map(|i| 2f64.powi(i)).collect();
    let mut fig = Figure::new(
        "Contention cost C = R - (W + 2St + 2So) vs work",
        "W (cycles)",
        "contention (cycles)",
    );
    fig.push(Series::from_fn("LoPC contention", &ws, |w| {
        AllToAll::new(machine, w).solve().unwrap().contention
    }));
    fig.push(Series::from_fn("one handler (rule of thumb)", &ws, |_| {
        machine.s_o
    }));
    fig.push(Series::from_fn("upper bound 1.46*So", &ws, |_| {
        (upper_bound_constant(0.0) - 2.0) * machine.s_o
    }));

    // Simulator crosses at a few points.
    let mut sim_pts = Vec::new();
    for &w in &[4.0, 64.0, 1024.0] {
        let wl = AllToAllWorkload::new(machine, w);
        let r = lopc::sim::run(&wl.sim_config(11)).unwrap().aggregate.mean_r;
        sim_pts.push((w, r - machine.contention_free_response(w)));
    }
    fig.push(Series::new("simulator", sim_pts));

    let opts = ChartOptions {
        log_x: true,
        ..Default::default()
    };
    println!("{}", render_chart(&fig, &opts));

    for &w in &[0.0, 64.0, 1024.0] {
        let sol = AllToAll::new(machine, w).solve().unwrap();
        println!(
            "W={w:>6.0}: R={:>8.1}  contention={:.1} cycles = {:.2} handlers \
             (Rw-W {:.0}, Rq-So {:.0}, Ry-So {:.0})",
            sol.r,
            sol.contention,
            sol.contention / machine.s_o,
            sol.contention_rw(w),
            sol.contention_rq(machine.s_o),
            sol.contention_ry(machine.s_o),
        );
    }
    println!("\nEvery point is within one-and-a-half handler times of the naive LogP");
    println!("prediction — but never below it: that is the LoPC contention law.");
}
