//! Work-pile server allocation (§6): use LoPC to choose how many of a
//! machine's nodes should serve work instead of doing it, and check the
//! choice against simulation.
//!
//! ```text
//! cargo run --release --example workpile
//! ```

use lopc::prelude::*;
use lopc::report::{render_chart, ChartOptions, Figure, Series};

fn main() {
    // A 32-node machine handing out chunks that take ~1000 cycles, with
    // 131-cycle handlers (the Figure 6-2 configuration).
    let machine = Machine::new(32, 50.0, 131.0).with_c2(0.0);
    let w = 1000.0;
    let model = ClientServer::new(machine, w);

    // Closed-form answer (eq. 6.8).
    let ps_cont = model.optimal_servers_continuous();
    let ps_star = model.optimal_servers().expect("model solves");
    println!("Work-pile on P=32, So=131, St=50, W=1000, C^2=0");
    println!("eq. 6.8 optimal servers: {ps_cont:.2} (continuous) -> Ps* = {ps_star}\n");

    // Sweep the whole split, model vs simulator.
    let mut model_pts = Vec::new();
    let mut sim_pts = Vec::new();
    for ps in 1..machine.p {
        let m = model.throughput(ps).unwrap();
        let wl = Workpile::new(machine, w, ps);
        let x_sim = lopc::sim::run(&wl.sim_config(100 + ps as u64))
            .unwrap()
            .aggregate
            .throughput;
        model_pts.push((ps as f64, m.x));
        sim_pts.push((ps as f64, x_sim));
        let marker = if ps == ps_star {
            "  <= eq. 6.8 optimum"
        } else {
            ""
        };
        println!(
            "  Ps={ps:>2}: model X={:.5}  sim X={:.5}  (Qs={:.2}, Us={:.2}){marker}",
            m.x, x_sim, m.qs, m.us
        );
    }

    let fig = Figure::new(
        "Work-pile throughput vs server count",
        "servers Ps",
        "throughput X (chunks/cycle)",
    )
    .with_series(Series::new("LoPC", model_pts))
    .with_series(Series::new("simulator", sim_pts));
    println!("\n{}", render_chart(&fig, &ChartOptions::default()));

    let sim_best = sim_pts_argmax(&fig.series[1].points);
    println!("simulated optimum: Ps = {sim_best}; LoPC picked {ps_star}.");
}

fn sim_pts_argmax(points: &[(f64, f64)]) -> usize {
    points
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|&(x, _)| x as usize)
        .unwrap_or(0)
}
