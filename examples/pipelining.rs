//! The §7 future-work extension in action: overlap `k` requests per cycle
//! (fork-join) instead of blocking on each one, and see how much of the
//! round-trip latency can be hidden — model vs simulator.
//!
//! ```text
//! cargo run --release --example pipelining
//! ```

use lopc::prelude::*;
use lopc::report::Table;

fn main() {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let w = 2000.0;

    println!("Fork-join fan-out (Section 7 extension), P=32, St=25, So=200, W=2000\n");
    let mut table = Table::new([
        "k", "model R", "sim R", "err %", "serial R", "speedup", "Uq",
    ]);

    for k in [1u32, 2, 4, 8] {
        let model = ForkJoin::new(machine, w, k);
        let sol = model.solve().expect("model solves");

        let wl = BulkSync::new(machine, w, k);
        let sim = lopc::sim::run(&wl.sim_config(5)).unwrap().aggregate.mean_r;

        // Serial baseline: the same k requests issued as blocking cycles.
        let serial_wl = AllToAllWorkload::new(machine, w / k as f64);
        let serial = lopc::sim::run(&serial_wl.sim_config(5))
            .unwrap()
            .aggregate
            .mean_r
            * k as f64;

        table.row([
            format!("{k}"),
            format!("{:.0}", sol.r),
            format!("{sim:.0}"),
            format!("{:+.1}", (sol.r - sim) / sim * 100.0),
            format!("{serial:.0}"),
            format!("{:.2}x", serial / sim),
            format!("{:.2}", sol.uq),
        ]);
    }
    println!("{}", table.render());
    println!("Overlapping hides request round-trips (speedup grows with k) until the");
    println!("home node saturates on serialised reply handling (watch Uq climb).");
    println!("The fork-join model is an explicit approximation — the thesis left");
    println!("non-blocking communication to future work; err % shows its envelope.");
}
