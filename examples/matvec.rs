//! The §3 worked example end-to-end: characterise a cyclically-distributed
//! matrix–vector multiply, predict its runtime with LoPC, and validate by
//! simulating the whole multiply — including the synchronisation effect the
//! thesis's introduction discusses (Brewer & Kuszmaul's CM-5 observation).
//!
//! ```text
//! cargo run --release --example matvec
//! ```

use lopc::prelude::*;
use lopc::report::Table;

fn main() {
    println!("Matrix-vector multiply (Section 3 of the thesis)\n");

    let mut table = Table::new([
        "instance",
        "W",
        "n",
        "LogP n*Rcf",
        "LoPC n*R",
        "sim makespan",
        "LoPC err %",
    ]);

    for (n_dim, p) in [(256usize, 8usize), (512, 16), (1024, 32)] {
        let machine = Machine::new(p, 25.0, 200.0).with_c2(0.0);
        let mv = MatVec::new(n_dim, machine, 4.0); // 4-cycle multiply-add
        let predicted = mv.predicted_runtime().expect("model solves");
        let report = lopc::sim::run(&mv.sim_config(7)).expect("valid config");
        table.row([
            format!("N={n_dim} P={p}"),
            format!("{:.1}", mv.w()),
            format!("{}", mv.n_msgs()),
            format!("{:.0}", mv.logp_runtime()),
            format!("{predicted:.0}"),
            format!("{:.0}", report.makespan),
            format!(
                "{:+.1}",
                (predicted - report.makespan) / report.makespan * 100.0
            ),
        ]);
    }
    println!("{}", table.render());

    // The Brewer-Kuszmaul synchronisation effect: a perfectly deterministic
    // schedule is a sequence of contention-free permutations; a few percent
    // of work jitter decays it into the random regime LoPC models.
    println!("Synchronisation ablation (N=256, P=8):");
    let machine = Machine::new(8, 25.0, 200.0).with_c2(0.0);
    for jitter in [0.0, 0.02, 0.10, 0.20] {
        let mv = MatVec::new(256, machine, 4.0).with_jitter(jitter);
        let report = lopc::sim::run(&mv.sim_config(7)).expect("valid config");
        println!(
            "  jitter {jitter:>4.2}: makespan {:>9.0}   (LogP floor {:.0}, LoPC {:.0})",
            report.makespan,
            mv.logp_runtime(),
            mv.predicted_runtime().unwrap()
        );
    }
    println!("\nLockstep runs sit on the LogP floor; any realistic jitter climbs to LoPC.");
}
