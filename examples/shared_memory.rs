//! Shared-memory modeling (§5.1): compare a message-passing machine, where
//! handlers interrupt computation, against a machine with a per-node
//! protocol processor (the shared-memory abstraction), where they do not —
//! the architectural trade-off study the thesis proposes LoPC for.
//!
//! ```text
//! cargo run --release --example shared_memory
//! ```

use lopc::prelude::*;
use lopc::report::Table;

fn main() {
    println!("Protocol-processor study (Section 5.1), P=32, St=25, W=800, C^2=0\n");

    let mut table = Table::new([
        "So",
        "MP model R",
        "MP sim R",
        "PP model R",
        "PP sim R",
        "PP speedup",
    ]);

    for so in [50.0, 100.0, 200.0, 400.0] {
        let machine = Machine::new(32, 25.0, so).with_c2(0.0);
        let w = 800.0;

        let mp_model = GeneralModel::homogeneous_all_to_all(machine, w)
            .solve()
            .expect("solves")
            .r[0];
        let pp_model = GeneralModel::homogeneous_all_to_all(machine, w)
            .with_protocol_processor()
            .solve()
            .expect("solves")
            .r[0];

        let wl = AllToAllWorkload::new(machine, w);
        let mp_sim = lopc::sim::run(&wl.sim_config(3)).unwrap().aggregate.mean_r;
        let pp_sim = lopc::sim::run(&wl.sim_config_protocol_processor(3))
            .unwrap()
            .aggregate
            .mean_r;

        table.row([
            format!("{so:.0}"),
            format!("{mp_model:.1}"),
            format!("{mp_sim:.1}"),
            format!("{pp_model:.1}"),
            format!("{pp_sim:.1}"),
            format!("{:.3}x", mp_sim / pp_sim),
        ]);
    }
    println!("{}", table.render());
    println!("A protocol processor buys more as handler occupancy grows: it removes");
    println!("the interruption of useful work (Rw = W) while handler-handler queueing");
    println!("remains — exactly the contention structure Holt et al. measured in");
    println!("distributed shared-memory controllers.");
}
