//! Quickstart: parameterise an algorithm LogP-style, let LoPC add the
//! contention cost `C`, and validate against the bundled simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lopc::prelude::*;

fn main() {
    // 1. Architectural characterisation (Table 3.1): a 32-node machine with
    //    25-cycle wire latency and 200-cycle handlers that are nearly
    //    branch-free, so C^2 = 0 (constant service).
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);

    // 2. Algorithmic characterisation (§3): each thread computes for 1000
    //    cycles between blocking requests and makes 500 requests in total.
    let algorithm = Algorithm::new(1000.0, 500);

    // 3. The naive LogP prediction ignores contention entirely.
    let logp = LogPParams::from(&machine);
    let cycle_logp = logp.contention_free_cycle(algorithm.w);

    // 4. LoPC solves the same parameters for the contended response time.
    let model = AllToAll::new(machine, algorithm.w);
    let sol = model.solve().expect("model solves");

    println!("LoPC quickstart — homogeneous all-to-all, P=32, St=25, So=200, C^2=0, W=1000\n");
    println!("LogP (contention-free) cycle: {cycle_logp:>8.1} cycles");
    println!("LoPC predicted cycle:         {:>8.1} cycles", sol.r);
    println!(
        "  = Rw {:.1} + 2*St {:.1} + Rq {:.1} + Ry {:.1}",
        sol.rw,
        2.0 * machine.s_l,
        sol.rq,
        sol.ry
    );
    println!(
        "contention cost C:            {:>8.1} cycles (~{:.2} handlers)",
        sol.contention,
        sol.contention / machine.s_o
    );
    println!(
        "bounds (eq. 5.12):            ({:.1}, {:.1})",
        model.contention_free(),
        model.upper_bound()
    );
    println!(
        "rule of thumb W+2St+3So:      {:>8.1} cycles",
        model.rule_of_thumb()
    );
    println!(
        "total runtime n*R:            {:>8.0} cycles\n",
        algorithm.total_runtime(sol.r)
    );

    // 5. Validate against the event-driven simulator on the same parameters.
    let workload = AllToAllWorkload::new(machine, algorithm.w);
    let report = lopc::sim::run(&workload.sim_config(42)).expect("valid config");
    let measured = report.aggregate.mean_r;
    println!(
        "simulator measured cycle:     {measured:>8.1} cycles  ({} cycles observed)",
        report.aggregate.total_cycles
    );
    println!(
        "LoPC error:                   {:>+8.2}%",
        (sol.r - measured) / measured * 100.0
    );
    println!(
        "LogP error:                   {:>+8.2}%",
        (cycle_logp - measured) / measured * 100.0
    );
}
