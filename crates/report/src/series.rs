//! Data series and figures.

/// One named series of `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series from points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Build by evaluating `f` over `xs`.
    pub fn from_fn(label: impl Into<String>, xs: &[f64], mut f: impl FnMut(f64) -> f64) -> Self {
        Series {
            label: label.into(),
            points: xs.iter().map(|&x| (x, f(x))).collect(),
        }
    }

    /// Minimum and maximum y (None when empty or all-NaN).
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut it = self.points.iter().map(|&(_, y)| y).filter(|y| !y.is_nan());
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), y| (lo.min(y), hi.max(y))))
    }

    /// Linear interpolation at `x` (clamps outside the domain). None when
    /// the series is empty.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        if x >= pts[pts.len() - 1].0 {
            return Some(pts[pts.len() - 1].1);
        }
        let i = pts.partition_point(|&(px, _)| px < x);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        if x1 == x0 {
            return Some(y0);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }
}

/// A figure: several series with axis labels, corresponding to one of the
/// paper's figures.
#[derive(Clone, Debug, Default)]
pub struct Figure {
    /// Figure title (e.g. "Figure 5-2: response time of all-to-all …").
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The data.
    pub series: Vec<Series>,
}

impl Figure {
    /// Empty figure with labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series (builder style).
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Add a series in place.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Global y range over all series.
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut out: Option<(f64, f64)> = None;
        for s in &self.series {
            if let Some((lo, hi)) = s.y_range() {
                out = Some(match out {
                    None => (lo, hi),
                    Some((l, h)) => (l.min(lo), h.max(hi)),
                });
            }
        }
        out
    }

    /// Global x range over all series.
    pub fn x_range(&self) -> Option<(f64, f64)> {
        let mut out: Option<(f64, f64)> = None;
        for s in &self.series {
            for &(x, _) in &s.points {
                if x.is_nan() {
                    continue;
                }
                out = Some(match out {
                    None => (x, x),
                    Some((l, h)) => (l.min(x), h.max(x)),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_evaluates() {
        let s = Series::from_fn("sq", &[1.0, 2.0, 3.0], |x| x * x);
        assert_eq!(s.points, vec![(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]);
    }

    #[test]
    fn y_range_ignores_nan() {
        let s = Series::new("s", vec![(0.0, 1.0), (1.0, f64::NAN), (2.0, 5.0)]);
        assert_eq!(s.y_range(), Some((1.0, 5.0)));
    }

    #[test]
    fn empty_ranges_are_none() {
        assert!(Series::new("e", vec![]).y_range().is_none());
        assert!(Figure::default().y_range().is_none());
        assert!(Figure::default().x_range().is_none());
    }

    #[test]
    fn interpolation() {
        let s = Series::new("lin", vec![(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(s.interpolate(5.0), Some(50.0));
        assert_eq!(s.interpolate(-1.0), Some(0.0), "clamps left");
        assert_eq!(s.interpolate(20.0), Some(100.0), "clamps right");
        assert!(Series::new("e", vec![]).interpolate(1.0).is_none());
    }

    #[test]
    fn figure_ranges_span_series() {
        let fig = Figure::new("t", "x", "y")
            .with_series(Series::new("a", vec![(0.0, 1.0), (5.0, 2.0)]))
            .with_series(Series::new("b", vec![(2.0, -1.0), (9.0, 7.0)]));
        assert_eq!(fig.x_range(), Some((0.0, 9.0)));
        assert_eq!(fig.y_range(), Some((-1.0, 7.0)));
    }
}
