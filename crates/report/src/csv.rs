//! CSV emission for external plotting.

use crate::series::Figure;
use std::io::Write;
use std::path::Path;

/// Write a figure as CSV: one `x` column and one column per series, joined
/// on exact x values (missing combinations are empty cells).
pub fn write_csv(fig: &Figure, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "{}", csv_string(fig))?;
    f.flush()
}

/// Render the CSV in memory (separated out for testability).
pub fn csv_string(fig: &Figure) -> String {
    // Collect the union of x values, sorted.
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();

    let mut out = String::new();
    out.push_str(&escape(&fig.x_label));
    for s in &fig.series {
        out.push(',');
        out.push_str(&escape(&s.label));
    }
    out.push('\n');

    for &x in &xs {
        out.push_str(&format!("{x}"));
        for s in &fig.series {
            out.push(',');
            if let Some(&(_, y)) = s.points.iter().find(|&&(px, _)| px == x) {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    #[test]
    fn joins_on_x() {
        let fig = Figure::new("t", "w", "r")
            .with_series(Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]))
            .with_series(Series::new("b", vec![(2.0, 200.0), (3.0, 300.0)]));
        let csv = csv_string(&fig);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "w,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
        assert_eq!(lines[3], "3,,300");
    }

    #[test]
    fn escapes_commas_and_quotes() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn writes_file_with_parent_creation() {
        let dir = std::env::temp_dir().join("lopc_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("fig.csv");
        let fig = Figure::new("t", "x", "y").with_series(Series::new("s", vec![(1.0, 2.0)]));
        write_csv(&fig, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,s"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
