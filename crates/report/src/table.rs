//! Aligned plain-text tables.

/// A simple right-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a header underline, and two spaces of
    /// column separation.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numbers-ish content, left-align first column.
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with engineering-friendly precision.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if !(0.001..10_000.0).contains(&a) {
        format!("{x:.3e}")
    } else if a >= 100.0 {
        format!("{x:.1}")
    } else if a >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Both data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fmt_num_ranges() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1.23456), "1.235");
        assert_eq!(fmt_num(123.456), "123.5");
        assert!(fmt_num(123_456.0).contains('e'));
        assert!(fmt_num(0.000_01).contains('e'));
        assert_eq!(fmt_num(0.5), "0.50000");
    }
}
