//! Figure and table plumbing for the LoPC reproduction.
//!
//! Every experiment in the benchmark harness produces a [`Figure`] — a set of
//! named data [`Series`] — which can be rendered as an ASCII chart for the
//! terminal, emitted as CSV for external plotting, and summarised as a
//! model-vs-measurement comparison table ([`compare`]).

pub mod chart;
pub mod compare;
pub mod csv;
pub mod series;
pub mod table;

pub use chart::{render_chart, ChartOptions};
pub use compare::{pct_err, ComparisonRow, ComparisonTable};
pub use csv::write_csv;
pub use series::{Figure, Series};
pub use table::Table;
