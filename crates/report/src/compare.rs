//! Model-vs-measurement comparisons: the numbers EXPERIMENTS.md records.

use crate::table::{fmt_num, Table};

/// Signed relative error `(model − measured)/measured` (positive = model
/// over-predicts, the conservative direction for LoPC).
pub fn pct_err(model: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if model == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (model - measured) / measured
    }
}

/// One comparison point.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Point label (e.g. "W=512").
    pub label: String,
    /// Model prediction.
    pub model: f64,
    /// Measured (simulated) value.
    pub measured: f64,
}

impl ComparisonRow {
    /// Signed relative error.
    pub fn err(&self) -> f64 {
        pct_err(self.model, self.measured)
    }
}

/// A set of comparison rows with summary statistics.
#[derive(Clone, Debug, Default)]
pub struct ComparisonTable {
    /// What is being compared (e.g. "response time R").
    pub quantity: String,
    /// The rows.
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// New empty table for the named quantity.
    pub fn new(quantity: impl Into<String>) -> Self {
        ComparisonTable {
            quantity: quantity.into(),
            rows: Vec::new(),
        }
    }

    /// Add one comparison point.
    pub fn push(&mut self, label: impl Into<String>, model: f64, measured: f64) {
        self.rows.push(ComparisonRow {
            label: label.into(),
            model,
            measured,
        });
    }

    /// Maximum absolute relative error.
    pub fn max_abs_err(&self) -> f64 {
        self.rows.iter().map(|r| r.err().abs()).fold(0.0, f64::max)
    }

    /// Mean absolute relative error.
    pub fn mean_abs_err(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.err().abs()).sum::<f64>() / self.rows.len() as f64
    }

    /// True when the model never under-predicts by more than `tol`
    /// (LoPC is expected to be conservative).
    pub fn is_conservative(&self, tol: f64) -> bool {
        self.rows.iter().all(|r| r.err() >= -tol)
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut t = Table::new(["point", "model", "measured", "err %"]);
        for r in &self.rows {
            t.row([
                r.label.clone(),
                fmt_num(r.model),
                fmt_num(r.measured),
                format!("{:+.2}", r.err() * 100.0),
            ]);
        }
        format!(
            "{} — max |err| {:.2}%, mean |err| {:.2}%\n{}",
            self.quantity,
            self.max_abs_err() * 100.0,
            self.mean_abs_err() * 100.0,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_err_sign_convention() {
        assert!((pct_err(110.0, 100.0) - 0.10).abs() < 1e-12);
        assert!((pct_err(90.0, 100.0) + 0.10).abs() < 1e-12);
        assert_eq!(pct_err(0.0, 0.0), 0.0);
        assert_eq!(pct_err(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn summary_statistics() {
        let mut t = ComparisonTable::new("R");
        t.push("a", 106.0, 100.0);
        t.push("b", 98.0, 100.0);
        assert!((t.max_abs_err() - 0.06).abs() < 1e-12);
        assert!((t.mean_abs_err() - 0.04).abs() < 1e-12);
        assert!(t.is_conservative(0.03));
        assert!(!t.is_conservative(0.01));
    }

    #[test]
    fn empty_table_stats() {
        let t = ComparisonTable::new("X");
        assert_eq!(t.max_abs_err(), 0.0);
        assert_eq!(t.mean_abs_err(), 0.0);
        assert!(t.is_conservative(0.0));
    }

    #[test]
    fn render_contains_summary() {
        let mut t = ComparisonTable::new("throughput");
        t.push("ps=4", 0.05, 0.051);
        let s = t.render();
        assert!(s.contains("throughput"));
        assert!(s.contains("ps=4"));
        assert!(s.contains("max |err|"));
    }
}
