//! Model-vs-measurement comparisons: the numbers EXPERIMENTS.md records.

use crate::table::{fmt_num, Table};

/// Signed relative error `(model − measured)/measured` (positive = model
/// over-predicts, the conservative direction for LoPC).
pub fn pct_err(model: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if model == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (model - measured) / measured
    }
}

/// One comparison point.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Point label (e.g. "W=512").
    pub label: String,
    /// Model prediction.
    pub model: f64,
    /// Measured (simulated) value — a replication mean when `half_width`
    /// is present.
    pub measured: f64,
    /// Confidence half-width of the measurement across replications
    /// (`None` for single-run point measurements).
    pub half_width: Option<f64>,
}

impl ComparisonRow {
    /// Signed relative error.
    pub fn err(&self) -> f64 {
        pct_err(self.model, self.measured)
    }

    /// True when the measurement interval `measured ± half_width` contains
    /// the model prediction (false without an interval).
    pub fn ci_contains_model(&self) -> bool {
        match self.half_width {
            None => false,
            Some(hw) => (self.model - self.measured).abs() <= hw,
        }
    }
}

/// A set of comparison rows with summary statistics.
#[derive(Clone, Debug, Default)]
pub struct ComparisonTable {
    /// What is being compared (e.g. "response time R").
    pub quantity: String,
    /// The rows.
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// New empty table for the named quantity.
    pub fn new(quantity: impl Into<String>) -> Self {
        ComparisonTable {
            quantity: quantity.into(),
            rows: Vec::new(),
        }
    }

    /// Add one comparison point (single-run measurement, no interval).
    pub fn push(&mut self, label: impl Into<String>, model: f64, measured: f64) {
        self.rows.push(ComparisonRow {
            label: label.into(),
            model,
            measured,
            half_width: None,
        });
    }

    /// Add one comparison point with a replication confidence half-width on
    /// the measurement.
    pub fn push_ci(
        &mut self,
        label: impl Into<String>,
        model: f64,
        measured: f64,
        half_width: f64,
    ) {
        self.rows.push(ComparisonRow {
            label: label.into(),
            model,
            measured,
            half_width: Some(half_width),
        });
    }

    /// Maximum absolute relative error.
    pub fn max_abs_err(&self) -> f64 {
        self.rows.iter().map(|r| r.err().abs()).fold(0.0, f64::max)
    }

    /// Mean absolute relative error.
    pub fn mean_abs_err(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.err().abs()).sum::<f64>() / self.rows.len() as f64
    }

    /// True when the model never under-predicts by more than `tol`
    /// (LoPC is expected to be conservative).
    pub fn is_conservative(&self, tol: f64) -> bool {
        self.rows.iter().all(|r| r.err() >= -tol)
    }

    /// True when any row carries a confidence half-width.
    fn has_ci(&self) -> bool {
        self.rows.iter().any(|r| r.half_width.is_some())
    }

    /// Render as text. When any row carries a replication half-width an
    /// extra `±95% CI` column appears (blank for point measurements).
    pub fn render(&self) -> String {
        let has_ci = self.has_ci();
        let mut t = if has_ci {
            Table::new(["point", "model", "measured", "±95% CI", "err %"])
        } else {
            Table::new(["point", "model", "measured", "err %"])
        };
        for r in &self.rows {
            let mut cells = vec![r.label.clone(), fmt_num(r.model), fmt_num(r.measured)];
            if has_ci {
                cells.push(r.half_width.map(fmt_num).unwrap_or_default());
            }
            cells.push(format!("{:+.2}", r.err() * 100.0));
            t.row(cells);
        }
        format!(
            "{} — max |err| {:.2}%, mean |err| {:.2}%\n{}",
            self.quantity,
            self.max_abs_err() * 100.0,
            self.mean_abs_err() * 100.0,
            t.render()
        )
    }

    /// Emit the comparison as CSV, always including the half-width column
    /// (empty cells where no interval was recorded) so external plots can
    /// draw error bars.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("point,model,measured,ci_half_width,err_pct\n");
        for r in &self.rows {
            let hw = r.half_width.map(|h| h.to_string()).unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                csv_escape(&r.label),
                r.model,
                r.measured,
                hw,
                r.err() * 100.0
            ));
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_err_sign_convention() {
        assert!((pct_err(110.0, 100.0) - 0.10).abs() < 1e-12);
        assert!((pct_err(90.0, 100.0) + 0.10).abs() < 1e-12);
        assert_eq!(pct_err(0.0, 0.0), 0.0);
        assert_eq!(pct_err(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn summary_statistics() {
        let mut t = ComparisonTable::new("R");
        t.push("a", 106.0, 100.0);
        t.push("b", 98.0, 100.0);
        assert!((t.max_abs_err() - 0.06).abs() < 1e-12);
        assert!((t.mean_abs_err() - 0.04).abs() < 1e-12);
        assert!(t.is_conservative(0.03));
        assert!(!t.is_conservative(0.01));
    }

    #[test]
    fn empty_table_stats() {
        let t = ComparisonTable::new("X");
        assert_eq!(t.max_abs_err(), 0.0);
        assert_eq!(t.mean_abs_err(), 0.0);
        assert!(t.is_conservative(0.0));
    }

    #[test]
    fn render_contains_summary() {
        let mut t = ComparisonTable::new("throughput");
        t.push("ps=4", 0.05, 0.051);
        let s = t.render();
        assert!(s.contains("throughput"));
        assert!(s.contains("ps=4"));
        assert!(s.contains("max |err|"));
        // Without intervals the CI column stays out of the way.
        assert!(!s.contains("±95% CI"));
    }

    #[test]
    fn ci_rows_render_interval_column() {
        let mut t = ComparisonTable::new("R");
        t.push_ci("W=0", 700.0, 690.0, 12.5);
        t.push("W=64", 800.0, 790.0); // mixed: point row gets a blank cell
        let s = t.render();
        assert!(s.contains("±95% CI"), "interval column expected:\n{s}");
        assert!(s.contains("12.50"), "half-width rendered:\n{s}");
    }

    #[test]
    fn ci_contains_model_uses_interval() {
        let mut t = ComparisonTable::new("R");
        t.push_ci("in", 100.0, 98.0, 3.0);
        t.push_ci("out", 100.0, 90.0, 3.0);
        t.push("none", 100.0, 100.0);
        assert!(t.rows[0].ci_contains_model());
        assert!(!t.rows[1].ci_contains_model());
        assert!(!t.rows[2].ci_contains_model(), "no interval, no claim");
    }

    #[test]
    fn csv_has_half_width_column() {
        let mut t = ComparisonTable::new("R");
        t.push_ci("W=0", 700.0, 690.0, 12.5);
        t.push("W,comma", 800.0, 790.0);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "point,model,measured,ci_half_width,err_pct");
        assert!(lines[1].starts_with("W=0,700,690,12.5,"));
        assert!(lines[2].starts_with("\"W,comma\",800,790,,"));
    }
}
