//! ASCII scatter/line charts, good enough to eyeball figure shapes in a
//! terminal (who wins, where the crossover falls).

use crate::series::Figure;

/// Chart rendering options.
#[derive(Clone, Copy, Debug)]
pub struct ChartOptions {
    /// Plot width in columns (data area).
    pub width: usize,
    /// Plot height in rows (data area).
    pub height: usize,
    /// Log-scale the x axis (requires positive x).
    pub log_x: bool,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            width: 72,
            height: 20,
            log_x: false,
        }
    }
}

/// Marker characters assigned to series in order.
const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render a figure as an ASCII chart with a legend.
pub fn render_chart(fig: &Figure, opts: &ChartOptions) -> String {
    let mut out = String::new();
    out.push_str(&fig.title);
    out.push('\n');

    let Some((x_lo, x_hi)) = fig.x_range() else {
        out.push_str("(no data)\n");
        return out;
    };
    let Some((y_lo, y_hi)) = fig.y_range() else {
        out.push_str("(no data)\n");
        return out;
    };
    let (y_lo, y_hi) = pad_range(y_lo, y_hi);
    let (x_lo, x_hi) = if x_lo == x_hi {
        pad_range(x_lo, x_hi)
    } else {
        (x_lo, x_hi)
    };

    let xmap = |x: f64| -> Option<usize> {
        let t = if opts.log_x {
            if x <= 0.0 || x_lo <= 0.0 {
                return None;
            }
            (x.ln() - x_lo.ln()) / (x_hi.ln() - x_lo.ln())
        } else {
            (x - x_lo) / (x_hi - x_lo)
        };
        if !(0.0..=1.0).contains(&t) {
            return None;
        }
        Some(((t * (opts.width - 1) as f64).round() as usize).min(opts.width - 1))
    };
    let ymap = |y: f64| -> Option<usize> {
        if y.is_nan() {
            return None;
        }
        let t = (y - y_lo) / (y_hi - y_lo);
        if !(0.0..=1.0).contains(&t) {
            return None;
        }
        // Row 0 is the top.
        Some(
            opts.height
                - 1
                - ((t * (opts.height - 1) as f64).round() as usize).min(opts.height - 1),
        )
    };

    let mut grid = vec![vec![' '; opts.width]; opts.height];
    for (si, s) in fig.series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            if let (Some(cx), Some(cy)) = (xmap(x), ymap(y)) {
                grid[cy][cx] = mark;
            }
        }
    }

    let y_label_width = 12;
    for (ri, row) in grid.iter().enumerate() {
        let y_here = y_hi - (y_hi - y_lo) * ri as f64 / (opts.height - 1) as f64;
        out.push_str(&format!("{y_here:>y_label_width$.4} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(y_label_width + 1));
    out.push('+');
    out.push_str(&"-".repeat(opts.width));
    out.push('\n');
    out.push_str(&format!(
        "{:>y_label_width$} {x_lo:<20.4}{:>width$.4}\n",
        "",
        x_hi,
        width = opts.width - 20
    ));
    out.push_str(&format!(
        "x: {}{}   y: {}\n",
        fig.x_label,
        if opts.log_x { " (log)" } else { "" },
        fig.y_label
    ));
    for (si, s) in fig.series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], s.label));
    }
    out
}

fn pad_range(lo: f64, hi: f64) -> (f64, f64) {
    if lo == hi {
        let pad = if lo == 0.0 { 1.0 } else { lo.abs() * 0.1 };
        (lo - pad, hi + pad)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn fig() -> Figure {
        Figure::new("Test", "x", "y")
            .with_series(Series::from_fn("up", &[1.0, 2.0, 3.0, 4.0], |x| x))
            .with_series(Series::from_fn("down", &[1.0, 2.0, 3.0, 4.0], |x| 5.0 - x))
    }

    #[test]
    fn renders_with_legend_and_axes() {
        let s = render_chart(&fig(), &ChartOptions::default());
        assert!(s.contains("Test"));
        assert!(s.contains("* up"));
        assert!(s.contains("o down"));
        assert!(s.contains('|'));
        assert!(s.contains('+'));
    }

    #[test]
    fn empty_figure_is_graceful() {
        let s = render_chart(&Figure::default(), &ChartOptions::default());
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn log_x_skips_nonpositive() {
        let f = Figure::new("L", "x", "y")
            .with_series(Series::new("s", vec![(0.0, 1.0), (1.0, 1.0), (100.0, 2.0)]));
        let opts = ChartOptions {
            log_x: true,
            ..Default::default()
        };
        // Must not panic; x=0 is simply dropped.
        let s = render_chart(&f, &opts);
        assert!(s.contains("(log)"));
    }

    #[test]
    fn constant_series_padded() {
        let f =
            Figure::new("C", "x", "y").with_series(Series::new("s", vec![(1.0, 5.0), (2.0, 5.0)]));
        let s = render_chart(&f, &ChartOptions::default());
        assert!(s.contains('*'));
    }

    #[test]
    fn marks_cycle_when_many_series() {
        let mut f = Figure::new("M", "x", "y");
        for i in 0..10 {
            f.push(Series::new(format!("s{i}"), vec![(i as f64, i as f64)]));
        }
        let s = render_chart(&f, &ChartOptions::default());
        assert!(s.contains("s9"));
    }
}
