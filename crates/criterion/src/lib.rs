//! Minimal offline stand-in for the published `criterion` crate.
//!
//! Implements the subset the workspace's benches use — benchmark groups,
//! `sample_size`, `throughput`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with plain wall-clock
//! timing. Each benchmark calibrates an iteration count to a small time
//! budget, takes a few samples, and prints the best observed ns/iter (plus
//! element throughput when configured). No statistics, baselines, or HTML
//! reports; the point is that `cargo bench` runs and prints comparable
//! numbers without network access to the real crate.
//!
//! One extension over the real crate's API: every completed measurement is
//! also recorded in a process-global registry that the bench binary can
//! drain with [`take_results`] — this is how the workspace benches persist
//! machine-readable baselines (`BENCH_sim.json`, see the repo README)
//! without criterion's JSON output machinery.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed measurement, as recorded in the global results registry.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark group name (or `"criterion"` for ungrouped benches).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Elements processed per iteration, when a throughput hint was set.
    pub elements_per_iter: Option<u64>,
    /// Bytes processed per iteration, when a throughput hint was set.
    pub bytes_per_iter: Option<u64>,
}

impl BenchRecord {
    /// Elements per second implied by the measurement, if known.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements_per_iter
            .filter(|_| self.ns_per_iter > 0.0)
            .map(|n| n as f64 / self.ns_per_iter * 1e9)
    }
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drain every measurement recorded since the last call (process-global).
pub fn take_results() -> Vec<BenchRecord> {
    std::mem::take(&mut RESULTS.lock().expect("results registry poisoned"))
}

/// Top-level benchmark driver, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one("criterion", &name.into(), 20, None, &mut f);
        self
    }
}

/// Throughput hint attached to a group: turns ns/iter into a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of benchmarks sharing sample and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the number of timing samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Attach a throughput hint to subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; call [`Bencher::iter`] with the code to
/// time.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Time the closure. Calibrates the iteration count so one sample takes
    /// a few milliseconds, then keeps the best of the configured samples
    /// (best-of-N is robust to scheduler noise for a shim this simple).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: grow the batch until it costs >= 2 ms.
        let mut iters: u64 = 1;
        let per_iter_estimate = loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t.elapsed();
            if dt >= Duration::from_millis(2) || iters >= 1 << 24 {
                break dt.as_nanos() as f64 / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };

        // Measured samples within a bounded total budget; the budget scales
        // with the configured sample count so slow benchmarks still get
        // enough samples for a stable best-of-N. The clamp bounds runaway
        // configs, not convergence: sub-millisecond server benches on a
        // shared box need tens of samples before the best observed sample
        // is actually load-free.
        let samples = self.samples.clamp(1, 50);
        let budget_limit = Duration::from_millis(200)
            .max(Duration::from_nanos((per_iter_estimate * iters as f64) as u64) * samples as u32);
        let mut best = per_iter_estimate;
        let budget = Instant::now();
        for _ in 0..samples {
            if budget.elapsed() > budget_limit {
                break;
            }
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns_per_iter = best;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples,
        best_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    let ns = b.best_ns_per_iter;
    RESULTS
        .lock()
        .expect("results registry poisoned")
        .push(BenchRecord {
            group: group.to_string(),
            id: id.to_string(),
            ns_per_iter: ns,
            elements_per_iter: match throughput {
                Some(Throughput::Elements(n)) => Some(n),
                _ => None,
            },
            bytes_per_iter: match throughput {
                Some(Throughput::Bytes(n)) => Some(n),
                _ => None,
            },
        });
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  ({:.2} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{group}/{id}: {}{rate}", fmt_ns(ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        "no measurement (Bencher::iter never called)".into()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into one group runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("tiny", |b| {
            ran = true;
            b.iter(|| std::hint::black_box(1 + 1))
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn throughput_variants_print() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.sample_size(1);
        g.bench_function("with_rate", |b| b.iter(|| std::hint::black_box(0u64)));
        g.finish();
    }

    #[test]
    fn fmt_ns_ranges() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("us"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2_000_000_000.0).contains("s/iter"));
    }

    criterion_group!(self_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 0u8));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        self_group();
    }

    #[test]
    fn results_registry_records_measurements() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("registry_test_group");
        g.throughput(Throughput::Elements(1000));
        g.sample_size(1);
        g.bench_function("recorded", |b| b.iter(|| std::hint::black_box(3 * 7)));
        g.finish();
        // Other tests may interleave records; only the one pushed above is
        // asserted on (take_results is drained by this test alone).
        let results = take_results();
        let rec = results
            .iter()
            .find(|r| r.group == "registry_test_group" && r.id == "recorded")
            .expect("measurement recorded");
        assert!(rec.ns_per_iter > 0.0);
        assert_eq!(rec.elements_per_iter, Some(1000));
        assert!(rec.elements_per_sec().unwrap() > 0.0);
        assert!(rec.bytes_per_iter.is_none());
    }
}
