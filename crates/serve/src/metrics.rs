//! Service metrics: request/response counters and a lock-free latency
//! histogram yielding p50/p99 estimates.
//!
//! Everything is plain atomics so the hot path never takes a lock;
//! `/metrics` renders a point-in-time snapshot as JSON. Latencies go into
//! power-of-two nanosecond buckets (bucket `i` covers `[2^i, 2^(i+1))` ns),
//! and quantiles are read back as the geometric midpoint of the bucket the
//! cumulative count crosses — at most a 2× ranging error, which is all a
//! serving dashboard needs.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cluster::PeerSnapshot;

/// Number of histogram buckets: bucket 63 absorbs everything ≥ 2^63 ns.
const BUCKETS: usize = 64;

/// Latency histogram over power-of-two nanosecond buckets.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, ns: u64) {
        let bucket = (63 - ns.max(1).leading_zeros()) as usize;
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Estimate the `q`-quantile (`0 < q <= 1`) in nanoseconds, or `None`
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)).
                return Some(2f64.powi(i as i32) * std::f64::consts::SQRT_2);
            }
        }
        unreachable!("rank <= total");
    }
}

/// Endpoints the service distinguishes in its counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/predict`
    Predict,
    /// `POST /v1/predict/batch`
    Batch,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404/405/400 paths).
    Other,
}

/// Point-in-time snapshot of the cache/interpolation counters, passed into
/// the renderers by the server (which owns the caches).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheCounters {
    /// Exact-cache hits.
    pub hits: u64,
    /// Exact-cache misses (= exact solves performed).
    pub misses: u64,
    /// Exact-cache hit fraction in `[0, 1]`.
    pub hit_rate: f64,
    /// Scenarios answered by certified interpolation.
    pub interp_hits: u64,
    /// Scenarios that asked for interpolation but were served exactly.
    pub interp_fallbacks: u64,
    /// Interpolation cells built (corner + probe solve batches).
    pub interp_cells_built: u64,
    /// Cells built speculatively by the sweep-direction prefetcher
    /// (a subset of `interp_cells_built`).
    pub interp_cells_prefetched: u64,
}

/// Point-in-time snapshot of the cluster tier (DESIGN.md §15), passed into
/// the renderers by the server (which owns the
/// [`ClusterState`](crate::cluster::ClusterState)). A peerless node reports a one-node
/// ring and an empty peer list — the schema never changes shape with the
/// deployment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterCounters {
    /// Ring members, including this node.
    pub nodes: u64,
    /// Virtual points per node on the ring.
    pub vnodes_per_node: u64,
    /// Interpolation cells this node shipped to peers.
    pub cells_shipped: u64,
    /// Shipped cells admitted after spot-probe re-verification.
    pub cells_received: u64,
    /// Shipped cells rejected by re-verification (slot pinned exact).
    pub cells_rejected: u64,
    /// Per-peer health and traffic, in ring order.
    pub peers: Vec<PeerSnapshot>,
}

/// Process-global service metrics; share by reference.
#[derive(Debug, Default)]
pub struct Metrics {
    predict: AtomicU64,
    batch: AtomicU64,
    metrics: AtomicU64,
    other: AtomicU64,
    ok_2xx: AtomicU64,
    client_err_4xx: AtomicU64,
    server_err_5xx: AtomicU64,
    scenarios_solved: AtomicU64,
    latency: Histogram,
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
    conns_idle_closed: AtomicU64,
    /// Requests currently dispatched to workers (gauge).
    dispatched_now: AtomicU64,
    reactor_wakeups: AtomicU64,
    reactor_events: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed request.
    pub fn record(&self, endpoint: Endpoint, status: u16, latency_ns: u64, scenarios: u64) {
        match endpoint {
            Endpoint::Predict => &self.predict,
            Endpoint::Batch => &self.batch,
            Endpoint::Metrics => &self.metrics,
            Endpoint::Other => &self.other,
        }
        .fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.ok_2xx,
            400..=499 => &self.client_err_4xx,
            _ => &self.server_err_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.scenarios_solved
            .fetch_add(scenarios, Ordering::Relaxed);
        self.latency.record(latency_ns);
    }

    /// Requests seen in total.
    pub fn requests_total(&self) -> u64 {
        [&self.predict, &self.batch, &self.metrics, &self.other]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Scenarios answered (batch requests count each element).
    pub fn scenarios_solved(&self) -> u64 {
        self.scenarios_solved.load(Ordering::Relaxed)
    }

    /// The reactor accepted a connection.
    pub fn conn_opened(&self) {
        self.conns_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// The reactor tore a connection down (`idle` when the keep-alive idle
    /// timeout fired, rather than peer close / protocol error / shutdown).
    pub fn conn_closed(&self, idle: bool) {
        self.conns_closed.fetch_add(1, Ordering::Relaxed);
        if idle {
            self.conns_idle_closed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A parsed request left the reactor for the worker pool.
    pub fn conn_dispatched(&self) {
        self.dispatched_now.fetch_add(1, Ordering::Relaxed);
    }

    /// A dispatched request completed (response written or failed).
    pub fn conn_undispatched(&self) {
        self.dispatched_now.fetch_sub(1, Ordering::Relaxed);
    }

    /// One reactor `epoll_wait` return delivering `events` events.
    pub fn reactor_wakeup(&self, events: u64) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
        self.reactor_events.fetch_add(events, Ordering::Relaxed);
    }

    /// Connections accepted since start (counter). Tests assert on this to
    /// prove a client's connection pool reuses its warm connection instead
    /// of redialing per request.
    pub fn opened_connections_total(&self) -> u64 {
        self.conns_opened.load(Ordering::Relaxed)
    }

    /// Connections currently open (gauge).
    pub fn open_connections(&self) -> u64 {
        self.conns_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.conns_closed.load(Ordering::Relaxed))
    }

    /// Open connections with no request in flight (gauge): the keep-alive
    /// population parked in the reactor, costing no worker thread.
    pub fn idle_connections(&self) -> u64 {
        self.open_connections()
            .saturating_sub(self.dispatched_now.load(Ordering::Relaxed))
    }

    /// Connections closed by the idle timeout, in total.
    pub fn idle_timeouts(&self) -> u64 {
        self.conns_idle_closed.load(Ordering::Relaxed)
    }

    /// Snapshot as the `/metrics` JSON document (cache and cluster
    /// counters are passed in by the server, which owns the caches and the
    /// cluster state).
    pub fn to_json(&self, cache: &CacheCounters, cluster: &ClusterCounters) -> crate::Json {
        use crate::Json;
        let load = |c: &AtomicU64| Json::Num(c.load(Ordering::Relaxed) as f64);
        let q = |q: f64| match self.latency.quantile(q) {
            None => Json::Null,
            Some(ns) => Json::Num(ns),
        };
        Json::Object(vec![
            (
                "requests".into(),
                Json::Object(vec![
                    ("predict".into(), load(&self.predict)),
                    ("predict_batch".into(), load(&self.batch)),
                    ("metrics".into(), load(&self.metrics)),
                    ("other".into(), load(&self.other)),
                    ("total".into(), Json::Num(self.requests_total() as f64)),
                ]),
            ),
            (
                "responses".into(),
                Json::Object(vec![
                    ("ok_2xx".into(), load(&self.ok_2xx)),
                    ("client_error_4xx".into(), load(&self.client_err_4xx)),
                    ("server_error_5xx".into(), load(&self.server_err_5xx)),
                ]),
            ),
            ("scenarios_solved".into(), load(&self.scenarios_solved)),
            (
                "cache".into(),
                Json::Object(vec![
                    ("hits".into(), Json::Num(cache.hits as f64)),
                    ("misses".into(), Json::Num(cache.misses as f64)),
                    ("hit_rate".into(), Json::Num(cache.hit_rate)),
                ]),
            ),
            (
                "interp".into(),
                Json::Object(vec![
                    ("hits".into(), Json::Num(cache.interp_hits as f64)),
                    ("fallbacks".into(), Json::Num(cache.interp_fallbacks as f64)),
                    (
                        "cells_built".into(),
                        Json::Num(cache.interp_cells_built as f64),
                    ),
                    (
                        "cells_prefetched".into(),
                        Json::Num(cache.interp_cells_prefetched as f64),
                    ),
                ]),
            ),
            (
                "connections".into(),
                Json::Object(vec![
                    ("open".into(), Json::Num(self.open_connections() as f64)),
                    ("idle".into(), Json::Num(self.idle_connections() as f64)),
                    ("opened_total".into(), load(&self.conns_opened)),
                    ("closed_total".into(), load(&self.conns_closed)),
                    ("idle_timeouts_total".into(), load(&self.conns_idle_closed)),
                ]),
            ),
            (
                "reactor".into(),
                Json::Object(vec![
                    ("wakeups_total".into(), load(&self.reactor_wakeups)),
                    ("events_total".into(), load(&self.reactor_events)),
                ]),
            ),
            (
                "cluster".into(),
                Json::Object(vec![
                    ("nodes".into(), Json::Num(cluster.nodes as f64)),
                    ("vnodes".into(), Json::Num(cluster.vnodes_per_node as f64)),
                    (
                        "cells_shipped".into(),
                        Json::Num(cluster.cells_shipped as f64),
                    ),
                    (
                        "cells_received".into(),
                        Json::Num(cluster.cells_received as f64),
                    ),
                    (
                        "cells_rejected".into(),
                        Json::Num(cluster.cells_rejected as f64),
                    ),
                    (
                        "peers".into(),
                        Json::Array(
                            cluster
                                .peers
                                .iter()
                                .map(|p| {
                                    Json::Object(vec![
                                        ("addr".into(), Json::Str(p.addr.clone())),
                                        ("healthy".into(), Json::Bool(p.healthy)),
                                        ("forwarded".into(), Json::Num(p.forwarded as f64)),
                                        ("errors".into(), Json::Num(p.errors as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "latency_ns".into(),
                Json::Object(vec![("p50".into(), q(0.50)), ("p99".into(), q(0.99))]),
            ),
        ])
    }

    /// Snapshot in the Prometheus text exposition format (version 0.0.4):
    /// the same counters as [`Metrics::to_json`], rendered as one
    /// `lopc_*`-prefixed family per concept so standard scrapers consume
    /// them without an adapter. Served for `GET /metrics?format=prom` or an
    /// `Accept: text/plain` request.
    pub fn to_prometheus(&self, cache: &CacheCounters, cluster: &ClusterCounters) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut family = |name: &str, help: &str, kind: &str, samples: &[(String, f64)]| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, value) in samples {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
        };
        family(
            "lopc_requests_total",
            "Requests seen, by endpoint.",
            "counter",
            &[
                ("{endpoint=\"predict\"}".into(), load(&self.predict) as f64),
                (
                    "{endpoint=\"predict_batch\"}".into(),
                    load(&self.batch) as f64,
                ),
                ("{endpoint=\"metrics\"}".into(), load(&self.metrics) as f64),
                ("{endpoint=\"other\"}".into(), load(&self.other) as f64),
            ],
        );
        family(
            "lopc_responses_total",
            "Responses sent, by status class.",
            "counter",
            &[
                ("{class=\"2xx\"}".into(), load(&self.ok_2xx) as f64),
                ("{class=\"4xx\"}".into(), load(&self.client_err_4xx) as f64),
                ("{class=\"5xx\"}".into(), load(&self.server_err_5xx) as f64),
            ],
        );
        family(
            "lopc_scenarios_solved_total",
            "Scenarios answered (batch elements counted individually).",
            "counter",
            &[("".into(), load(&self.scenarios_solved) as f64)],
        );
        family(
            "lopc_cache_hits_total",
            "Exact solution-cache hits.",
            "counter",
            &[("".into(), cache.hits as f64)],
        );
        family(
            "lopc_cache_misses_total",
            "Exact solution-cache misses (solves performed).",
            "counter",
            &[("".into(), cache.misses as f64)],
        );
        family(
            "lopc_cache_hit_rate",
            "Exact solution-cache hit fraction.",
            "gauge",
            &[("".into(), cache.hit_rate)],
        );
        family(
            "lopc_interp_hits_total",
            "Scenarios answered by certified grid interpolation.",
            "counter",
            &[("".into(), cache.interp_hits as f64)],
        );
        family(
            "lopc_interp_fallbacks_total",
            "Interpolation requests served exactly instead.",
            "counter",
            &[("".into(), cache.interp_fallbacks as f64)],
        );
        family(
            "lopc_interp_cells_built_total",
            "Interpolation cells built (corner+probe solve batches).",
            "counter",
            &[("".into(), cache.interp_cells_built as f64)],
        );
        family(
            "lopc_interp_cells_prefetched_total",
            "Cells built speculatively by the sweep-direction prefetcher.",
            "counter",
            &[("".into(), cache.interp_cells_prefetched as f64)],
        );
        family(
            "lopc_open_connections",
            "Connections currently open.",
            "gauge",
            &[("".into(), self.open_connections() as f64)],
        );
        family(
            "lopc_idle_connections",
            "Open connections with no request in flight.",
            "gauge",
            &[("".into(), self.idle_connections() as f64)],
        );
        family(
            "lopc_connections_opened_total",
            "Connections accepted by the reactor.",
            "counter",
            &[("".into(), load(&self.conns_opened) as f64)],
        );
        family(
            "lopc_connections_closed_total",
            "Connections torn down.",
            "counter",
            &[("".into(), load(&self.conns_closed) as f64)],
        );
        family(
            "lopc_idle_timeouts_total",
            "Connections closed by the keep-alive idle timeout.",
            "counter",
            &[("".into(), load(&self.conns_idle_closed) as f64)],
        );
        family(
            "lopc_reactor_wakeups_total",
            "Reactor epoll_wait returns.",
            "counter",
            &[("".into(), load(&self.reactor_wakeups) as f64)],
        );
        family(
            "lopc_reactor_events_total",
            "Readiness events delivered to the reactor.",
            "counter",
            &[("".into(), load(&self.reactor_events) as f64)],
        );
        family(
            "lopc_cluster_ring_nodes",
            "Consistent-hash ring members, including this node.",
            "gauge",
            &[("".into(), cluster.nodes as f64)],
        );
        family(
            "lopc_cluster_cells_shipped_total",
            "Interpolation cells shipped to peers.",
            "counter",
            &[("".into(), cluster.cells_shipped as f64)],
        );
        family(
            "lopc_cluster_cells_received_total",
            "Shipped cells admitted after spot-probe re-verification.",
            "counter",
            &[("".into(), cluster.cells_received as f64)],
        );
        family(
            "lopc_cluster_cells_rejected_total",
            "Shipped cells rejected by re-verification.",
            "counter",
            &[("".into(), cluster.cells_rejected as f64)],
        );
        let peer_label = |addr: &str| format!("{{peer=\"{addr}\"}}");
        // HELP/TYPE always emitted, even with zero peers, so the scrape
        // schema is deployment-independent.
        family(
            "lopc_cluster_peer_up",
            "1 when this node currently considers the peer reachable.",
            "gauge",
            &cluster
                .peers
                .iter()
                .map(|p| (peer_label(&p.addr), if p.healthy { 1.0 } else { 0.0 }))
                .collect::<Vec<_>>(),
        );
        family(
            "lopc_cluster_peer_forwarded_total",
            "Node-to-node requests sent to the peer.",
            "counter",
            &cluster
                .peers
                .iter()
                .map(|p| (peer_label(&p.addr), p.forwarded as f64))
                .collect::<Vec<_>>(),
        );
        family(
            "lopc_cluster_peer_errors_total",
            "Node-to-node requests to the peer that failed.",
            "counter",
            &cluster
                .peers
                .iter()
                .map(|p| (peer_label(&p.addr), p.errors as f64))
                .collect::<Vec<_>>(),
        );
        let quantiles: Vec<(String, f64)> = [(0.5, "0.5"), (0.99, "0.99")]
            .iter()
            .filter_map(|&(q, label)| {
                self.latency
                    .quantile(q)
                    .map(|ns| (format!("{{quantile=\"{label}\"}}"), ns))
            })
            .collect();
        family(
            "lopc_request_latency_ns",
            "Request latency estimate in nanoseconds (pow2-bucket histogram).",
            "gauge",
            &quantiles,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::default();
        h.record(0); // clamps into bucket 0
        h.record(1);
        h.record(1023);
        h.record(1024);
        assert_eq!(h.count(), 4);
        // p50 over {1, 1, 512-1023, 1024}: rank 2 lands in bucket 0.
        assert!(h.quantile(0.5).unwrap() < 2.0);
        // p100 lands in the 1024 bucket: sqrt(2)*1024.
        let p100 = h.quantile(1.0).unwrap();
        assert!(p100 > 1024.0 && p100 < 2048.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert!(Histogram::default().quantile(0.5).is_none());
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::default();
        for i in 0..1000u64 {
            h.record(i * 1000);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        // p99 of ~1ms-uniform data sits within 2x of 990_000 ns.
        assert!(p99 > 495_000.0 && p99 < 1_980_000.0, "p99 = {p99}");
    }

    #[test]
    fn metrics_counters_and_snapshot() {
        let m = Metrics::new();
        m.record(Endpoint::Predict, 200, 1000, 1);
        m.record(Endpoint::Batch, 200, 5000, 32);
        m.record(Endpoint::Metrics, 200, 100, 0);
        m.record(Endpoint::Other, 404, 50, 0);
        m.record(Endpoint::Predict, 400, 80, 0);
        assert_eq!(m.requests_total(), 5);
        assert_eq!(m.scenarios_solved(), 33);
        let counters = CacheCounters {
            hits: 10,
            misses: 5,
            hit_rate: 10.0 / 15.0,
            interp_hits: 7,
            interp_fallbacks: 2,
            interp_cells_built: 3,
            interp_cells_prefetched: 1,
        };
        let doc = m.to_json(&counters, &ClusterCounters::default());
        let req = doc.get("requests").unwrap();
        assert_eq!(req.get("predict").unwrap().as_num(), Some(2.0));
        assert_eq!(req.get("total").unwrap().as_num(), Some(5.0));
        let resp = doc.get("responses").unwrap();
        assert_eq!(resp.get("ok_2xx").unwrap().as_num(), Some(3.0));
        assert_eq!(resp.get("client_error_4xx").unwrap().as_num(), Some(2.0));
        assert_eq!(
            doc.get("cache").unwrap().get("hits").unwrap().as_num(),
            Some(10.0)
        );
        assert_eq!(
            doc.get("interp").unwrap().get("hits").unwrap().as_num(),
            Some(7.0)
        );
        assert!(doc
            .get("latency_ns")
            .unwrap()
            .get("p99")
            .unwrap()
            .as_num()
            .is_some());
    }

    #[test]
    fn connection_gauges_track_reactor_lifecycle() {
        let m = Metrics::new();
        m.conn_opened();
        m.conn_opened();
        m.conn_opened();
        assert_eq!(m.open_connections(), 3);
        assert_eq!(m.idle_connections(), 3);
        m.conn_dispatched();
        assert_eq!(m.idle_connections(), 2);
        m.conn_undispatched();
        assert_eq!(m.idle_connections(), 3);
        m.conn_closed(false);
        m.conn_closed(true); // idle timeout
        assert_eq!(m.open_connections(), 1);
        assert_eq!(m.idle_timeouts(), 1);
        m.reactor_wakeup(5);
        m.reactor_wakeup(0);
        let doc = m.to_json(&CacheCounters::default(), &ClusterCounters::default());
        let conns = doc.get("connections").unwrap();
        assert_eq!(conns.get("open").unwrap().as_num(), Some(1.0));
        assert_eq!(conns.get("idle").unwrap().as_num(), Some(1.0));
        assert_eq!(conns.get("opened_total").unwrap().as_num(), Some(3.0));
        assert_eq!(
            conns.get("idle_timeouts_total").unwrap().as_num(),
            Some(1.0)
        );
        let reactor = doc.get("reactor").unwrap();
        assert_eq!(reactor.get("wakeups_total").unwrap().as_num(), Some(2.0));
        assert_eq!(reactor.get("events_total").unwrap().as_num(), Some(5.0));
        let text = m.to_prometheus(&CacheCounters::default(), &ClusterCounters::default());
        assert!(text.contains("lopc_open_connections 1"));
        assert!(text.contains("lopc_idle_connections 1"));
        assert!(text.contains("lopc_idle_timeouts_total 1"));
        assert!(text.contains("lopc_reactor_wakeups_total 2"));
    }

    #[test]
    fn prometheus_exposition_renders_every_family() {
        let m = Metrics::new();
        m.record(Endpoint::Predict, 200, 1000, 1);
        m.record(Endpoint::Other, 404, 50, 0);
        let counters = CacheCounters {
            hits: 4,
            misses: 2,
            hit_rate: 4.0 / 6.0,
            interp_hits: 3,
            interp_fallbacks: 1,
            interp_cells_built: 2,
            interp_cells_prefetched: 1,
        };
        let cluster = ClusterCounters {
            nodes: 3,
            vnodes_per_node: 64,
            cells_shipped: 5,
            cells_received: 4,
            cells_rejected: 1,
            peers: vec![
                PeerSnapshot {
                    addr: "10.0.0.2:7070".into(),
                    healthy: true,
                    forwarded: 9,
                    errors: 0,
                },
                PeerSnapshot {
                    addr: "10.0.0.3:7070".into(),
                    healthy: false,
                    forwarded: 2,
                    errors: 2,
                },
            ],
        };
        let text = m.to_prometheus(&counters, &cluster);
        for needle in [
            "# TYPE lopc_requests_total counter",
            "lopc_requests_total{endpoint=\"predict\"} 1",
            "lopc_responses_total{class=\"4xx\"} 1",
            "lopc_scenarios_solved_total 1",
            "lopc_cache_hits_total 4",
            "lopc_cache_misses_total 2",
            "# TYPE lopc_cache_hit_rate gauge",
            "lopc_interp_hits_total 3",
            "lopc_interp_fallbacks_total 1",
            "lopc_interp_cells_built_total 2",
            "lopc_interp_cells_prefetched_total 1",
            "lopc_request_latency_ns{quantile=\"0.5\"}",
            "lopc_cluster_ring_nodes 3",
            "lopc_cluster_cells_shipped_total 5",
            "lopc_cluster_cells_received_total 4",
            "lopc_cluster_cells_rejected_total 1",
            "lopc_cluster_peer_up{peer=\"10.0.0.2:7070\"} 1",
            "lopc_cluster_peer_up{peer=\"10.0.0.3:7070\"} 0",
            "lopc_cluster_peer_forwarded_total{peer=\"10.0.0.2:7070\"} 9",
            "lopc_cluster_peer_errors_total{peer=\"10.0.0.3:7070\"} 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(name.starts_with("lopc_"), "{line}");
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn cluster_schema_is_deployment_independent() {
        // A peerless node still exposes every cluster family (HELP/TYPE
        // with zero samples for the per-peer ones) and the full JSON
        // section — scrapers never see the schema change shape.
        let m = Metrics::new();
        let text = m.to_prometheus(&CacheCounters::default(), &ClusterCounters::default());
        for needle in [
            "# TYPE lopc_cluster_ring_nodes gauge",
            "# TYPE lopc_cluster_cells_shipped_total counter",
            "# TYPE lopc_cluster_cells_received_total counter",
            "# TYPE lopc_cluster_cells_rejected_total counter",
            "# TYPE lopc_cluster_peer_up gauge",
            "# TYPE lopc_cluster_peer_forwarded_total counter",
            "# TYPE lopc_cluster_peer_errors_total counter",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let doc = m.to_json(&CacheCounters::default(), &ClusterCounters::default());
        let cluster = doc.get("cluster").unwrap();
        for key in [
            "nodes",
            "vnodes",
            "cells_shipped",
            "cells_received",
            "cells_rejected",
        ] {
            assert!(cluster.get(key).unwrap().as_num().is_some(), "{key}");
        }
        assert!(cluster.get("peers").unwrap().as_array().unwrap().is_empty());
    }
}
