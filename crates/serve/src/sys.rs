//! Thin, libc-free syscall shim for the reactor: `epoll`, `eventfd`, and
//! `prlimit64`, invoked directly via the architecture's syscall instruction.
//!
//! The workspace is dependency-free by policy, so there is no `libc` crate
//! to lean on; everything `std` exposes (non-blocking sockets, `OwnedFd`)
//! is used where it exists, and this module covers only the readiness
//! primitives `std` does not: creating/driving an epoll instance, an
//! eventfd for cross-thread wakeups, and raising `RLIMIT_NOFILE` so the
//! C10K bench can actually hold ten thousand sockets. Raw syscalls return
//! `-errno` directly, which makes error mapping a one-liner
//! (`io::Error::from_raw_os_error`), with no `errno` thread-local dance.
//!
//! Safety is confined to two places: the `syscall*` wrappers (inline asm
//! following the kernel ABI for each architecture) and
//! `OwnedFd::from_raw_fd` on fds the kernel just handed us. Everything
//! above speaks `io::Result` and RAII fds.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

#[cfg(not(target_os = "linux"))]
compile_error!("lopc-serve's reactor is built on Linux epoll; no other backend is implemented");

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PRLIMIT64: usize = 302;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
    pub const PRLIMIT64: usize = 261;
}

#[cfg(all(
    target_os = "linux",
    not(any(target_arch = "x86_64", target_arch = "aarch64"))
))]
compile_error!(
    "lopc-serve's syscall shim covers x86_64 and aarch64; add the numbers for this target"
);

#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // x86_64 kernel ABI: number in rax, args in rdi/rsi/rdx/r10/r8/r9,
    // return in rax; rcx and r11 are clobbered by the `syscall` insn.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // aarch64 kernel ABI: number in x8, args in x0..x5, return in x0.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack, preserves_flags)
        );
    }
    ret
}

/// Map a raw kernel return (`>= 0` success, `-errno` failure) to
/// `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// -- epoll -----------------------------------------------------------------

/// Readiness: data to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: socket writable again.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (reported even when not requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (reported even when not requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// `EPOLL_CLOEXEC` / `EFD_CLOEXEC` (== `O_CLOEXEC`).
const CLOEXEC: usize = 0o2000000;
/// `EFD_NONBLOCK` (== `O_NONBLOCK`).
const EFD_NONBLOCK: usize = 0o4000;

/// One epoll event: interest/readiness mask plus the caller's 64-bit tag.
/// The kernel's layout is packed on x86_64 and naturally aligned elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Debug, Default)]
pub struct EpollEvent {
    /// Event mask (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller tag, returned verbatim with each event (the reactor packs a
    /// slab index + generation in here).
    pub data: u64,
}

/// An epoll instance (closed on drop).
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let ev = EpollEvent { events, data };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd.as_raw_fd() as usize,
                op as usize,
                fd as usize,
                std::ptr::addr_of!(ev) as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Register `fd` with the given interest mask and tag.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Change an existing registration's interest mask.
    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Remove a registration (harmless if the fd is already gone).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for events; `timeout_ms < 0` blocks indefinitely. Returns the
    /// number of `events` entries filled; `EINTR` is reported as zero
    /// events (the caller's loop re-evaluates and waits again).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // epoll_pwait with a null sigmask == epoll_wait, and exists on
        // every architecture (aarch64 never had plain epoll_wait).
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd.as_raw_fd() as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0,
                0,
            )
        };
        match check(ret) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

// -- eventfd ---------------------------------------------------------------

/// A non-blocking eventfd: the reactor's cross-thread doorbell. Workers
/// `signal()` after queueing a completion; the reactor holds the fd in its
/// epoll set and `drain()`s it on wake-up.
#[derive(Debug)]
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<EventFd> {
        let fd = check(unsafe { syscall6(nr::EVENTFD2, 0, CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Ring the doorbell (add 1 to the counter). Never blocks: the counter
    /// saturating (`EAGAIN`) already means the reactor has a pending
    /// wake-up, which is all a signal needs to guarantee.
    pub fn signal(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = unsafe {
            syscall6(
                nr::WRITE,
                self.fd.as_raw_fd() as usize,
                one.as_ptr() as usize,
                one.len(),
                0,
                0,
                0,
            )
        };
    }

    /// Reset the counter to zero (collapses any number of signals into one
    /// wake-up). Non-blocking; a zero counter is not an error.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe {
            syscall6(
                nr::READ,
                self.fd.as_raw_fd() as usize,
                buf.as_mut_ptr() as usize,
                buf.len(),
                0,
                0,
                0,
            )
        };
    }
}

// -- rlimit ----------------------------------------------------------------

const RLIMIT_NOFILE: usize = 7;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct RLimit64 {
    cur: u64,
    max: u64,
}

fn getrlimit_nofile() -> io::Result<RLimit64> {
    let mut old = RLimit64 { cur: 0, max: 0 };
    check(unsafe {
        syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            0,
            std::ptr::addr_of_mut!(old) as usize,
            0,
            0,
        )
    })?;
    Ok(old)
}

fn setrlimit_nofile(new: RLimit64) -> io::Result<()> {
    check(unsafe {
        syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            std::ptr::addr_of!(new) as usize,
            0,
            0,
            0,
        )
    })
    .map(|_| ())
}

/// Raise the open-file soft limit to at least `want` fds, pushing the hard
/// limit too when the process is privileged to. Returns the soft limit in
/// effect afterwards (which may be below `want` on an unprivileged process
/// with a low hard limit) — callers holding thousands of sockets (the C10K
/// bench, the 1000-connection shutdown test) size themselves to it.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let old = getrlimit_nofile()?;
    if old.cur >= want {
        return Ok(old.cur);
    }
    if old.max < want {
        // Privileged processes may raise the hard limit outright.
        let raised = RLimit64 {
            cur: want,
            max: want,
        };
        if setrlimit_nofile(raised).is_ok() {
            return Ok(want);
        }
    }
    let new = RLimit64 {
        cur: want.min(old.max),
        max: old.max,
    };
    setrlimit_nofile(new)?;
    Ok(new.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::IntoRawFd;

    #[test]
    fn epoll_reports_eventfd_readiness() {
        let epoll = Epoll::new().expect("epoll_create1");
        let efd = EventFd::new().expect("eventfd2");
        epoll.add(efd.raw_fd(), EPOLLIN, 7).expect("ctl add");

        // Nothing signalled: a zero-timeout wait returns no events.
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // Signalled: EPOLLIN with our tag.
        efd.signal();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        // Drained: back to no events (level-triggered).
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        // Coalescing: many signals, one drain.
        for _ in 0..100 {
            efd.signal();
        }
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        epoll.del(efd.raw_fd()).expect("ctl del");
        efd.signal();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_mod_changes_interest() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw_fd(), 0, 1).unwrap();
        efd.signal();
        let mut events = [EpollEvent::default(); 4];
        // No EPOLLIN interest yet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        epoll.modify(efd.raw_fd(), EPOLLIN, 2).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        assert_eq!({ events[0].data }, 2);
    }

    #[test]
    fn errors_map_to_io_error() {
        let epoll = Epoll::new().unwrap();
        // Adding a closed fd is EBADF, surfaced as a normal io::Error.
        let dead = EventFd::new().unwrap().fd.into_raw_fd();
        // SAFETY: immediately closed; the raw fd is used only as a known-bad
        // value afterwards.
        drop(unsafe { OwnedFd::from_raw_fd(dead) });
        let err = epoll.add(dead, EPOLLIN, 0).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(9), "expected EBADF, got {err}");
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let before = getrlimit_nofile().unwrap();
        let now = raise_nofile_limit(before.cur).unwrap();
        assert!(now >= before.cur);
    }
}
