//! Grid interpolation with certified error bounds: answer parameter sweeps
//! from sparse exact solves.
//!
//! The LoPC fixed-point models are smooth in `W`, `St`, `So` and `C²`, and
//! the dominant query shape — the sweeps behind every figure of the paper —
//! asks for thousands of *near-identical* scenarios. The exact-bucket cache
//! only collapses float noise; each genuinely distinct sweep point still
//! pays a full solve. This module adds the missing layer: a **cell index**
//! over the [`AxisKind`](lopc_core::scenario::AxisKind) reference grid,
//! answering in-cell queries by multilinear interpolation between the
//! cell's exactly solved corners — but *only* when the cell carries an
//! error certificate at least as tight as the caller's tolerance.
//!
//! # Cell lifecycle
//!
//! 1. A query with `max_rel_err > 0` snaps each continuous axis onto the
//!    reference grid ([`AxisKind::bracket`](lopc_core::scenario::AxisKind::bracket));
//!    axes sitting exactly on a
//!    grid point are *degenerate* and contribute no corners, so a `W`-sweep
//!    at a round-valued machine builds 1-D cells (two corners), not 4-D
//!    ones (sixteen).
//! 2. On first touch the cell is **built**: every corner, the cell
//!    **centre**, and (for cells spanning ≥ 2 axes) every **face
//!    midpoint** are solved exactly in *one batch* through the shared
//!    [`SolutionCache::solve_batch`] — the SoA fixed-point kernel iterates
//!    all lanes together, and adjacent cells still reuse corners through
//!    the cache. Each probe is compared against its own interpolation; the
//!    worst observed residual, inflated by [`SAFETY_FACTOR`] and floored
//!    at [`CERT_FLOOR`], becomes the cell's certified relative error. The
//!    safety factor is calibrated offline by the `interp_err` bench
//!    (`BENCH_sim.json`, `interp_err` section), which sweeps all four
//!    closed-form variants and verifies the certificate dominates the true
//!    worst-case in-cell residual.
//! 3. Later queries in the cell are answered by interpolation iff
//!    `certificate <= max_rel_err`; otherwise they fall back to the exact
//!    path. `max_rel_err = 0` (the default) never consults the cell index
//!    at all and stays bit-identical to [`lopc_core::scenario::solve`].
//! 4. Two consecutive serving cells that share their discrete identity and
//!    differ by one axis bracket advancing reveal a **sweep direction**:
//!    the next cell along it is pre-built immediately, so the sweep's next
//!    first touch finds a finished cell instead of paying build latency.
//!    Prefetched cells are ordinary cells — same build, same certificate
//!    gate; a wrong guess costs one speculative build, never a wrong
//!    answer.
//!
//! Cells that cannot be trusted — a corner fails to solve, corners
//! disagree on the discrete optimal `ps`, or a component is `NaN` in some
//! corners but not others — get an infinite certificate: permanently
//! exact, never wrong.
//!
//! # Cell shipping (cluster tier, DESIGN.md §15)
//!
//! A built cell plus its certificate is a *portable, verifiable unit*:
//! nothing in it refers to the process that built it. The cluster layer
//! exploits that through three hooks on this module:
//!
//! * [`InterpCache::export_cell`] serializes a resident certified cell
//!   (template scenario, brackets, corners, certificate) as a
//!   [`CellExport`] for `GET /v1/cell/{key}`;
//! * [`InterpCache::import_cell`] admits a shipped cell — but only after
//!   **re-verifying the certificate against a locally solved spot-probe**:
//!   the importer exactly solves the cell centre itself and requires
//!   `rel_resid(interpolate(centre), exact) * SAFETY_FACTOR <= cert`.
//!   Solvers are deterministic, so an honest peer's cell always passes
//!   (its own certificate was derived from the *worst* probe, centre
//!   included); a corrupted or forged cell fails and is replaced by an
//!   untrusted cell — that key permanently falls back to exact solving.
//!   Never trust the sender: the probe solve is the only authority.
//! * a [`CellSource`] plugged in via [`InterpCache::set_cell_source`] lets
//!   a cell miss ask the cluster for the cell before building it locally,
//!   and offers freshly prefetched sweep cells for push-to-peers.
//!
//! Corner solutions are **owned by the cell**, not referenced from the
//! LRU cache: a certificate can never outlive the data it certifies, and
//! the exact cache stays a pure repeat-accelerator whose eviction policy
//! needs no pinning entanglement (the cache-internals tests pin this
//! independence: hammering the LRU until the corner entries are evicted
//! must not perturb interpolated answers).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::cache::SolutionCache;
use lopc_core::scenario::{AxisBracket, AxisValue, INTERP_AXES};
use lopc_core::{ModelError, Prediction, Scenario};

/// Multiplier applied to the observed centre residual to obtain the
/// certified bound. Calibrated offline by `cargo bench -p lopc-bench
/// --bench interp_err`, which records the worst observed ratio of true
/// in-cell residual to centre residual across dense sweeps of all four
/// closed-form variants; this constant must dominate that ratio (see
/// `BENCH_sim.json`, `interp_err.worst_true_over_center`).
pub const SAFETY_FACTOR: f64 = 4.0;

/// Lower bound on any finite certificate. The probes can observe residuals
/// of zero (locally linear response) while the true in-cell error is merely
/// *small*; the floor covers those higher-order leftovers plus
/// key-quantization noise. Callers asking for tolerances below the floor
/// always get exact solves.
///
/// The floor sits at `1e-4` because the probe set captures the full
/// quadratic error structure of multilinear interpolation: in 1-D the
/// interpolation error of a smooth response peaks (to leading order) at
/// the cell centre, which the centre probe observes directly; in higher
/// dimensions curvature contributions of opposite sign can *cancel* at the
/// centre (`f = x² − y²` interpolates exactly there while being maximally
/// wrong at the face midpoints), so cell builds probe every face midpoint
/// too and certify against the worst residual over all probes.
pub const CERT_FLOOR: f64 = 1e-4;

/// How a prediction was produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Served {
    /// Exact path: solved (or exact-cache hit), bit-identical to
    /// [`lopc_core::scenario::solve`].
    Exact,
    /// Interpolated inside a certified cell.
    Interpolated {
        /// The cell's certified relative error (`<=` the request tolerance).
        certified_rel_err: f64,
    },
}

/// Identity of one grid cell: variant tag, discrete parameters, and the
/// bit patterns of every axis bracket endpoint.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellKey(Box<[u64]>);

impl CellKey {
    fn of(scenario: &Scenario, brackets: &[AxisBracket; INTERP_AXES]) -> Option<CellKey> {
        let mut words: Vec<u64> = Vec::with_capacity(3 + 2 * INTERP_AXES);
        match scenario {
            Scenario::AllToAll { machine, .. } => {
                words.push(0);
                words.push(machine.p as u64);
            }
            Scenario::ClientServer { machine, ps, .. } => {
                words.push(1);
                words.push(machine.p as u64);
                words.push(ps.map_or(u64::MAX, |ps| ps as u64));
            }
            Scenario::ForkJoin { machine, k, .. } => {
                words.push(2);
                words.push(machine.p as u64);
                words.push(*k as u64);
            }
            Scenario::SharedMemory { machine, .. } => {
                words.push(4);
                words.push(machine.p as u64);
            }
            Scenario::General(_) => return None,
        }
        for b in brackets {
            words.push(b.lo.to_bits());
            words.push(b.hi.to_bits());
        }
        Some(CellKey(words.into_boxed_slice()))
    }

    /// FNV-1a over the key words. Selects the local shard *and* routes the
    /// cell on the cluster ring — peers must agree on a cell's home.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &w in self.0.iter() {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// Wire form of the key: the words in lowercase hex joined by `-`,
    /// URL-safe by construction (`GET /v1/cell/{wire}`).
    pub fn to_wire(&self) -> String {
        let mut out = String::with_capacity(self.0.len() * 17);
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                out.push('-');
            }
            out.push_str(&format!("{w:x}"));
        }
        out
    }

    /// Parse a wire key. `None` for anything that is not a plausible key:
    /// empty, non-hex, or more words than any scenario variant produces.
    pub fn from_wire(wire: &str) -> Option<CellKey> {
        // Largest legitimate key: 3 discrete words + 2 per axis.
        const MAX_WORDS: usize = 3 + 2 * INTERP_AXES;
        if wire.is_empty() || wire.len() > MAX_WORDS * 17 {
            return None;
        }
        let words: Vec<u64> = wire
            .split('-')
            .map(|part| u64::from_str_radix(part, 16).ok())
            .collect::<Option<Vec<u64>>>()?;
        if words.len() > MAX_WORDS {
            return None;
        }
        Some(CellKey(words.into_boxed_slice()))
    }
}

/// A cell in transit between nodes: everything needed to reconstruct (and
/// independently re-verify) it. Produced by [`InterpCache::export_cell`],
/// consumed by [`InterpCache::import_cell`]; the JSON codec lives in
/// [`crate::codec`].
#[derive(Clone, Debug, PartialEq)]
pub struct CellExport {
    /// The cell's wire key (`CellKey` words in hex, `-`-joined).
    pub wire_key: String,
    /// A scenario inside the cell — carries the discrete identity
    /// (variant, machine, `ps`/`k`); its axis coordinates are overwritten
    /// when reconstructing corners/probes.
    pub template: Scenario,
    /// The cell's axis brackets (degenerate entries span nothing).
    pub brackets: [AxisBracket; INTERP_AXES],
    /// Corner solutions in bitmask order (see `Cell`).
    pub corners: Vec<Prediction>,
    /// The *claimed* certificate — never trusted as shipped: the importer
    /// re-derives trust from its own spot-probe solve.
    pub cert: f64,
}

/// Outcome of [`InterpCache::import_cell`].
#[derive(Clone, Debug, PartialEq)]
pub enum ImportOutcome {
    /// Verified and admitted; later in-tolerance queries interpolate.
    Admitted,
    /// A cell for this key is already resident (kept; import dropped).
    AlreadyResident,
    /// Verification failed: the key slot was poisoned with an untrusted
    /// cell, so this key permanently falls back to exact solving.
    Rejected(String),
}

/// The cluster's side of cell shipping, plugged into the cache by the
/// serving layer. Both calls run on whatever thread missed (or prefetched)
/// a cell — implementations must bound their own latency (short
/// timeouts / background threads).
pub trait CellSource: Send + Sync {
    /// A cell miss: ask the peers for `wire_key`. `Some` is decoded but
    /// **unverified** — the cache re-verifies before admitting.
    fn fetch(&self, wire_key: &str, key_hash: u64) -> Option<CellExport>;

    /// A *speculative* pull, issued by the sweep prefetcher ahead of
    /// demand: unlike a miss (where the ring owner almost always has the
    /// cell, so a preference-ordered walk stops at the first peer), a
    /// prefetch cannot know which peer warmed ahead, and it runs inline in
    /// a serving request — implementations should ask all peers in one
    /// concurrent wave rather than serially. Defaults to [`Self::fetch`]
    /// for sources with no cheaper wave.
    fn fetch_speculative(&self, wire_key: &str, key_hash: u64) -> Option<CellExport> {
        self.fetch(wire_key, key_hash)
    }

    /// A sweep prefetch built `export` locally: offer it to peers
    /// (best-effort push; failures are the receiver's problem).
    fn offer(&self, export: &CellExport);
}

/// One built cell: brackets, exactly solved corners, certificate.
#[derive(Debug)]
struct Cell {
    brackets: [AxisBracket; INTERP_AXES],
    /// Indices of the non-degenerate axes, in axis order.
    span_axes: Vec<usize>,
    /// `2^span_axes.len()` corner solutions in bitmask order (bit `j` set =
    /// the `hi` endpoint of `span_axes[j]`). Empty when the cell is
    /// untrusted (`cert` infinite).
    corners: Vec<Prediction>,
    /// Certified relative error; `INFINITY` = never interpolate here.
    cert: f64,
    /// A scenario carrying the cell's discrete identity, kept so the cell
    /// can be exported to peers. `None` for untrusted cells (which are
    /// never shipped).
    template: Option<Scenario>,
}

impl Cell {
    fn untrusted(brackets: [AxisBracket; INTERP_AXES]) -> Cell {
        Cell {
            brackets,
            span_axes: Vec::new(),
            corners: Vec::new(),
            cert: f64::INFINITY,
            template: None,
        }
    }

    /// Multilinear interpolation of the corner solutions at `axes`.
    fn interpolate(&self, axes: &[AxisValue; INTERP_AXES]) -> Prediction {
        let ts: Vec<f64> = self
            .span_axes
            .iter()
            .map(|&a| self.brackets[a].weight(axes[a].value))
            .collect();
        let mut acc = [0.0f64; 6];
        let mut nan = [false; 6];
        for (mask, corner) in self.corners.iter().enumerate() {
            let mut w = 1.0;
            for (j, t) in ts.iter().enumerate() {
                w *= if mask & (1 << j) != 0 { *t } else { 1.0 - *t };
            }
            for (k, field) in corner_fields(corner).into_iter().enumerate() {
                if field.is_nan() {
                    nan[k] = true;
                } else {
                    acc[k] += w * field;
                }
            }
        }
        Prediction {
            r: if nan[0] { f64::NAN } else { acc[0] },
            x: if nan[1] { f64::NAN } else { acc[1] },
            rw: if nan[2] { f64::NAN } else { acc[2] },
            rq: if nan[3] { f64::NAN } else { acc[3] },
            ry: if nan[4] { f64::NAN } else { acc[4] },
            contention: if nan[5] { f64::NAN } else { acc[5] },
            ps: self.corners[0].ps,
            // No solver ran for this answer; 0 mirrors the closed-form
            // client-server path, which also reports 0.
            iterations: 0,
        }
    }
}

/// The six continuous prediction components, in a fixed order.
fn corner_fields(p: &Prediction) -> [f64; 6] {
    [p.r, p.x, p.rw, p.rq, p.ry, p.contention]
}

/// The certified-error metric: worst relative deviation of `approx` from
/// `exact` over the continuous components. Cycle-valued components
/// (`r`, `rw`, `rq`, `ry`, `contention`) are measured relative to
/// `max(|component|, |R|)` — they share `R`'s scale, and `contention`
/// legitimately passes near zero where a naive relative error would
/// explode; throughput `x` (a different unit, never near zero) is measured
/// relative to itself. `NaN`-pattern mismatches are infinitely wrong;
/// matching `NaN`s contribute nothing. Discrete fields (`ps`,
/// `iterations`) are excluded — `ps` agreement is enforced structurally at
/// cell build.
pub fn rel_resid(approx: &Prediction, exact: &Prediction) -> f64 {
    let scale_r = exact.r.abs();
    let pairs = [
        (approx.r, exact.r, scale_r),
        (approx.x, exact.x, exact.x.abs()),
        (approx.rw, exact.rw, exact.rw.abs().max(scale_r)),
        (approx.rq, exact.rq, exact.rq.abs().max(scale_r)),
        (approx.ry, exact.ry, exact.ry.abs().max(scale_r)),
        (
            approx.contention,
            exact.contention,
            exact.contention.abs().max(scale_r),
        ),
    ];
    let mut worst = 0.0f64;
    for (a, e, scale) in pairs {
        if a.is_nan() || e.is_nan() {
            if a.is_nan() != e.is_nan() {
                return f64::INFINITY;
            }
            continue;
        }
        let d = (a - e).abs();
        if d == 0.0 {
            continue;
        }
        if scale == 0.0 {
            return f64::INFINITY;
        }
        worst = worst.max(d / scale);
    }
    worst
}

/// One shard of the cell index: FIFO-bounded map of built (or building)
/// cells. `Arc<OnceLock<Cell>>` gives build-once semantics under
/// concurrency — the first toucher builds (outside the shard lock), racing
/// threads block on the same slot instead of duplicating the corner
/// solves, which matters when a parallel batch walks a sweep front across
/// an empty grid.
struct CellShard {
    map: HashMap<CellKey, Arc<OnceLock<Cell>>>,
    /// Insertion order; in sync with `map` (cells are only removed by
    /// FIFO eviction). Eviction is FIFO rather than LRU on purpose: an
    /// evicted cell whose corners are still in the exact cache rebuilds
    /// for free, so recency tracking buys nothing here.
    order: VecDeque<CellKey>,
    capacity: usize,
}

impl CellShard {
    fn slot(&mut self, key: &CellKey) -> Arc<OnceLock<Cell>> {
        if let Some(slot) = self.map.get(key) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(OnceLock::new());
        self.map.insert(key.clone(), Arc::clone(&slot));
        self.order.push_back(key.clone());
        while self.order.len() > self.capacity {
            let evict = self.order.pop_front().expect("order non-empty");
            self.map.remove(&evict);
        }
        slot
    }
}

/// Sweep-cursor state for predictive prefetch: the last cell that served
/// an interpolated answer. Two *consecutive* serving cells that share
/// their discrete identity and differ by exactly one axis bracket
/// advancing reveal a sweep direction; the cell one step further ahead is
/// then built before the cursor reaches it.
struct SweepCursor {
    key: CellKey,
    brackets: [AxisBracket; INTERP_AXES],
}

/// The interpolating cache: the sharded exact [`SolutionCache`] plus the
/// certified cell index layered over it. One instance per server; share by
/// reference.
pub struct InterpCache {
    cache: SolutionCache,
    shards: Vec<Mutex<CellShard>>,
    cursor: Mutex<Option<SweepCursor>>,
    interp_hits: AtomicU64,
    interp_fallbacks: AtomicU64,
    cells_built: AtomicU64,
    cells_prefetched: AtomicU64,
    cells_received: AtomicU64,
    cells_rejected: AtomicU64,
    /// The cluster hook; absent in single-node operation.
    source: OnceLock<Arc<dyn CellSource>>,
}

impl InterpCache {
    /// Wrap `cache` with a cell index of `cell_shards` independently locked
    /// shards holding up to `cells_per_shard` cells each (both clamped to
    /// at least 1).
    pub fn new(cache: SolutionCache, cell_shards: usize, cells_per_shard: usize) -> Self {
        InterpCache {
            cache,
            shards: (0..cell_shards.max(1))
                .map(|_| {
                    Mutex::new(CellShard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                        capacity: cells_per_shard.max(1),
                    })
                })
                .collect(),
            cursor: Mutex::new(None),
            interp_hits: AtomicU64::new(0),
            interp_fallbacks: AtomicU64::new(0),
            cells_built: AtomicU64::new(0),
            cells_prefetched: AtomicU64::new(0),
            cells_received: AtomicU64::new(0),
            cells_rejected: AtomicU64::new(0),
            source: OnceLock::new(),
        }
    }

    /// Plug in the cluster's cell source (at most once; later calls are
    /// ignored). With a source set, a cell miss first asks the peers for
    /// the cell — admitting it only after local re-verification — and
    /// sweep-prefetched cells are offered back for pushing.
    pub fn set_cell_source(&self, source: Arc<dyn CellSource>) {
        let _ = self.source.set(source);
    }

    /// The underlying exact cache (counters, direct exact access).
    pub fn cache(&self) -> &SolutionCache {
        &self.cache
    }

    /// Answers served by interpolation so far.
    pub fn interp_hits(&self) -> u64 {
        self.interp_hits.load(Ordering::Relaxed)
    }

    /// Requests that asked for interpolation (`max_rel_err > 0`) but were
    /// served exactly: ineligible variant, unbracketable coordinate, or a
    /// certificate wider than the tolerance.
    pub fn interp_fallbacks(&self) -> u64 {
        self.interp_fallbacks.load(Ordering::Relaxed)
    }

    /// Cells built (corner + probe solve batches performed).
    pub fn cells_built(&self) -> u64 {
        self.cells_built.load(Ordering::Relaxed)
    }

    /// Cells built speculatively by the sweep-direction prefetcher (a
    /// subset of [`InterpCache::cells_built`]).
    pub fn cells_prefetched(&self) -> u64 {
        self.cells_prefetched.load(Ordering::Relaxed)
    }

    /// Cells admitted from peers after passing spot-probe re-verification.
    pub fn cells_received(&self) -> u64 {
        self.cells_received.load(Ordering::Relaxed)
    }

    /// Shipped cells that failed re-verification and were rejected (their
    /// keys permanently fall back to exact solving).
    pub fn cells_rejected(&self) -> u64 {
        self.cells_rejected.load(Ordering::Relaxed)
    }

    /// Cells currently resident across all shards.
    pub fn cells(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cell shard poisoned").map.len())
            .sum()
    }

    /// Answer one scenario within `max_rel_err` relative tolerance.
    ///
    /// `max_rel_err <= 0` (and any non-finite value) is **exact mode**:
    /// the request never touches the cell index and the answer is
    /// bit-identical to [`lopc_core::scenario::solve`]. A positive
    /// tolerance permits interpolation when a certified cell covers the
    /// query; the certificate, not the caller, decides — an uncertifiable
    /// query silently gets the exact answer (tolerances are upper bounds,
    /// and exact always satisfies them).
    pub fn predict(&self, scenario: &Scenario, max_rel_err: f64) -> Result<Prediction, ModelError> {
        self.predict_traced(scenario, max_rel_err).map(|(p, _)| p)
    }

    /// [`InterpCache::predict`], also reporting which path answered.
    pub fn predict_traced(
        &self,
        scenario: &Scenario,
        max_rel_err: f64,
    ) -> Result<(Prediction, Served), ModelError> {
        // NaN and infinities count as "no usable tolerance": exact mode.
        if !max_rel_err.is_finite() || max_rel_err <= 0.0 {
            return self
                .cache
                .get_or_solve(scenario)
                .map(|p| (p, Served::Exact));
        }
        // The exact answer may already be resident — never interpolate past
        // a bit-identical hit.
        if let Some(p) = self.cache.lookup(scenario) {
            return Ok((p, Served::Exact));
        }
        match self.try_interpolate(scenario, max_rel_err) {
            Some(served) => {
                self.interp_hits.fetch_add(1, Ordering::Relaxed);
                Ok(served)
            }
            None => {
                self.interp_fallbacks.fetch_add(1, Ordering::Relaxed);
                self.cache
                    .get_or_solve(scenario)
                    .map(|p| (p, Served::Exact))
            }
        }
    }

    /// Batched [`InterpCache::predict`]: every lane is answered by the same
    /// policy (exact mode, resident-exact shortcut, certified
    /// interpolation, exact fallback), but all lanes that end up needing an
    /// exact solve go through one key-deduped
    /// [`SolutionCache::solve_batch`] call — the SoA kernel — instead of
    /// lane-at-a-time solves.
    pub fn predict_batch(
        &self,
        scenarios: &[Scenario],
        max_rel_err: f64,
    ) -> Vec<Result<Prediction, ModelError>> {
        // Exact mode for the whole batch (the contract is per-request).
        if !max_rel_err.is_finite() || max_rel_err <= 0.0 {
            return self.cache.solve_batch(scenarios);
        }
        let n = scenarios.len();
        let mut out: Vec<Option<Result<Prediction, ModelError>>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let mut misses: Vec<usize> = Vec::new();
        for (i, s) in scenarios.iter().enumerate() {
            if let Some(p) = self.cache.lookup(s) {
                out[i] = Some(Ok(p));
                continue;
            }
            match self.try_interpolate(s, max_rel_err) {
                Some((p, _)) => {
                    self.interp_hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(Ok(p));
                }
                None => {
                    self.interp_fallbacks.fetch_add(1, Ordering::Relaxed);
                    misses.push(i);
                }
            }
        }
        if !misses.is_empty() {
            let lanes: Vec<Scenario> = misses.iter().map(|&i| scenarios[i].clone()).collect();
            for (&i, r) in misses.iter().zip(self.cache.solve_batch(&lanes)) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every lane resolved"))
            .collect()
    }

    /// The interpolation path; `None` means "serve exactly instead".
    fn try_interpolate(
        &self,
        scenario: &Scenario,
        max_rel_err: f64,
    ) -> Option<(Prediction, Served)> {
        // No certificate can beat the floor; don't pay for a cell build
        // that could never serve this tolerance.
        if max_rel_err < CERT_FLOOR {
            return None;
        }
        let axes = scenario.interp_axes()?;
        let mut brackets = [AxisBracket { lo: 0.0, hi: 0.0 }; INTERP_AXES];
        for (i, axis) in axes.iter().enumerate() {
            // Out-of-range coordinates (possible for unvalidated direct
            // library callers) never reach the grid: cells must not
            // straddle a validity boundary.
            let (min, max) = axis.kind.valid_range();
            if !(min..=max).contains(&axis.value) {
                return None;
            }
            brackets[i] = axis.kind.bracket(axis.value)?;
        }
        let key = CellKey::of(scenario, &brackets)?;
        let slot = self.slot_for(&key);
        // Build outside every lock; concurrent touchers of the same cell
        // block here instead of re-solving the corners. With a cluster
        // cell source plugged in, a miss first asks the peers — a shipped
        // cell is admitted only if it survives local re-verification, and
        // a failed verification poisons the key to permanently-exact.
        let cell = slot.get_or_init(|| {
            if let Some(source) = self.source.get() {
                if let Some(export) = source.fetch(&key.to_wire(), key.hash64()) {
                    match self.verify_export(&key, &export) {
                        Ok(cell) => {
                            self.cells_received.fetch_add(1, Ordering::Relaxed);
                            return cell;
                        }
                        Err(_) => {
                            self.cells_rejected.fetch_add(1, Ordering::Relaxed);
                            return Cell::untrusted(brackets);
                        }
                    }
                }
            }
            self.cells_built.fetch_add(1, Ordering::Relaxed);
            self.build_cell(scenario, brackets)
        });
        if cell.cert <= max_rel_err {
            self.advance_cursor(scenario, &axes, &key, &brackets);
            Some((
                cell.interpolate(&axes),
                Served::Interpolated {
                    certified_rel_err: cell.cert,
                },
            ))
        } else {
            None
        }
    }

    /// Record the serving cell in the sweep cursor; when the previous and
    /// current serving cells are adjacent (same discrete identity, exactly
    /// one axis bracket advanced), pre-build the next cell along the same
    /// direction so the sweep's next first-touch finds it already built.
    ///
    /// Prefetched cells go through [`InterpCache::build_cell`] like any
    /// other — they carry a real certificate (or stay untrusted) and are
    /// gated by the same `cert <= max_rel_err` check when a query actually
    /// lands in them. A wrong sweep guess costs one speculative build,
    /// never a wrong answer.
    fn advance_cursor(
        &self,
        scenario: &Scenario,
        axes: &[AxisValue; INTERP_AXES],
        key: &CellKey,
        brackets: &[AxisBracket; INTERP_AXES],
    ) {
        let prev = {
            let mut cursor = self.cursor.lock().expect("sweep cursor poisoned");
            cursor.replace(SweepCursor {
                key: key.clone(),
                brackets: *brackets,
            })
        };
        let Some(prev) = prev else { return };
        if prev.key == *key {
            return;
        }
        // Same discrete identity (variant, P, ps, k): the bracket words are
        // the trailing `2 * INTERP_AXES` of the key, everything before them
        // is discrete.
        let discrete = key.0.len() - 2 * INTERP_AXES;
        if prev.key.0.len() != key.0.len() || prev.key.0[..discrete] != key.0[..discrete] {
            return;
        }
        // Exactly one axis advanced by one cell, all others identical.
        let mut advanced: Option<(usize, bool)> = None;
        for (i, &c) in brackets.iter().enumerate() {
            let p = prev.brackets[i];
            if p == c {
                continue;
            }
            if advanced.is_some() || p.is_degenerate() || c.is_degenerate() {
                return;
            }
            if c.lo == p.hi {
                advanced = Some((i, true));
            } else if c.hi == p.lo {
                advanced = Some((i, false));
            } else {
                return;
            }
        }
        let Some((ax, ascending)) = advanced else {
            return;
        };
        // Predict the next cell: probe just past the boundary ahead of the
        // cursor and snap back onto the grid.
        let probe = if ascending {
            brackets[ax].hi * (1.0 + 1e-6)
        } else if brackets[ax].lo > 0.0 {
            brackets[ax].lo * (1.0 - 1e-6)
        } else {
            return; // the grid ends at 0: nothing ahead
        };
        let mut coords: [f64; INTERP_AXES] = std::array::from_fn(|i| axes[i].value);
        coords[ax] = probe;
        let Some(next_scenario) = scenario.with_axis_values(coords) else {
            return;
        };
        let mut next_brackets = [AxisBracket { lo: 0.0, hi: 0.0 }; INTERP_AXES];
        for (i, axis) in next_scenario
            .interp_axes()
            .expect("same variant as the serving scenario")
            .iter()
            .enumerate()
        {
            let (min, max) = axis.kind.valid_range();
            if !(min..=max).contains(&axis.value) {
                return;
            }
            let Some(b) = axis.kind.bracket(axis.value) else {
                return;
            };
            next_brackets[i] = b;
        }
        let Some(next_key) = CellKey::of(&next_scenario, &next_brackets) else {
            return;
        };
        if next_key == *key {
            return; // probe collapsed back into the serving cell
        }
        let slot = self.slot_for(&next_key);
        if slot.get().is_some() {
            return; // already built (e.g. the sweep ran here before)
        }
        let mut pulled = false;
        let cell = slot.get_or_init(|| {
            // Prefetch prefers pulling a peer's finished cell over paying
            // the corner+probe solves locally. A shipped cell that fails
            // verification is simply ignored here — a speculative
            // prefetch is no verdict on the key — and built honestly.
            if let Some(source) = self.source.get() {
                if let Some(export) =
                    source.fetch_speculative(&next_key.to_wire(), next_key.hash64())
                {
                    if let Ok(cell) = self.verify_export(&next_key, &export) {
                        pulled = true;
                        self.cells_received.fetch_add(1, Ordering::Relaxed);
                        return cell;
                    }
                }
            }
            self.cells_built.fetch_add(1, Ordering::Relaxed);
            self.cells_prefetched.fetch_add(1, Ordering::Relaxed);
            self.build_cell(&next_scenario, next_brackets)
        });
        // Push-on-sweep: a detected sweep direction predicts the *peers'*
        // future just as well as ours — offer the fresh cell so a sweep
        // fanned out across the ring warms every node it will touch. Cells
        // that just arrived from a peer are not echoed back.
        if pulled {
            return;
        }
        if let Some(source) = self.source.get() {
            if let Some(export) = make_export(&next_key, cell) {
                source.offer(&export);
            }
        }
    }

    /// The build-once slot for `key` (creating it, and FIFO-evicting, as
    /// needed).
    fn slot_for(&self, key: &CellKey) -> Arc<OnceLock<Cell>> {
        let shard = &self.shards[(key.hash64() % self.shards.len() as u64) as usize];
        shard.lock().expect("cell shard poisoned").slot(key)
    }

    /// Serialize the resident cell under `wire_key` for shipping to a
    /// peer. `None` when the key is unparseable, the cell is absent or
    /// still building, or it is untrusted (infinite certificates are a
    /// local verdict, never shipped).
    pub fn export_cell(&self, wire_key: &str) -> Option<CellExport> {
        let key = CellKey::from_wire(wire_key)?;
        let slot = {
            let shard = &self.shards[(key.hash64() % self.shards.len() as u64) as usize];
            let shard = shard.lock().expect("cell shard poisoned");
            Arc::clone(shard.map.get(&key)?)
        };
        make_export(&key, slot.get()?)
    }

    /// Wire keys of every fully built resident cell (trusted or not), in
    /// no particular order. Diagnostics and tests; the serving paths all
    /// address cells by key.
    pub fn resident_cell_keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cell shard poisoned");
            keys.extend(
                shard
                    .map
                    .iter()
                    .filter(|(_, slot)| slot.get().is_some())
                    .map(|(key, _)| key.to_wire()),
            );
        }
        keys
    }

    /// Admit a cell shipped by a peer (the `POST /v1/cell/{key}` push
    /// path), re-verifying its certificate against a locally solved
    /// spot-probe first. A rejected import poisons the key with an
    /// untrusted cell — permanently exact — unless a trusted cell is
    /// already resident.
    pub fn import_cell(&self, export: &CellExport) -> ImportOutcome {
        let Some(key) = CellKey::from_wire(&export.wire_key) else {
            self.cells_rejected.fetch_add(1, Ordering::Relaxed);
            return ImportOutcome::Rejected("unparseable cell key".into());
        };
        match self.verify_export(&key, export) {
            Ok(cell) => {
                let slot = self.slot_for(&key);
                let mut admitted = false;
                slot.get_or_init(|| {
                    admitted = true;
                    cell
                });
                if admitted {
                    self.cells_received.fetch_add(1, Ordering::Relaxed);
                    ImportOutcome::Admitted
                } else {
                    ImportOutcome::AlreadyResident
                }
            }
            Err(reason) => {
                self.cells_rejected.fetch_add(1, Ordering::Relaxed);
                let slot = self.slot_for(&key);
                slot.get_or_init(|| Cell::untrusted(export.brackets));
                ImportOutcome::Rejected(reason)
            }
        }
    }

    /// The import gate: structural validation plus certificate
    /// re-verification against a **locally solved** spot-probe. The sender
    /// is never trusted — the only authorities consulted are the claimed
    /// key (which binds the discrete identity and the bracket bit
    /// patterns), the local reference grid, and the local exact solver.
    ///
    /// Honest peers always pass: solvers are deterministic and
    /// bit-identical across nodes, so the centre residual recomputed here
    /// equals the one the builder observed, and the builder's certificate
    /// dominates `SAFETY_FACTOR` times its *worst* probe residual — the
    /// centre included.
    fn verify_export(&self, key: &CellKey, export: &CellExport) -> Result<Cell, String> {
        // The claimed key must be derivable from the shipped template and
        // brackets: this binds variant, machine size, `ps`/`k`, and every
        // bracket endpoint bit pattern.
        match CellKey::of(&export.template, &export.brackets) {
            Some(recomputed) if recomputed == *key => {}
            Some(_) => return Err("cell key does not match template and brackets".into()),
            None => return Err("template scenario is not interpolation-eligible".into()),
        }
        // Brackets must be real cells of the local reference grid — not
        // arbitrary intervals a sender invented.
        let kinds = export
            .template
            .interp_axes()
            .expect("eligible template (key recomputed above)");
        for (i, b) in export.brackets.iter().enumerate() {
            let kind = kinds[i].kind;
            if !b.lo.is_finite() || !b.hi.is_finite() {
                return Err(format!("axis {i} bracket is not finite"));
            }
            let (min, max) = kind.valid_range();
            if !(min..=max).contains(&b.lo) || !(min..=max).contains(&b.hi) {
                return Err(format!("axis {i} bracket outside the valid range"));
            }
            let probe = if b.is_degenerate() {
                b.lo
            } else {
                0.5 * (b.lo + b.hi)
            };
            if kind.bracket(probe) != Some(*b) {
                return Err(format!("axis {i} bracket is not a grid cell"));
            }
        }
        let span_axes: Vec<usize> = (0..INTERP_AXES)
            .filter(|&i| !export.brackets[i].is_degenerate())
            .collect();
        if export.corners.len() != 1 << span_axes.len() {
            return Err(format!(
                "expected {} corners, got {}",
                1 << span_axes.len(),
                export.corners.len()
            ));
        }
        if !export.cert.is_finite() || export.cert < CERT_FLOOR {
            return Err("claimed certificate below the floor or non-finite".into());
        }
        // Same structural rules a local build enforces.
        let first = export.corners[0];
        for c in &export.corners {
            if c.ps != first.ps || !nan_compatible(c, &first) {
                return Err("corners disagree on discrete optimum or NaN pattern".into());
            }
            if corner_fields(c).into_iter().any(|f| f.is_infinite()) {
                return Err("corner component is infinite".into());
            }
        }
        let cell = Cell {
            brackets: export.brackets,
            span_axes,
            corners: export.corners.clone(),
            cert: export.cert,
            template: Some(export.template.clone()),
        };
        // The spot-probe: exactly solve the cell centre *here* and demand
        // the shipped data re-earns its certificate.
        let centre_coords: [f64; INTERP_AXES] =
            std::array::from_fn(|i| 0.5 * (export.brackets[i].lo + export.brackets[i].hi));
        let Some(centre) = export.template.with_axis_values(centre_coords) else {
            return Err("cell centre is not a constructible scenario".into());
        };
        if let Err(e) = centre.validate() {
            return Err(format!("cell centre is not a valid scenario: {e}"));
        }
        let exact = match self.cache.get_or_solve(&centre) {
            Ok(p) => p,
            Err(e) => return Err(format!("centre spot-probe unsolvable: {e}")),
        };
        if exact.ps != cell.corners[0].ps {
            return Err("centre spot-probe disagrees on the discrete optimum".into());
        }
        let centre_axes: [AxisValue; INTERP_AXES] = std::array::from_fn(|i| AxisValue {
            kind: kinds[i].kind,
            value: centre_coords[i],
        });
        let resid = rel_resid(&cell.interpolate(&centre_axes), &exact);
        let scaled = resid * SAFETY_FACTOR;
        // A NaN residual must reject too, so NaN is checked explicitly.
        if scaled.is_nan() || scaled > cell.cert {
            return Err(format!(
                "spot-probe residual {resid:e} breaks the claimed certificate {:e}",
                cell.cert
            ));
        }
        Ok(cell)
    }

    /// Solve the cell's corners and probes and derive the certificate —
    /// all exact solves issued as **one batch** through
    /// [`SolutionCache::solve_batch`], so the whole build runs through the
    /// SoA fixed-point kernel instead of `2^d + 1 + 2d` sequential solves.
    ///
    /// The probe set is the centre plus, for cells spanning two or more
    /// axes, every face midpoint: in 1-D the leading-order interpolation
    /// error peaks at the centre, but in higher dimensions curvature terms
    /// of opposite sign can cancel there while peaking on a face. The
    /// certificate covers the worst residual over all probes.
    fn build_cell(&self, template: &Scenario, brackets: [AxisBracket; INTERP_AXES]) -> Cell {
        let span_axes: Vec<usize> = (0..INTERP_AXES)
            .filter(|&i| !brackets[i].is_degenerate())
            .collect();
        let d = span_axes.len();

        let centre_coords: [f64; INTERP_AXES] =
            std::array::from_fn(|i| 0.5 * (brackets[i].lo + brackets[i].hi));
        let mut probe_coords: Vec<[f64; INTERP_AXES]> = vec![centre_coords];
        if d >= 2 {
            for &ax in &span_axes {
                for end in [brackets[ax].lo, brackets[ax].hi] {
                    let mut c = centre_coords;
                    c[ax] = end;
                    probe_coords.push(c);
                }
            }
        }

        // Corner lanes first (bitmask order), probe lanes riding along.
        let mut lanes: Vec<Scenario> = Vec::with_capacity((1 << d) + probe_coords.len());
        for mask in 0..(1u32 << d) {
            let mut coords: [f64; INTERP_AXES] = std::array::from_fn(|i| brackets[i].lo);
            for (j, &ax) in span_axes.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    coords[ax] = brackets[ax].hi;
                }
            }
            let Some(corner) = template.with_axis_values(coords) else {
                return Cell::untrusted(brackets);
            };
            lanes.push(corner);
        }
        for &coords in &probe_coords {
            let Some(probe) = template.with_axis_values(coords) else {
                return Cell::untrusted(brackets);
            };
            lanes.push(probe);
        }

        let mut results = self.cache.solve_batch(&lanes).into_iter();
        let mut corners: Vec<Prediction> = Vec::with_capacity(1 << d);
        for _ in 0..(1u32 << d) {
            match results.next().expect("one result per lane") {
                Ok(p) => corners.push(p),
                // A corner outside the solvable region poisons the whole
                // cell: certificates only cover cells that are smooth
                // throughout.
                Err(_) => return Cell::untrusted(brackets),
            }
        }

        // Structural consistency: one discrete optimum and one NaN pattern
        // across the whole cell, or no interpolation at all.
        let first = corners[0];
        for c in &corners[1..] {
            if c.ps != first.ps || !nan_compatible(c, &first) {
                return Cell::untrusted(brackets);
            }
        }

        let cell = Cell {
            brackets,
            span_axes,
            corners,
            cert: f64::INFINITY,
            template: Some(template.clone()),
        };
        let kinds = template.interp_axes().expect("eligible template");
        let mut worst = 0.0f64;
        for coords in probe_coords {
            let Some(Ok(exact)) = results.next() else {
                // An unsolvable probe means the cell is not smooth
                // throughout: no certificate.
                return Cell::untrusted(brackets);
            };
            if exact.ps != cell.corners[0].ps {
                return Cell::untrusted(brackets);
            }
            let probe_axes: [AxisValue; INTERP_AXES] = std::array::from_fn(|i| AxisValue {
                kind: kinds[i].kind,
                value: coords[i],
            });
            worst = worst.max(rel_resid(&cell.interpolate(&probe_axes), &exact));
        }
        Cell {
            cert: (worst * SAFETY_FACTOR).max(CERT_FLOOR),
            ..cell
        }
    }
}

/// The shippable form of a resident cell; `None` for untrusted cells.
fn make_export(key: &CellKey, cell: &Cell) -> Option<CellExport> {
    let template = cell.template.clone()?;
    cell.cert.is_finite().then(|| CellExport {
        wire_key: key.to_wire(),
        template,
        brackets: cell.brackets,
        corners: cell.corners.clone(),
        cert: cell.cert,
    })
}

/// Same components defined (`NaN`) in both predictions.
fn nan_compatible(a: &Prediction, b: &Prediction) -> bool {
    corner_fields(a)
        .into_iter()
        .zip(corner_fields(b))
        .all(|(x, y)| x.is_nan() == y.is_nan())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_core::Machine;

    fn machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    fn a2a(w: f64) -> Scenario {
        Scenario::AllToAll {
            machine: machine(),
            w,
        }
    }

    fn interp_cache() -> InterpCache {
        InterpCache::new(SolutionCache::new(4, 256), 4, 64)
    }

    #[test]
    fn zero_tolerance_is_bit_identical_exact_mode() {
        let c = interp_cache();
        let (p, served) = c.predict_traced(&a2a(777.7), 0.0).unwrap();
        assert_eq!(served, Served::Exact);
        let direct = lopc_core::scenario::solve(&a2a(777.7)).unwrap();
        assert_eq!(p.r.to_bits(), direct.r.to_bits());
        assert_eq!(c.cells(), 0, "exact mode never touches the cell index");
        assert_eq!(c.interp_hits() + c.interp_fallbacks(), 0);
    }

    #[test]
    fn interpolated_answer_is_within_the_certificate() {
        let c = interp_cache();
        // Off-grid query; generous tolerance.
        let q = a2a(777.7);
        let (p, served) = c.predict_traced(&q, 1e-2).unwrap();
        let cert = match served {
            Served::Interpolated { certified_rel_err } => certified_rel_err,
            Served::Exact => panic!("generous tolerance must interpolate"),
        };
        assert!(cert <= 1e-2);
        assert!(cert >= CERT_FLOOR);
        let exact = lopc_core::scenario::solve(&q).unwrap();
        let resid = rel_resid(&p, &exact);
        assert!(
            resid <= cert,
            "true residual {resid} exceeds certificate {cert}"
        );
        assert_eq!(c.interp_hits(), 1);
        assert_eq!(c.cells_built(), 1);
    }

    #[test]
    fn tolerance_below_floor_falls_back_to_exact() {
        let c = interp_cache();
        let q = a2a(777.7);
        let (p, served) = c.predict_traced(&q, CERT_FLOOR / 10.0).unwrap();
        assert_eq!(served, Served::Exact);
        assert_eq!(c.interp_fallbacks(), 1);
        let direct = lopc_core::scenario::solve(&q).unwrap();
        assert_eq!(p.r.to_bits(), direct.r.to_bits());
    }

    #[test]
    fn general_variant_always_exact() {
        let c = interp_cache();
        let q = Scenario::General(lopc_core::GeneralModel::homogeneous_all_to_all(
            machine(),
            300.0,
        ));
        let (_, served) = c.predict_traced(&q, 1e-2).unwrap();
        assert_eq!(served, Served::Exact);
        assert_eq!(c.interp_fallbacks(), 1);
        assert_eq!(c.cells(), 0);
    }

    #[test]
    fn sweep_shares_cells_and_corners() {
        let c = interp_cache();
        // 100 points inside one W bracket: first query builds the cell
        // (2 corners + 1 centre = 3 solves on a degenerate machine), the
        // other 99 are free.
        let b = lopc_core::scenario::AxisKind::Work.bracket(777.7).unwrap();
        assert!(!b.is_degenerate());
        for i in 0..100 {
            let w = b.lo + (b.hi - b.lo) * (0.05 + 0.9 * i as f64 / 99.0);
            let (p, _) = c.predict_traced(&a2a(w), 1e-2).unwrap();
            let exact = lopc_core::scenario::solve(&a2a(w)).unwrap();
            assert!(rel_resid(&p, &exact) <= 1e-2, "w={w}");
        }
        assert_eq!(c.cells_built(), 1);
        assert!(
            c.cache().misses() <= 3,
            "one 1-D cell costs at most 3 exact solves, did {}",
            c.cache().misses()
        );
        assert!(c.interp_hits() >= 98);
    }

    #[test]
    fn on_grid_query_interpolates_to_the_corner_solution() {
        let c = interp_cache();
        // All four axes on-grid: the cell is a point, interpolation is the
        // exact corner answer.
        let q = a2a(1000.0);
        let (p, served) = c.predict_traced(&q, 1e-2).unwrap();
        let exact = lopc_core::scenario::solve(&q).unwrap();
        match served {
            // First touch may interpolate (0-D cell) …
            Served::Interpolated { .. } => assert_eq!(p.r.to_bits(), exact.r.to_bits()),
            // … or hit the exact entry a previous build populated.
            Served::Exact => assert_eq!(p.r.to_bits(), exact.r.to_bits()),
        }
    }

    #[test]
    fn exact_entries_shortcut_interpolation() {
        let c = interp_cache();
        let q = a2a(777.7);
        // Exact solve first: the key is resident.
        let exact = c.predict(&q, 0.0).unwrap();
        let (p, served) = c.predict_traced(&q, 1e-2).unwrap();
        assert_eq!(served, Served::Exact, "resident exact answers win");
        assert_eq!(p.r.to_bits(), exact.r.to_bits());
        assert_eq!(c.cells(), 0);
    }

    #[test]
    fn concurrent_cell_builds_do_not_duplicate_corner_solves() {
        let c = InterpCache::new(SolutionCache::new(8, 256), 8, 64);
        let b = lopc_core::scenario::AxisKind::Work.bracket(777.7).unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..50 {
                        let f = 0.05 + 0.9 * ((i * 8 + t) as f64 / 400.0);
                        let w = b.lo + (b.hi - b.lo) * f;
                        let (p, _) = c.predict_traced(&a2a(w), 1e-2).unwrap();
                        let exact = lopc_core::scenario::solve(&a2a(w)).unwrap();
                        assert!(rel_resid(&p, &exact) <= 1e-2);
                    }
                });
            }
        });
        assert_eq!(c.cells_built(), 1, "OnceLock must build the cell once");
        // Corner/centre solves may race with the cache's lost-race window,
        // but the OnceLock bounds it to one builder: 3 distinct keys.
        assert!(c.cache().misses() <= 3);
    }

    #[test]
    fn cell_eviction_keeps_answers_correct() {
        // A cell index of capacity 1: every new cell evicts the previous
        // one; answers stay within tolerance throughout.
        let c = InterpCache::new(SolutionCache::new(2, 512), 1, 1);
        for w in [111.3, 333.3, 777.7, 111.3] {
            let (p, _) = c.predict_traced(&a2a(w), 1e-2).unwrap();
            let exact = lopc_core::scenario::solve(&a2a(w)).unwrap();
            assert!(rel_resid(&p, &exact) <= 1e-2, "w={w}");
        }
        assert_eq!(c.cells(), 1);
        // The revisited cell was rebuilt — but its corners were still in
        // the exact cache, so the rebuild cost no new solves.
        assert_eq!(c.cells_built(), 4);
    }

    #[test]
    fn rel_resid_metric() {
        let e = Prediction {
            r: 1000.0,
            x: 0.02,
            rw: 800.0,
            rq: 150.0,
            ry: 50.0,
            contention: 0.5,
            ps: None,
            iterations: 10,
        };
        assert_eq!(rel_resid(&e, &e), 0.0);
        // r off by 1 cycle: 1e-3 relative.
        let mut a = e;
        a.r = 1001.0;
        assert!((rel_resid(&a, &e) - 1e-3).abs() < 1e-12);
        // Near-zero contention is measured against R's scale, not itself.
        let mut a = e;
        a.contention = 0.6;
        assert!((rel_resid(&a, &e) - 1e-4).abs() < 1e-12);
        // Throughput is measured against itself.
        let mut a = e;
        a.x = 0.0202;
        assert!((rel_resid(&a, &e) - 0.01).abs() < 1e-9);
        // NaN-pattern mismatch is infinitely wrong; matching NaNs are fine.
        let mut a = e;
        a.rw = f64::NAN;
        assert_eq!(rel_resid(&a, &e), f64::INFINITY);
        let mut both = e;
        both.rw = f64::NAN;
        assert_eq!(rel_resid(&both, &both), 0.0);
    }

    #[test]
    fn predict_batch_exact_mode_is_bit_identical() {
        let c = interp_cache();
        let mut lanes: Vec<Scenario> = (0..20).map(|i| a2a(500.0 + 13.7 * i as f64)).collect();
        let bad = Scenario::AllToAll {
            machine: Machine::new(1, 25.0, 200.0),
            w: 10.0,
        };
        lanes.push(bad);
        let out = c.predict_batch(&lanes, 0.0);
        for (lane, r) in lanes.iter().zip(&out) {
            match (r, lopc_core::scenario::solve(lane)) {
                (Ok(p), Ok(e)) => assert_eq!(p.r.to_bits(), e.r.to_bits()),
                (Err(a), Err(b)) => assert_eq!(a, &b),
                (r, e) => panic!("batched {r:?} vs library {e:?}"),
            }
        }
        assert_eq!(c.cells(), 0, "exact mode never touches the cell index");
    }

    #[test]
    fn predict_batch_sweep_shares_cells_and_solves_misses_in_one_batch() {
        let c = interp_cache();
        let b = lopc_core::scenario::AxisKind::Work.bracket(777.7).unwrap();
        let lanes: Vec<Scenario> = (0..50)
            .map(|i| a2a(b.lo + (b.hi - b.lo) * (0.05 + 0.9 * i as f64 / 49.0)))
            .collect();
        let out = c.predict_batch(&lanes, 1e-2);
        for (lane, r) in lanes.iter().zip(&out) {
            let exact = lopc_core::scenario::solve(lane).unwrap();
            assert!(rel_resid(r.as_ref().unwrap(), &exact) <= 1e-2);
        }
        assert_eq!(c.cells_built(), 1);
        assert!(c.cache().misses() <= 3, "one 1-D cell, one batched build");
        assert!(c.interp_hits() >= 48);
        // An unsolvable lane in tolerance mode: its cell is untrusted, the
        // lane falls back to the exact batch and carries its own error.
        let bad = Scenario::AllToAll {
            machine: Machine::new(1, 25.0, 200.0),
            w: 10.0,
        };
        let out = c.predict_batch(&[lanes[0].clone(), bad], 1e-2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn two_axis_cells_probe_face_midpoints() {
        let c = interp_cache();
        // St off-grid too: the cell spans W and St (d = 2), so the build
        // batch is 4 corners + centre + 4 face midpoints.
        let q = Scenario::AllToAll {
            machine: Machine::new(32, 26.3, 200.0).with_c2(0.0),
            w: 777.7,
        };
        let (p, served) = c.predict_traced(&q, 1e-2).unwrap();
        let cert = match served {
            Served::Interpolated { certified_rel_err } => certified_rel_err,
            Served::Exact => panic!("smooth 2-D cell must certify"),
        };
        assert_eq!(c.cells_built(), 1);
        assert!(
            c.cache().misses() <= 9,
            "2-D cell build is 9 unique lanes, did {}",
            c.cache().misses()
        );
        let exact = lopc_core::scenario::solve(&q).unwrap();
        assert!(rel_resid(&p, &exact) <= cert);
    }

    #[test]
    fn sweep_direction_prefetch_builds_the_next_cell() {
        let c = interp_cache();
        // Two consecutive 1-D cells along W establish an ascending sweep;
        // the third cell must be prefetched before any query lands in it.
        let (_, s1) = c.predict_traced(&a2a(765.0), 1e-2).unwrap();
        let (_, s2) = c.predict_traced(&a2a(785.0), 1e-2).unwrap();
        assert!(matches!(s1, Served::Interpolated { .. }));
        assert!(matches!(s2, Served::Interpolated { .. }));
        assert_eq!(c.cells_prefetched(), 1, "ascent detected, next cell built");
        assert_eq!(c.cells_built(), 3);
        let misses_before = c.cache().misses();
        let (p, s3) = c.predict_traced(&a2a(805.0), 1e-2).unwrap();
        assert!(matches!(s3, Served::Interpolated { .. }));
        // Serving from the prefetched cell costs no solves of its own; the
        // only new misses belong to the *next* prefetch (the sweep stays
        // one cell ahead: corner 840 + centre 830, corner 820 is shared).
        assert_eq!(c.cells_prefetched(), 2, "steady sweep chains prefetches");
        assert_eq!(c.cells_built(), 4);
        assert_eq!(
            c.cache().misses(),
            misses_before + 2,
            "the prefetched cell serves the query without new exact solves"
        );
        let exact = lopc_core::scenario::solve(&a2a(805.0)).unwrap();
        assert!(rel_resid(&p, &exact) <= 1e-2);
        // Descending works symmetrically.
        let c = interp_cache();
        c.predict_traced(&a2a(805.0), 1e-2).unwrap();
        c.predict_traced(&a2a(785.0), 1e-2).unwrap();
        assert_eq!(c.cells_prefetched(), 1, "descent detected");
    }

    #[test]
    fn prefetched_cells_serve_only_with_a_valid_certificate() {
        // A client-server sweep with ps = None crosses regions where the
        // discrete optimum moves: some cells (prefetched ones included)
        // come out untrusted. Every answer must be within its certificate
        // when interpolated and bit-identical exact otherwise — a
        // prefetched cell gets no special trust.
        let c = interp_cache();
        let m = Machine::new(32, 50.0, 131.0).with_c2(1.0);
        let q = |w: f64| Scenario::ClientServer {
            machine: m,
            w,
            ps: None,
        };
        for i in 0..80 {
            let w = 400.0 + 12.5 * i as f64;
            let (p, served) = c.predict_traced(&q(w), 1e-2).unwrap();
            let exact = lopc_core::scenario::solve(&q(w)).unwrap();
            match served {
                Served::Interpolated { certified_rel_err } => {
                    assert!(certified_rel_err <= 1e-2);
                    assert!(
                        rel_resid(&p, &exact) <= certified_rel_err,
                        "w={w}: interpolated answer outside its certificate"
                    );
                }
                Served::Exact => {
                    assert_eq!(
                        p.r.to_bits(),
                        exact.r.to_bits(),
                        "w={w}: untrusted (or uncovered) queries stay exact"
                    );
                }
            }
        }
        assert!(
            c.cells_prefetched() >= 1,
            "a linear sweep must trigger the prefetcher"
        );
    }

    #[test]
    fn client_server_optimal_ps_cells_agree_or_fall_back() {
        let c = interp_cache();
        // Sweep W through a region where the optimal server count moves;
        // every answer must stay within tolerance, whether interpolated
        // (corners agreed) or exact (corners disagreed -> untrusted cell).
        let m = Machine::new(32, 50.0, 131.0).with_c2(1.0);
        for i in 0..60 {
            let w = 300.0 * 1.07f64.powi(i);
            let q = Scenario::ClientServer {
                machine: m,
                w,
                ps: None,
            };
            let (p, _) = c.predict_traced(&q, 1e-2).unwrap();
            let exact = lopc_core::scenario::solve(&q).unwrap();
            assert!(rel_resid(&p, &exact) <= 1e-2, "w={w}: {p:?} vs {exact:?}");
        }
    }

    /// Warm `c` with a tolerant W sweep and return every resident export.
    fn warm_and_export(c: &InterpCache) -> Vec<CellExport> {
        for i in 0..50 {
            c.predict(&a2a(700.0 + 10.0 * i as f64), 5e-2).unwrap();
        }
        let exports: Vec<CellExport> = c
            .resident_cell_keys()
            .into_iter()
            .filter_map(|k| c.export_cell(&k))
            .collect();
        assert!(!exports.is_empty(), "sweep built no exportable cells");
        exports
    }

    #[test]
    fn wire_keys_round_trip_and_reject_garbage() {
        let c = interp_cache();
        warm_and_export(&c);
        for wire in c.resident_cell_keys() {
            let key = CellKey::from_wire(&wire).expect("own key must parse");
            assert_eq!(key.to_wire(), wire);
            assert!(
                wire.chars().all(|ch| ch.is_ascii_hexdigit() || ch == '-'),
                "wire key must be URL-safe: {wire:?}"
            );
        }
        for bad in [
            "",
            "-",
            "xyz",
            "0-20-",
            "0--1",
            "0-20-deadbeefdeadbeef0",  // 17-hex-digit word overflows u64
            "0-1-2-3-4-5-6-7-8-9-a-b", // more words than any variant
            "0 20",
            "0-20-a\n",
        ] {
            assert!(CellKey::from_wire(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn export_import_round_trip_is_admitted_and_bit_identical() {
        let a = interp_cache();
        let exports = warm_and_export(&a);
        let b = interp_cache();
        for e in &exports {
            assert_eq!(b.import_cell(e), ImportOutcome::Admitted, "{}", e.wire_key);
        }
        assert_eq!(b.cells_received(), exports.len() as u64);
        assert_eq!(b.cells_rejected(), 0);
        // Served answers from imported cells are bit-identical to the
        // builder's: same corners, same arithmetic.
        for i in 0..50 {
            let q = a2a(700.0 + 10.0 * i as f64);
            let pa = a.predict(&q, 5e-2).unwrap();
            let pb = b.predict(&q, 5e-2).unwrap();
            assert_eq!(pa.r.to_bits(), pb.r.to_bits(), "w diverged at {i}");
        }
        // Re-import: every cell already resident.
        for e in &exports {
            assert_eq!(b.import_cell(e), ImportOutcome::AlreadyResident);
        }
    }

    #[test]
    fn imports_skip_corner_solves_entirely() {
        let a = interp_cache();
        let exports = warm_and_export(&a);
        let b = interp_cache();
        for e in &exports {
            b.import_cell(e);
        }
        // The importer paid one spot-probe solve per cell — not the 2+3
        // (corners + probes) a local build costs.
        assert_eq!(b.cache().misses(), exports.len() as u64);
        assert_eq!(b.cells_built(), 0, "imports must not count as builds");
    }

    #[test]
    fn tampered_imports_are_rejected_and_pinned_exact() {
        let a = interp_cache();
        let exports = warm_and_export(&a);
        let b = interp_cache();

        // Corner tampering: scale one corner's runtime by 1.5 — the local
        // centre spot-probe no longer fits the claimed certificate.
        let mut corners_tampered = exports[0].clone();
        corners_tampered.corners[0].r *= 1.5;
        assert!(matches!(
            b.import_cell(&corners_tampered),
            ImportOutcome::Rejected(_)
        ));
        // The slot is pinned untrusted: re-shipping the honest cell does
        // not displace the verdict (it reports Rejected, not Admitted).
        assert!(matches!(
            b.import_cell(&exports[0]),
            ImportOutcome::AlreadyResident | ImportOutcome::Rejected(_)
        ));
        // And tolerant queries in that cell are served exactly.
        let (p, served) = b.predict_traced(&a2a(705.0), 5e-2).unwrap();
        if CellKey::from_wire(&exports[0].wire_key).is_some() {
            let exact = lopc_core::scenario::solve(&a2a(705.0)).unwrap();
            if matches!(served, Served::Exact) {
                assert_eq!(p.r.to_bits(), exact.r.to_bits());
            }
        }

        // Certificate tampering: claim far more precision than the probes
        // support.
        let c = interp_cache();
        let mut cert_tampered = exports[0].clone();
        cert_tampered.cert = CERT_FLOOR;
        if let ImportOutcome::Admitted = c.import_cell(&cert_tampered) {
            // Only possible if the honest cert was already at the floor —
            // in which case nothing was actually tampered.
            assert_eq!(exports[0].cert, CERT_FLOOR);
        }

        // Below-floor certificate: structurally rejected.
        let d = interp_cache();
        let mut floor_tampered = exports[0].clone();
        floor_tampered.cert = CERT_FLOOR / 2.0;
        assert!(matches!(
            d.import_cell(&floor_tampered),
            ImportOutcome::Rejected(_)
        ));

        // Bracket tampering: intervals that are not local grid cells.
        let e = interp_cache();
        let mut bracket_tampered = exports[0].clone();
        for b in bracket_tampered.brackets.iter_mut() {
            if !b.is_degenerate() {
                b.hi *= 1.01;
            }
        }
        assert!(matches!(
            e.import_cell(&bracket_tampered),
            ImportOutcome::Rejected(_)
        ));

        // Key tampering: key and payload must agree.
        let f = interp_cache();
        let mut key_tampered = exports[0].clone();
        key_tampered.wire_key = "0-7".into();
        assert!(matches!(
            f.import_cell(&key_tampered),
            ImportOutcome::Rejected(_)
        ));
    }

    /// An in-process [`CellSource`]: a shared map standing in for the peer
    /// network.
    struct MapSource {
        cells: Mutex<std::collections::HashMap<String, CellExport>>,
        fetches: AtomicU64,
        offers: Mutex<Vec<CellExport>>,
    }

    impl MapSource {
        fn new() -> Arc<MapSource> {
            Arc::new(MapSource {
                cells: Mutex::new(std::collections::HashMap::new()),
                fetches: AtomicU64::new(0),
                offers: Mutex::new(Vec::new()),
            })
        }
    }

    impl CellSource for MapSource {
        fn fetch(&self, wire_key: &str, _key_hash: u64) -> Option<CellExport> {
            self.fetches.fetch_add(1, Ordering::Relaxed);
            self.cells.lock().unwrap().get(wire_key).cloned()
        }

        fn offer(&self, export: &CellExport) {
            self.offers.lock().unwrap().push(export.clone());
        }
    }

    #[test]
    fn cell_source_pull_warms_misses_and_push_offers_prefetches() {
        // Node A sweeps and exports; the "network" is a map.
        let a = interp_cache();
        let source_a = MapSource::new();
        a.set_cell_source(Arc::clone(&source_a) as Arc<dyn CellSource>);
        let exports = warm_and_export(&a);
        assert!(
            !source_a.offers.lock().unwrap().is_empty(),
            "a linear sweep must push its prefetched cells"
        );

        // Node B, wired to a source holding A's cells, serves the same
        // sweep by pulling + verifying instead of building.
        let source_b = MapSource::new();
        source_b
            .cells
            .lock()
            .unwrap()
            .extend(exports.iter().map(|e| (e.wire_key.clone(), e.clone())));
        let b = interp_cache();
        b.set_cell_source(Arc::clone(&source_b) as Arc<dyn CellSource>);
        for i in 0..50 {
            let q = a2a(700.0 + 10.0 * i as f64);
            let exact = lopc_core::scenario::solve(&q).unwrap();
            let (pa, sa) = a.predict_traced(&q, 5e-2).unwrap();
            let (pb, sb) = b.predict_traced(&q, 5e-2).unwrap();
            // Tolerant answers honor the certificate on both nodes. (They
            // need not be byte-equal: A serves on-grid queries from the
            // exact corner solves its builds cached, which B — having
            // *imported* the cells — does not hold.)
            assert!(rel_resid(&pa, &exact) <= 5e-2, "i={i}: {sa:?}");
            assert!(rel_resid(&pb, &exact) <= 5e-2, "i={i}: {sb:?}");
            // When both nodes interpolate, the shipped cell must
            // reproduce the builder's arithmetic bit for bit.
            if let (Served::Interpolated { .. }, Served::Interpolated { .. }) = (&sa, &sb) {
                assert_eq!(pa.r.to_bits(), pb.r.to_bits(), "i={i}");
            }
        }
        assert!(source_b.fetches.load(Ordering::Relaxed) > 0);
        assert!(b.cells_received() > 0, "pulls must admit shipped cells");
        assert_eq!(b.cells_rejected(), 0, "honest ships never reject");
        assert!(
            b.cache().misses() < a.cache().misses(),
            "warming from the peer must cost fewer exact solves \
             (b={} vs a={})",
            b.cache().misses(),
            a.cache().misses()
        );
    }
}
