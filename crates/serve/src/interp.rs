//! Grid interpolation with certified error bounds: answer parameter sweeps
//! from sparse exact solves.
//!
//! The LoPC fixed-point models are smooth in `W`, `St`, `So` and `C²`, and
//! the dominant query shape — the sweeps behind every figure of the paper —
//! asks for thousands of *near-identical* scenarios. The exact-bucket cache
//! only collapses float noise; each genuinely distinct sweep point still
//! pays a full solve. This module adds the missing layer: a **cell index**
//! over the [`AxisKind`](lopc_core::scenario::AxisKind) reference grid,
//! answering in-cell queries by multilinear interpolation between the
//! cell's exactly solved corners — but *only* when the cell carries an
//! error certificate at least as tight as the caller's tolerance.
//!
//! # Cell lifecycle
//!
//! 1. A query with `max_rel_err > 0` snaps each continuous axis onto the
//!    reference grid ([`AxisKind::bracket`](lopc_core::scenario::AxisKind::bracket));
//!    axes sitting exactly on a
//!    grid point are *degenerate* and contribute no corners, so a `W`-sweep
//!    at a round-valued machine builds 1-D cells (two corners), not 4-D
//!    ones (sixteen).
//! 2. On first touch the cell is **built**: every corner, the cell
//!    **centre**, and (for cells spanning ≥ 2 axes) every **face
//!    midpoint** are solved exactly in *one batch* through the shared
//!    [`SolutionCache::solve_batch`] — the SoA fixed-point kernel iterates
//!    all lanes together, and adjacent cells still reuse corners through
//!    the cache. Each probe is compared against its own interpolation; the
//!    worst observed residual, inflated by [`SAFETY_FACTOR`] and floored
//!    at [`CERT_FLOOR`], becomes the cell's certified relative error. The
//!    safety factor is calibrated offline by the `interp_err` bench
//!    (`BENCH_sim.json`, `interp_err` section), which sweeps all four
//!    closed-form variants and verifies the certificate dominates the true
//!    worst-case in-cell residual.
//! 3. Later queries in the cell are answered by interpolation iff
//!    `certificate <= max_rel_err`; otherwise they fall back to the exact
//!    path. `max_rel_err = 0` (the default) never consults the cell index
//!    at all and stays bit-identical to [`lopc_core::scenario::solve`].
//! 4. Two consecutive serving cells that share their discrete identity and
//!    differ by one axis bracket advancing reveal a **sweep direction**:
//!    the next cell along it is pre-built immediately, so the sweep's next
//!    first touch finds a finished cell instead of paying build latency.
//!    Prefetched cells are ordinary cells — same build, same certificate
//!    gate; a wrong guess costs one speculative build, never a wrong
//!    answer.
//!
//! Cells that cannot be trusted — a corner fails to solve, corners
//! disagree on the discrete optimal `ps`, or a component is `NaN` in some
//! corners but not others — get an infinite certificate: permanently
//! exact, never wrong.
//!
//! Corner solutions are **owned by the cell**, not referenced from the
//! LRU cache: a certificate can never outlive the data it certifies, and
//! the exact cache stays a pure repeat-accelerator whose eviction policy
//! needs no pinning entanglement (the cache-internals tests pin this
//! independence: hammering the LRU until the corner entries are evicted
//! must not perturb interpolated answers).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::cache::SolutionCache;
use lopc_core::scenario::{AxisBracket, AxisValue, INTERP_AXES};
use lopc_core::{ModelError, Prediction, Scenario};

/// Multiplier applied to the observed centre residual to obtain the
/// certified bound. Calibrated offline by `cargo bench -p lopc-bench
/// --bench interp_err`, which records the worst observed ratio of true
/// in-cell residual to centre residual across dense sweeps of all four
/// closed-form variants; this constant must dominate that ratio (see
/// `BENCH_sim.json`, `interp_err.worst_true_over_center`).
pub const SAFETY_FACTOR: f64 = 4.0;

/// Lower bound on any finite certificate. The probes can observe residuals
/// of zero (locally linear response) while the true in-cell error is merely
/// *small*; the floor covers those higher-order leftovers plus
/// key-quantization noise. Callers asking for tolerances below the floor
/// always get exact solves.
///
/// The floor sits at `1e-4` because the probe set captures the full
/// quadratic error structure of multilinear interpolation: in 1-D the
/// interpolation error of a smooth response peaks (to leading order) at
/// the cell centre, which the centre probe observes directly; in higher
/// dimensions curvature contributions of opposite sign can *cancel* at the
/// centre (`f = x² − y²` interpolates exactly there while being maximally
/// wrong at the face midpoints), so cell builds probe every face midpoint
/// too and certify against the worst residual over all probes.
pub const CERT_FLOOR: f64 = 1e-4;

/// How a prediction was produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Served {
    /// Exact path: solved (or exact-cache hit), bit-identical to
    /// [`lopc_core::scenario::solve`].
    Exact,
    /// Interpolated inside a certified cell.
    Interpolated {
        /// The cell's certified relative error (`<=` the request tolerance).
        certified_rel_err: f64,
    },
}

/// Identity of one grid cell: variant tag, discrete parameters, and the
/// bit patterns of every axis bracket endpoint.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CellKey(Box<[u64]>);

impl CellKey {
    fn of(scenario: &Scenario, brackets: &[AxisBracket; INTERP_AXES]) -> Option<CellKey> {
        let mut words: Vec<u64> = Vec::with_capacity(3 + 2 * INTERP_AXES);
        match scenario {
            Scenario::AllToAll { machine, .. } => {
                words.push(0);
                words.push(machine.p as u64);
            }
            Scenario::ClientServer { machine, ps, .. } => {
                words.push(1);
                words.push(machine.p as u64);
                words.push(ps.map_or(u64::MAX, |ps| ps as u64));
            }
            Scenario::ForkJoin { machine, k, .. } => {
                words.push(2);
                words.push(machine.p as u64);
                words.push(*k as u64);
            }
            Scenario::SharedMemory { machine, .. } => {
                words.push(4);
                words.push(machine.p as u64);
            }
            Scenario::General(_) => return None,
        }
        for b in brackets {
            words.push(b.lo.to_bits());
            words.push(b.hi.to_bits());
        }
        Some(CellKey(words.into_boxed_slice()))
    }

    /// FNV-1a over the key words (shard selection).
    fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &w in self.0.iter() {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
}

/// One built cell: brackets, exactly solved corners, certificate.
#[derive(Debug)]
struct Cell {
    brackets: [AxisBracket; INTERP_AXES],
    /// Indices of the non-degenerate axes, in axis order.
    span_axes: Vec<usize>,
    /// `2^span_axes.len()` corner solutions in bitmask order (bit `j` set =
    /// the `hi` endpoint of `span_axes[j]`). Empty when the cell is
    /// untrusted (`cert` infinite).
    corners: Vec<Prediction>,
    /// Certified relative error; `INFINITY` = never interpolate here.
    cert: f64,
}

impl Cell {
    fn untrusted(brackets: [AxisBracket; INTERP_AXES]) -> Cell {
        Cell {
            brackets,
            span_axes: Vec::new(),
            corners: Vec::new(),
            cert: f64::INFINITY,
        }
    }

    /// Multilinear interpolation of the corner solutions at `axes`.
    fn interpolate(&self, axes: &[AxisValue; INTERP_AXES]) -> Prediction {
        let ts: Vec<f64> = self
            .span_axes
            .iter()
            .map(|&a| self.brackets[a].weight(axes[a].value))
            .collect();
        let mut acc = [0.0f64; 6];
        let mut nan = [false; 6];
        for (mask, corner) in self.corners.iter().enumerate() {
            let mut w = 1.0;
            for (j, t) in ts.iter().enumerate() {
                w *= if mask & (1 << j) != 0 { *t } else { 1.0 - *t };
            }
            for (k, field) in corner_fields(corner).into_iter().enumerate() {
                if field.is_nan() {
                    nan[k] = true;
                } else {
                    acc[k] += w * field;
                }
            }
        }
        Prediction {
            r: if nan[0] { f64::NAN } else { acc[0] },
            x: if nan[1] { f64::NAN } else { acc[1] },
            rw: if nan[2] { f64::NAN } else { acc[2] },
            rq: if nan[3] { f64::NAN } else { acc[3] },
            ry: if nan[4] { f64::NAN } else { acc[4] },
            contention: if nan[5] { f64::NAN } else { acc[5] },
            ps: self.corners[0].ps,
            // No solver ran for this answer; 0 mirrors the closed-form
            // client-server path, which also reports 0.
            iterations: 0,
        }
    }
}

/// The six continuous prediction components, in a fixed order.
fn corner_fields(p: &Prediction) -> [f64; 6] {
    [p.r, p.x, p.rw, p.rq, p.ry, p.contention]
}

/// The certified-error metric: worst relative deviation of `approx` from
/// `exact` over the continuous components. Cycle-valued components
/// (`r`, `rw`, `rq`, `ry`, `contention`) are measured relative to
/// `max(|component|, |R|)` — they share `R`'s scale, and `contention`
/// legitimately passes near zero where a naive relative error would
/// explode; throughput `x` (a different unit, never near zero) is measured
/// relative to itself. `NaN`-pattern mismatches are infinitely wrong;
/// matching `NaN`s contribute nothing. Discrete fields (`ps`,
/// `iterations`) are excluded — `ps` agreement is enforced structurally at
/// cell build.
pub fn rel_resid(approx: &Prediction, exact: &Prediction) -> f64 {
    let scale_r = exact.r.abs();
    let pairs = [
        (approx.r, exact.r, scale_r),
        (approx.x, exact.x, exact.x.abs()),
        (approx.rw, exact.rw, exact.rw.abs().max(scale_r)),
        (approx.rq, exact.rq, exact.rq.abs().max(scale_r)),
        (approx.ry, exact.ry, exact.ry.abs().max(scale_r)),
        (
            approx.contention,
            exact.contention,
            exact.contention.abs().max(scale_r),
        ),
    ];
    let mut worst = 0.0f64;
    for (a, e, scale) in pairs {
        if a.is_nan() || e.is_nan() {
            if a.is_nan() != e.is_nan() {
                return f64::INFINITY;
            }
            continue;
        }
        let d = (a - e).abs();
        if d == 0.0 {
            continue;
        }
        if scale == 0.0 {
            return f64::INFINITY;
        }
        worst = worst.max(d / scale);
    }
    worst
}

/// One shard of the cell index: FIFO-bounded map of built (or building)
/// cells. `Arc<OnceLock<Cell>>` gives build-once semantics under
/// concurrency — the first toucher builds (outside the shard lock), racing
/// threads block on the same slot instead of duplicating the corner
/// solves, which matters when a parallel batch walks a sweep front across
/// an empty grid.
struct CellShard {
    map: HashMap<CellKey, Arc<OnceLock<Cell>>>,
    /// Insertion order; in sync with `map` (cells are only removed by
    /// FIFO eviction). Eviction is FIFO rather than LRU on purpose: an
    /// evicted cell whose corners are still in the exact cache rebuilds
    /// for free, so recency tracking buys nothing here.
    order: VecDeque<CellKey>,
    capacity: usize,
}

impl CellShard {
    fn slot(&mut self, key: &CellKey) -> Arc<OnceLock<Cell>> {
        if let Some(slot) = self.map.get(key) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(OnceLock::new());
        self.map.insert(key.clone(), Arc::clone(&slot));
        self.order.push_back(key.clone());
        while self.order.len() > self.capacity {
            let evict = self.order.pop_front().expect("order non-empty");
            self.map.remove(&evict);
        }
        slot
    }
}

/// Sweep-cursor state for predictive prefetch: the last cell that served
/// an interpolated answer. Two *consecutive* serving cells that share
/// their discrete identity and differ by exactly one axis bracket
/// advancing reveal a sweep direction; the cell one step further ahead is
/// then built before the cursor reaches it.
struct SweepCursor {
    key: CellKey,
    brackets: [AxisBracket; INTERP_AXES],
}

/// The interpolating cache: the sharded exact [`SolutionCache`] plus the
/// certified cell index layered over it. One instance per server; share by
/// reference.
pub struct InterpCache {
    cache: SolutionCache,
    shards: Vec<Mutex<CellShard>>,
    cursor: Mutex<Option<SweepCursor>>,
    interp_hits: AtomicU64,
    interp_fallbacks: AtomicU64,
    cells_built: AtomicU64,
    cells_prefetched: AtomicU64,
}

impl InterpCache {
    /// Wrap `cache` with a cell index of `cell_shards` independently locked
    /// shards holding up to `cells_per_shard` cells each (both clamped to
    /// at least 1).
    pub fn new(cache: SolutionCache, cell_shards: usize, cells_per_shard: usize) -> Self {
        InterpCache {
            cache,
            shards: (0..cell_shards.max(1))
                .map(|_| {
                    Mutex::new(CellShard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                        capacity: cells_per_shard.max(1),
                    })
                })
                .collect(),
            cursor: Mutex::new(None),
            interp_hits: AtomicU64::new(0),
            interp_fallbacks: AtomicU64::new(0),
            cells_built: AtomicU64::new(0),
            cells_prefetched: AtomicU64::new(0),
        }
    }

    /// The underlying exact cache (counters, direct exact access).
    pub fn cache(&self) -> &SolutionCache {
        &self.cache
    }

    /// Answers served by interpolation so far.
    pub fn interp_hits(&self) -> u64 {
        self.interp_hits.load(Ordering::Relaxed)
    }

    /// Requests that asked for interpolation (`max_rel_err > 0`) but were
    /// served exactly: ineligible variant, unbracketable coordinate, or a
    /// certificate wider than the tolerance.
    pub fn interp_fallbacks(&self) -> u64 {
        self.interp_fallbacks.load(Ordering::Relaxed)
    }

    /// Cells built (corner + probe solve batches performed).
    pub fn cells_built(&self) -> u64 {
        self.cells_built.load(Ordering::Relaxed)
    }

    /// Cells built speculatively by the sweep-direction prefetcher (a
    /// subset of [`InterpCache::cells_built`]).
    pub fn cells_prefetched(&self) -> u64 {
        self.cells_prefetched.load(Ordering::Relaxed)
    }

    /// Cells currently resident across all shards.
    pub fn cells(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cell shard poisoned").map.len())
            .sum()
    }

    /// Answer one scenario within `max_rel_err` relative tolerance.
    ///
    /// `max_rel_err <= 0` (and any non-finite value) is **exact mode**:
    /// the request never touches the cell index and the answer is
    /// bit-identical to [`lopc_core::scenario::solve`]. A positive
    /// tolerance permits interpolation when a certified cell covers the
    /// query; the certificate, not the caller, decides — an uncertifiable
    /// query silently gets the exact answer (tolerances are upper bounds,
    /// and exact always satisfies them).
    pub fn predict(&self, scenario: &Scenario, max_rel_err: f64) -> Result<Prediction, ModelError> {
        self.predict_traced(scenario, max_rel_err).map(|(p, _)| p)
    }

    /// [`InterpCache::predict`], also reporting which path answered.
    pub fn predict_traced(
        &self,
        scenario: &Scenario,
        max_rel_err: f64,
    ) -> Result<(Prediction, Served), ModelError> {
        // NaN and infinities count as "no usable tolerance": exact mode.
        if !max_rel_err.is_finite() || max_rel_err <= 0.0 {
            return self
                .cache
                .get_or_solve(scenario)
                .map(|p| (p, Served::Exact));
        }
        // The exact answer may already be resident — never interpolate past
        // a bit-identical hit.
        if let Some(p) = self.cache.lookup(scenario) {
            return Ok((p, Served::Exact));
        }
        match self.try_interpolate(scenario, max_rel_err) {
            Some(served) => {
                self.interp_hits.fetch_add(1, Ordering::Relaxed);
                Ok(served)
            }
            None => {
                self.interp_fallbacks.fetch_add(1, Ordering::Relaxed);
                self.cache
                    .get_or_solve(scenario)
                    .map(|p| (p, Served::Exact))
            }
        }
    }

    /// Batched [`InterpCache::predict`]: every lane is answered by the same
    /// policy (exact mode, resident-exact shortcut, certified
    /// interpolation, exact fallback), but all lanes that end up needing an
    /// exact solve go through one key-deduped
    /// [`SolutionCache::solve_batch`] call — the SoA kernel — instead of
    /// lane-at-a-time solves.
    pub fn predict_batch(
        &self,
        scenarios: &[Scenario],
        max_rel_err: f64,
    ) -> Vec<Result<Prediction, ModelError>> {
        // Exact mode for the whole batch (the contract is per-request).
        if !max_rel_err.is_finite() || max_rel_err <= 0.0 {
            return self.cache.solve_batch(scenarios);
        }
        let n = scenarios.len();
        let mut out: Vec<Option<Result<Prediction, ModelError>>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let mut misses: Vec<usize> = Vec::new();
        for (i, s) in scenarios.iter().enumerate() {
            if let Some(p) = self.cache.lookup(s) {
                out[i] = Some(Ok(p));
                continue;
            }
            match self.try_interpolate(s, max_rel_err) {
                Some((p, _)) => {
                    self.interp_hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(Ok(p));
                }
                None => {
                    self.interp_fallbacks.fetch_add(1, Ordering::Relaxed);
                    misses.push(i);
                }
            }
        }
        if !misses.is_empty() {
            let lanes: Vec<Scenario> = misses.iter().map(|&i| scenarios[i].clone()).collect();
            for (&i, r) in misses.iter().zip(self.cache.solve_batch(&lanes)) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every lane resolved"))
            .collect()
    }

    /// The interpolation path; `None` means "serve exactly instead".
    fn try_interpolate(
        &self,
        scenario: &Scenario,
        max_rel_err: f64,
    ) -> Option<(Prediction, Served)> {
        // No certificate can beat the floor; don't pay for a cell build
        // that could never serve this tolerance.
        if max_rel_err < CERT_FLOOR {
            return None;
        }
        let axes = scenario.interp_axes()?;
        let mut brackets = [AxisBracket { lo: 0.0, hi: 0.0 }; INTERP_AXES];
        for (i, axis) in axes.iter().enumerate() {
            // Out-of-range coordinates (possible for unvalidated direct
            // library callers) never reach the grid: cells must not
            // straddle a validity boundary.
            let (min, max) = axis.kind.valid_range();
            if !(min..=max).contains(&axis.value) {
                return None;
            }
            brackets[i] = axis.kind.bracket(axis.value)?;
        }
        let key = CellKey::of(scenario, &brackets)?;
        let slot = {
            let shard = &self.shards[(key.hash64() % self.shards.len() as u64) as usize];
            shard.lock().expect("cell shard poisoned").slot(&key)
        };
        // Build outside every lock; concurrent touchers of the same cell
        // block here instead of re-solving the corners.
        let cell = slot.get_or_init(|| {
            self.cells_built.fetch_add(1, Ordering::Relaxed);
            self.build_cell(scenario, brackets)
        });
        if cell.cert <= max_rel_err {
            self.advance_cursor(scenario, &axes, &key, &brackets);
            Some((
                cell.interpolate(&axes),
                Served::Interpolated {
                    certified_rel_err: cell.cert,
                },
            ))
        } else {
            None
        }
    }

    /// Record the serving cell in the sweep cursor; when the previous and
    /// current serving cells are adjacent (same discrete identity, exactly
    /// one axis bracket advanced), pre-build the next cell along the same
    /// direction so the sweep's next first-touch finds it already built.
    ///
    /// Prefetched cells go through [`InterpCache::build_cell`] like any
    /// other — they carry a real certificate (or stay untrusted) and are
    /// gated by the same `cert <= max_rel_err` check when a query actually
    /// lands in them. A wrong sweep guess costs one speculative build,
    /// never a wrong answer.
    fn advance_cursor(
        &self,
        scenario: &Scenario,
        axes: &[AxisValue; INTERP_AXES],
        key: &CellKey,
        brackets: &[AxisBracket; INTERP_AXES],
    ) {
        let prev = {
            let mut cursor = self.cursor.lock().expect("sweep cursor poisoned");
            cursor.replace(SweepCursor {
                key: key.clone(),
                brackets: *brackets,
            })
        };
        let Some(prev) = prev else { return };
        if prev.key == *key {
            return;
        }
        // Same discrete identity (variant, P, ps, k): the bracket words are
        // the trailing `2 * INTERP_AXES` of the key, everything before them
        // is discrete.
        let discrete = key.0.len() - 2 * INTERP_AXES;
        if prev.key.0.len() != key.0.len() || prev.key.0[..discrete] != key.0[..discrete] {
            return;
        }
        // Exactly one axis advanced by one cell, all others identical.
        let mut advanced: Option<(usize, bool)> = None;
        for (i, &c) in brackets.iter().enumerate() {
            let p = prev.brackets[i];
            if p == c {
                continue;
            }
            if advanced.is_some() || p.is_degenerate() || c.is_degenerate() {
                return;
            }
            if c.lo == p.hi {
                advanced = Some((i, true));
            } else if c.hi == p.lo {
                advanced = Some((i, false));
            } else {
                return;
            }
        }
        let Some((ax, ascending)) = advanced else {
            return;
        };
        // Predict the next cell: probe just past the boundary ahead of the
        // cursor and snap back onto the grid.
        let probe = if ascending {
            brackets[ax].hi * (1.0 + 1e-6)
        } else if brackets[ax].lo > 0.0 {
            brackets[ax].lo * (1.0 - 1e-6)
        } else {
            return; // the grid ends at 0: nothing ahead
        };
        let mut coords: [f64; INTERP_AXES] = std::array::from_fn(|i| axes[i].value);
        coords[ax] = probe;
        let Some(next_scenario) = scenario.with_axis_values(coords) else {
            return;
        };
        let mut next_brackets = [AxisBracket { lo: 0.0, hi: 0.0 }; INTERP_AXES];
        for (i, axis) in next_scenario
            .interp_axes()
            .expect("same variant as the serving scenario")
            .iter()
            .enumerate()
        {
            let (min, max) = axis.kind.valid_range();
            if !(min..=max).contains(&axis.value) {
                return;
            }
            let Some(b) = axis.kind.bracket(axis.value) else {
                return;
            };
            next_brackets[i] = b;
        }
        let Some(next_key) = CellKey::of(&next_scenario, &next_brackets) else {
            return;
        };
        if next_key == *key {
            return; // probe collapsed back into the serving cell
        }
        let slot = {
            let shard = &self.shards[(next_key.hash64() % self.shards.len() as u64) as usize];
            shard.lock().expect("cell shard poisoned").slot(&next_key)
        };
        if slot.get().is_some() {
            return; // already built (e.g. the sweep ran here before)
        }
        slot.get_or_init(|| {
            self.cells_built.fetch_add(1, Ordering::Relaxed);
            self.cells_prefetched.fetch_add(1, Ordering::Relaxed);
            self.build_cell(&next_scenario, next_brackets)
        });
    }

    /// Solve the cell's corners and probes and derive the certificate —
    /// all exact solves issued as **one batch** through
    /// [`SolutionCache::solve_batch`], so the whole build runs through the
    /// SoA fixed-point kernel instead of `2^d + 1 + 2d` sequential solves.
    ///
    /// The probe set is the centre plus, for cells spanning two or more
    /// axes, every face midpoint: in 1-D the leading-order interpolation
    /// error peaks at the centre, but in higher dimensions curvature terms
    /// of opposite sign can cancel there while peaking on a face. The
    /// certificate covers the worst residual over all probes.
    fn build_cell(&self, template: &Scenario, brackets: [AxisBracket; INTERP_AXES]) -> Cell {
        let span_axes: Vec<usize> = (0..INTERP_AXES)
            .filter(|&i| !brackets[i].is_degenerate())
            .collect();
        let d = span_axes.len();

        let centre_coords: [f64; INTERP_AXES] =
            std::array::from_fn(|i| 0.5 * (brackets[i].lo + brackets[i].hi));
        let mut probe_coords: Vec<[f64; INTERP_AXES]> = vec![centre_coords];
        if d >= 2 {
            for &ax in &span_axes {
                for end in [brackets[ax].lo, brackets[ax].hi] {
                    let mut c = centre_coords;
                    c[ax] = end;
                    probe_coords.push(c);
                }
            }
        }

        // Corner lanes first (bitmask order), probe lanes riding along.
        let mut lanes: Vec<Scenario> = Vec::with_capacity((1 << d) + probe_coords.len());
        for mask in 0..(1u32 << d) {
            let mut coords: [f64; INTERP_AXES] = std::array::from_fn(|i| brackets[i].lo);
            for (j, &ax) in span_axes.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    coords[ax] = brackets[ax].hi;
                }
            }
            let Some(corner) = template.with_axis_values(coords) else {
                return Cell::untrusted(brackets);
            };
            lanes.push(corner);
        }
        for &coords in &probe_coords {
            let Some(probe) = template.with_axis_values(coords) else {
                return Cell::untrusted(brackets);
            };
            lanes.push(probe);
        }

        let mut results = self.cache.solve_batch(&lanes).into_iter();
        let mut corners: Vec<Prediction> = Vec::with_capacity(1 << d);
        for _ in 0..(1u32 << d) {
            match results.next().expect("one result per lane") {
                Ok(p) => corners.push(p),
                // A corner outside the solvable region poisons the whole
                // cell: certificates only cover cells that are smooth
                // throughout.
                Err(_) => return Cell::untrusted(brackets),
            }
        }

        // Structural consistency: one discrete optimum and one NaN pattern
        // across the whole cell, or no interpolation at all.
        let first = corners[0];
        for c in &corners[1..] {
            if c.ps != first.ps || !nan_compatible(c, &first) {
                return Cell::untrusted(brackets);
            }
        }

        let cell = Cell {
            brackets,
            span_axes,
            corners,
            cert: f64::INFINITY,
        };
        let kinds = template.interp_axes().expect("eligible template");
        let mut worst = 0.0f64;
        for coords in probe_coords {
            let Some(Ok(exact)) = results.next() else {
                // An unsolvable probe means the cell is not smooth
                // throughout: no certificate.
                return Cell::untrusted(brackets);
            };
            if exact.ps != cell.corners[0].ps {
                return Cell::untrusted(brackets);
            }
            let probe_axes: [AxisValue; INTERP_AXES] = std::array::from_fn(|i| AxisValue {
                kind: kinds[i].kind,
                value: coords[i],
            });
            worst = worst.max(rel_resid(&cell.interpolate(&probe_axes), &exact));
        }
        Cell {
            cert: (worst * SAFETY_FACTOR).max(CERT_FLOOR),
            ..cell
        }
    }
}

/// Same components defined (`NaN`) in both predictions.
fn nan_compatible(a: &Prediction, b: &Prediction) -> bool {
    corner_fields(a)
        .into_iter()
        .zip(corner_fields(b))
        .all(|(x, y)| x.is_nan() == y.is_nan())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_core::Machine;

    fn machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    fn a2a(w: f64) -> Scenario {
        Scenario::AllToAll {
            machine: machine(),
            w,
        }
    }

    fn interp_cache() -> InterpCache {
        InterpCache::new(SolutionCache::new(4, 256), 4, 64)
    }

    #[test]
    fn zero_tolerance_is_bit_identical_exact_mode() {
        let c = interp_cache();
        let (p, served) = c.predict_traced(&a2a(777.7), 0.0).unwrap();
        assert_eq!(served, Served::Exact);
        let direct = lopc_core::scenario::solve(&a2a(777.7)).unwrap();
        assert_eq!(p.r.to_bits(), direct.r.to_bits());
        assert_eq!(c.cells(), 0, "exact mode never touches the cell index");
        assert_eq!(c.interp_hits() + c.interp_fallbacks(), 0);
    }

    #[test]
    fn interpolated_answer_is_within_the_certificate() {
        let c = interp_cache();
        // Off-grid query; generous tolerance.
        let q = a2a(777.7);
        let (p, served) = c.predict_traced(&q, 1e-2).unwrap();
        let cert = match served {
            Served::Interpolated { certified_rel_err } => certified_rel_err,
            Served::Exact => panic!("generous tolerance must interpolate"),
        };
        assert!(cert <= 1e-2);
        assert!(cert >= CERT_FLOOR);
        let exact = lopc_core::scenario::solve(&q).unwrap();
        let resid = rel_resid(&p, &exact);
        assert!(
            resid <= cert,
            "true residual {resid} exceeds certificate {cert}"
        );
        assert_eq!(c.interp_hits(), 1);
        assert_eq!(c.cells_built(), 1);
    }

    #[test]
    fn tolerance_below_floor_falls_back_to_exact() {
        let c = interp_cache();
        let q = a2a(777.7);
        let (p, served) = c.predict_traced(&q, CERT_FLOOR / 10.0).unwrap();
        assert_eq!(served, Served::Exact);
        assert_eq!(c.interp_fallbacks(), 1);
        let direct = lopc_core::scenario::solve(&q).unwrap();
        assert_eq!(p.r.to_bits(), direct.r.to_bits());
    }

    #[test]
    fn general_variant_always_exact() {
        let c = interp_cache();
        let q = Scenario::General(lopc_core::GeneralModel::homogeneous_all_to_all(
            machine(),
            300.0,
        ));
        let (_, served) = c.predict_traced(&q, 1e-2).unwrap();
        assert_eq!(served, Served::Exact);
        assert_eq!(c.interp_fallbacks(), 1);
        assert_eq!(c.cells(), 0);
    }

    #[test]
    fn sweep_shares_cells_and_corners() {
        let c = interp_cache();
        // 100 points inside one W bracket: first query builds the cell
        // (2 corners + 1 centre = 3 solves on a degenerate machine), the
        // other 99 are free.
        let b = lopc_core::scenario::AxisKind::Work.bracket(777.7).unwrap();
        assert!(!b.is_degenerate());
        for i in 0..100 {
            let w = b.lo + (b.hi - b.lo) * (0.05 + 0.9 * i as f64 / 99.0);
            let (p, _) = c.predict_traced(&a2a(w), 1e-2).unwrap();
            let exact = lopc_core::scenario::solve(&a2a(w)).unwrap();
            assert!(rel_resid(&p, &exact) <= 1e-2, "w={w}");
        }
        assert_eq!(c.cells_built(), 1);
        assert!(
            c.cache().misses() <= 3,
            "one 1-D cell costs at most 3 exact solves, did {}",
            c.cache().misses()
        );
        assert!(c.interp_hits() >= 98);
    }

    #[test]
    fn on_grid_query_interpolates_to_the_corner_solution() {
        let c = interp_cache();
        // All four axes on-grid: the cell is a point, interpolation is the
        // exact corner answer.
        let q = a2a(1000.0);
        let (p, served) = c.predict_traced(&q, 1e-2).unwrap();
        let exact = lopc_core::scenario::solve(&q).unwrap();
        match served {
            // First touch may interpolate (0-D cell) …
            Served::Interpolated { .. } => assert_eq!(p.r.to_bits(), exact.r.to_bits()),
            // … or hit the exact entry a previous build populated.
            Served::Exact => assert_eq!(p.r.to_bits(), exact.r.to_bits()),
        }
    }

    #[test]
    fn exact_entries_shortcut_interpolation() {
        let c = interp_cache();
        let q = a2a(777.7);
        // Exact solve first: the key is resident.
        let exact = c.predict(&q, 0.0).unwrap();
        let (p, served) = c.predict_traced(&q, 1e-2).unwrap();
        assert_eq!(served, Served::Exact, "resident exact answers win");
        assert_eq!(p.r.to_bits(), exact.r.to_bits());
        assert_eq!(c.cells(), 0);
    }

    #[test]
    fn concurrent_cell_builds_do_not_duplicate_corner_solves() {
        let c = InterpCache::new(SolutionCache::new(8, 256), 8, 64);
        let b = lopc_core::scenario::AxisKind::Work.bracket(777.7).unwrap();
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..50 {
                        let f = 0.05 + 0.9 * ((i * 8 + t) as f64 / 400.0);
                        let w = b.lo + (b.hi - b.lo) * f;
                        let (p, _) = c.predict_traced(&a2a(w), 1e-2).unwrap();
                        let exact = lopc_core::scenario::solve(&a2a(w)).unwrap();
                        assert!(rel_resid(&p, &exact) <= 1e-2);
                    }
                });
            }
        });
        assert_eq!(c.cells_built(), 1, "OnceLock must build the cell once");
        // Corner/centre solves may race with the cache's lost-race window,
        // but the OnceLock bounds it to one builder: 3 distinct keys.
        assert!(c.cache().misses() <= 3);
    }

    #[test]
    fn cell_eviction_keeps_answers_correct() {
        // A cell index of capacity 1: every new cell evicts the previous
        // one; answers stay within tolerance throughout.
        let c = InterpCache::new(SolutionCache::new(2, 512), 1, 1);
        for w in [111.3, 333.3, 777.7, 111.3] {
            let (p, _) = c.predict_traced(&a2a(w), 1e-2).unwrap();
            let exact = lopc_core::scenario::solve(&a2a(w)).unwrap();
            assert!(rel_resid(&p, &exact) <= 1e-2, "w={w}");
        }
        assert_eq!(c.cells(), 1);
        // The revisited cell was rebuilt — but its corners were still in
        // the exact cache, so the rebuild cost no new solves.
        assert_eq!(c.cells_built(), 4);
    }

    #[test]
    fn rel_resid_metric() {
        let e = Prediction {
            r: 1000.0,
            x: 0.02,
            rw: 800.0,
            rq: 150.0,
            ry: 50.0,
            contention: 0.5,
            ps: None,
            iterations: 10,
        };
        assert_eq!(rel_resid(&e, &e), 0.0);
        // r off by 1 cycle: 1e-3 relative.
        let mut a = e;
        a.r = 1001.0;
        assert!((rel_resid(&a, &e) - 1e-3).abs() < 1e-12);
        // Near-zero contention is measured against R's scale, not itself.
        let mut a = e;
        a.contention = 0.6;
        assert!((rel_resid(&a, &e) - 1e-4).abs() < 1e-12);
        // Throughput is measured against itself.
        let mut a = e;
        a.x = 0.0202;
        assert!((rel_resid(&a, &e) - 0.01).abs() < 1e-9);
        // NaN-pattern mismatch is infinitely wrong; matching NaNs are fine.
        let mut a = e;
        a.rw = f64::NAN;
        assert_eq!(rel_resid(&a, &e), f64::INFINITY);
        let mut both = e;
        both.rw = f64::NAN;
        assert_eq!(rel_resid(&both, &both), 0.0);
    }

    #[test]
    fn predict_batch_exact_mode_is_bit_identical() {
        let c = interp_cache();
        let mut lanes: Vec<Scenario> = (0..20).map(|i| a2a(500.0 + 13.7 * i as f64)).collect();
        let bad = Scenario::AllToAll {
            machine: Machine::new(1, 25.0, 200.0),
            w: 10.0,
        };
        lanes.push(bad);
        let out = c.predict_batch(&lanes, 0.0);
        for (lane, r) in lanes.iter().zip(&out) {
            match (r, lopc_core::scenario::solve(lane)) {
                (Ok(p), Ok(e)) => assert_eq!(p.r.to_bits(), e.r.to_bits()),
                (Err(a), Err(b)) => assert_eq!(a, &b),
                (r, e) => panic!("batched {r:?} vs library {e:?}"),
            }
        }
        assert_eq!(c.cells(), 0, "exact mode never touches the cell index");
    }

    #[test]
    fn predict_batch_sweep_shares_cells_and_solves_misses_in_one_batch() {
        let c = interp_cache();
        let b = lopc_core::scenario::AxisKind::Work.bracket(777.7).unwrap();
        let lanes: Vec<Scenario> = (0..50)
            .map(|i| a2a(b.lo + (b.hi - b.lo) * (0.05 + 0.9 * i as f64 / 49.0)))
            .collect();
        let out = c.predict_batch(&lanes, 1e-2);
        for (lane, r) in lanes.iter().zip(&out) {
            let exact = lopc_core::scenario::solve(lane).unwrap();
            assert!(rel_resid(r.as_ref().unwrap(), &exact) <= 1e-2);
        }
        assert_eq!(c.cells_built(), 1);
        assert!(c.cache().misses() <= 3, "one 1-D cell, one batched build");
        assert!(c.interp_hits() >= 48);
        // An unsolvable lane in tolerance mode: its cell is untrusted, the
        // lane falls back to the exact batch and carries its own error.
        let bad = Scenario::AllToAll {
            machine: Machine::new(1, 25.0, 200.0),
            w: 10.0,
        };
        let out = c.predict_batch(&[lanes[0].clone(), bad], 1e-2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn two_axis_cells_probe_face_midpoints() {
        let c = interp_cache();
        // St off-grid too: the cell spans W and St (d = 2), so the build
        // batch is 4 corners + centre + 4 face midpoints.
        let q = Scenario::AllToAll {
            machine: Machine::new(32, 26.3, 200.0).with_c2(0.0),
            w: 777.7,
        };
        let (p, served) = c.predict_traced(&q, 1e-2).unwrap();
        let cert = match served {
            Served::Interpolated { certified_rel_err } => certified_rel_err,
            Served::Exact => panic!("smooth 2-D cell must certify"),
        };
        assert_eq!(c.cells_built(), 1);
        assert!(
            c.cache().misses() <= 9,
            "2-D cell build is 9 unique lanes, did {}",
            c.cache().misses()
        );
        let exact = lopc_core::scenario::solve(&q).unwrap();
        assert!(rel_resid(&p, &exact) <= cert);
    }

    #[test]
    fn sweep_direction_prefetch_builds_the_next_cell() {
        let c = interp_cache();
        // Two consecutive 1-D cells along W establish an ascending sweep;
        // the third cell must be prefetched before any query lands in it.
        let (_, s1) = c.predict_traced(&a2a(765.0), 1e-2).unwrap();
        let (_, s2) = c.predict_traced(&a2a(785.0), 1e-2).unwrap();
        assert!(matches!(s1, Served::Interpolated { .. }));
        assert!(matches!(s2, Served::Interpolated { .. }));
        assert_eq!(c.cells_prefetched(), 1, "ascent detected, next cell built");
        assert_eq!(c.cells_built(), 3);
        let misses_before = c.cache().misses();
        let (p, s3) = c.predict_traced(&a2a(805.0), 1e-2).unwrap();
        assert!(matches!(s3, Served::Interpolated { .. }));
        // Serving from the prefetched cell costs no solves of its own; the
        // only new misses belong to the *next* prefetch (the sweep stays
        // one cell ahead: corner 840 + centre 830, corner 820 is shared).
        assert_eq!(c.cells_prefetched(), 2, "steady sweep chains prefetches");
        assert_eq!(c.cells_built(), 4);
        assert_eq!(
            c.cache().misses(),
            misses_before + 2,
            "the prefetched cell serves the query without new exact solves"
        );
        let exact = lopc_core::scenario::solve(&a2a(805.0)).unwrap();
        assert!(rel_resid(&p, &exact) <= 1e-2);
        // Descending works symmetrically.
        let c = interp_cache();
        c.predict_traced(&a2a(805.0), 1e-2).unwrap();
        c.predict_traced(&a2a(785.0), 1e-2).unwrap();
        assert_eq!(c.cells_prefetched(), 1, "descent detected");
    }

    #[test]
    fn prefetched_cells_serve_only_with_a_valid_certificate() {
        // A client-server sweep with ps = None crosses regions where the
        // discrete optimum moves: some cells (prefetched ones included)
        // come out untrusted. Every answer must be within its certificate
        // when interpolated and bit-identical exact otherwise — a
        // prefetched cell gets no special trust.
        let c = interp_cache();
        let m = Machine::new(32, 50.0, 131.0).with_c2(1.0);
        let q = |w: f64| Scenario::ClientServer {
            machine: m,
            w,
            ps: None,
        };
        for i in 0..80 {
            let w = 400.0 + 12.5 * i as f64;
            let (p, served) = c.predict_traced(&q(w), 1e-2).unwrap();
            let exact = lopc_core::scenario::solve(&q(w)).unwrap();
            match served {
                Served::Interpolated { certified_rel_err } => {
                    assert!(certified_rel_err <= 1e-2);
                    assert!(
                        rel_resid(&p, &exact) <= certified_rel_err,
                        "w={w}: interpolated answer outside its certificate"
                    );
                }
                Served::Exact => {
                    assert_eq!(
                        p.r.to_bits(),
                        exact.r.to_bits(),
                        "w={w}: untrusted (or uncovered) queries stay exact"
                    );
                }
            }
        }
        assert!(
            c.cells_prefetched() >= 1,
            "a linear sweep must trigger the prefetcher"
        );
    }

    #[test]
    fn client_server_optimal_ps_cells_agree_or_fall_back() {
        let c = interp_cache();
        // Sweep W through a region where the optimal server count moves;
        // every answer must stay within tolerance, whether interpolated
        // (corners agreed) or exact (corners disagreed -> untrusted cell).
        let m = Machine::new(32, 50.0, 131.0).with_c2(1.0);
        for i in 0..60 {
            let w = 300.0 * 1.07f64.powi(i);
            let q = Scenario::ClientServer {
                machine: m,
                w,
                ps: None,
            };
            let (p, _) = c.predict_traced(&q, 1e-2).unwrap();
            let exact = lopc_core::scenario::solve(&q).unwrap();
            assert!(rel_resid(&p, &exact) <= 1e-2, "w={w}: {p:?} vs {exact:?}");
        }
    }
}
