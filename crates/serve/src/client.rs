//! A minimal blocking HTTP client for the service — the in-repo test
//! client the smoke suite, the integration tests, the CI smoke job, and
//! the cluster tier's node-to-node calls use (the build container has no
//! curl crate, and shelling out would not be portable).
//!
//! One [`Client`] owns one keep-alive connection; requests on it are
//! sequential. For concurrency, open one client per thread.
//!
//! # Hardening
//!
//! The client is the building block of the cluster router, so it must not
//! wedge on a sick peer:
//!
//! * **Connect timeout** — dialing uses [`TcpStream::connect_timeout`]
//!   ([`ClientConfig::connect_timeout`]); an unresponsive address fails in
//!   bounded time instead of blocking for the kernel's SYN-retry eternity.
//! * **Read timeout** — every read carries
//!   [`ClientConfig::read_timeout`]; a peer that accepts and goes silent
//!   costs one timeout, not a hung thread.
//! * **Bounded retry with jittered backoff** — transient transport errors
//!   ([`ClientError::is_retryable`]) reconnect and retry up to
//!   [`RetryPolicy::attempts`] times total, sleeping an exponentially
//!   growing, jittered backoff between attempts so a recovering server is
//!   not met by synchronized client stampedes.
//! * **Never retry after a partial response** — once any response byte
//!   has been consumed, a failure leaves the request's effect unknowable
//!   *and* the response unreconstructable, so the error surfaces
//!   immediately. The one always-safe retry is the stale keep-alive race:
//!   EOF *before the first response byte* means the server closed the idle
//!   connection under us and the request can be replayed on a fresh one.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::codec::{prediction_from_json, scenario_to_json, MAX_REL_ERR_FIELD};
use crate::http::{read_response, HttpError};
use crate::json::{parse, Json};
use lopc_core::{Prediction, Scenario};

/// Append `max_rel_err` to a request object when it is non-zero (zero is
/// the wire default, and omitting it keeps exact-mode requests identical to
/// pre-interpolation clients).
fn with_tolerance(mut kv: Json, max_rel_err: f64) -> Json {
    if max_rel_err != 0.0 {
        if let Json::Object(fields) = &mut kv {
            fields.push((MAX_REL_ERR_FIELD.into(), Json::Num(max_rel_err)));
        }
    }
    kv
}

/// Client-side failure: transport, protocol, or an error status.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The response could not be parsed.
    Protocol(String),
    /// The server answered with a non-2xx status.
    Status(u16, String),
}

impl ClientError {
    /// Is this the kind of failure a fresh connection could cure?
    ///
    /// Transport-level errors — refused/reset/aborted connections, broken
    /// pipes, timeouts, unexpected EOF — are transient by nature: the
    /// server may be restarting, the keep-alive connection may have been
    /// reaped, the network may have blipped. Protocol errors and error
    /// statuses are *answers*: the server received the request and
    /// responded, so replaying it would repeat the same outcome (or worse,
    /// double-apply it).
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::NotConnected
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::Interrupted
                    | io::ErrorKind::UnexpectedEof
            ),
            ClientError::Protocol(_) | ClientError::Status(..) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Status(code, body) => write!(f, "status {code}: {body}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        match e {
            HttpError::Io(e) => ClientError::Io(e),
            HttpError::Bad(m) => ClientError::Protocol(m),
        }
    }
}

/// Retry budget for transient transport errors.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// No retries at all (the cluster router does its own failover and
    /// must observe a dead peer quickly, not after a retry storm).
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry` (1-based), exponential with
    /// full jitter in `[½, 1]` of the nominal value.
    fn backoff(&self, retry: u32) -> Duration {
        let nominal = self
            .base_backoff
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_backoff);
        // Jitter without a rand dependency: hash the clock's nanoseconds.
        let noise = {
            let ns = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.subsec_nanos() as u64);
            let mut h = ns.wrapping_mul(0x9e3779b97f4a7c15);
            h ^= h >> 31;
            (h % 512) as f64 / 1024.0 // [0, 0.5)
        };
        nominal.mul_f64(0.5 + noise)
    }
}

/// Connection tunables; the defaults suit tests, the CLI, and in-cluster
/// peers on a LAN.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Bound on any single read (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Transient-error retry budget.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
        }
    }
}

/// The two halves of one live connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn dial(addr: SocketAddr, config: &ClientConfig) -> Result<Conn, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        // Request/response over one connection: never trade latency for
        // Nagle batching.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

/// One keep-alive connection to a running server (re-dialed transparently
/// after transient errors, within the retry budget).
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
}

/// How far a single attempt got before failing — decides retry safety.
/// Crate-visible because the cluster router's pipelined wave applies the
/// same never-replay-after-a-response-byte gate per connection.
pub(crate) enum AttemptError {
    /// Nothing of the response was consumed; the request may be replayed.
    BeforeResponse(ClientError),
    /// Response bytes were consumed (or the response itself was the
    /// failure): never replay.
    AfterResponse(ClientError),
}

/// The wire body of a batch request over borrowed lanes.
pub(crate) fn batch_request_body(scenarios: &[&Scenario], max_rel_err: f64) -> String {
    with_tolerance(
        Json::Object(vec![(
            "scenarios".into(),
            Json::Array(scenarios.iter().map(|s| scenario_to_json(s)).collect()),
        )]),
        max_rel_err,
    )
    .to_compact()
}

/// Decode a batch response: non-2xx becomes [`ClientError::Status`], a
/// 2xx must carry the `"predictions"` array.
pub(crate) fn batch_predictions_from_response(
    status: u16,
    body: Vec<u8>,
) -> Result<Vec<Prediction>, ClientError> {
    let text = String::from_utf8(body)
        .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
    if !(200..300).contains(&status) {
        return Err(ClientError::Status(status, text));
    }
    let doc = parse(&text).map_err(ClientError::Protocol)?;
    let items = doc
        .get("predictions")
        .and_then(Json::as_array)
        .ok_or_else(|| ClientError::Protocol("missing \"predictions\" array".into()))?;
    items
        .iter()
        .map(|v| prediction_from_json(v).map_err(|e| ClientError::Protocol(e.to_string())))
        .collect()
}

impl Client {
    /// Connect to the server at `addr` with default timeouts and retries.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit timeouts/retry policy.
    pub fn connect_with(addr: SocketAddr, config: ClientConfig) -> Result<Self, ClientError> {
        let conn = Conn::dial(addr, &config)?;
        Ok(Client {
            addr,
            config,
            conn: Some(conn),
        })
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Issue one request; returns `(status, body bytes)`.
    ///
    /// Transient transport failures reconnect and retry (with jittered
    /// backoff) up to the configured attempt budget — except after any
    /// response byte has been consumed, where retrying could double-apply
    /// the request; those errors surface immediately.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt(method, path, body) {
                Ok(reply) => return Ok(reply),
                Err(failure) => {
                    // The connection is in an unknown state either way.
                    self.conn = None;
                    let (err, replayable) = match failure {
                        AttemptError::BeforeResponse(e) => (e, true),
                        AttemptError::AfterResponse(e) => (e, false),
                    };
                    if !replayable || !err.is_retryable() || attempt >= self.config.retry.attempts {
                        return Err(err);
                    }
                    std::thread::sleep(self.config.retry.backoff(attempt));
                }
            }
        }
    }

    /// One write-request/read-response cycle on the current connection
    /// (dialing it first if needed).
    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), AttemptError> {
        let before = AttemptError::BeforeResponse;
        if self.conn.is_none() {
            self.conn = Some(Conn::dial(self.addr, &self.config).map_err(before)?);
        }
        let conn = self.conn.as_mut().expect("connection just dialed");
        write!(
            conn.writer,
            "{method} {path} HTTP/1.1\r\nhost: lopc-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .map_err(|e| before(e.into()))?;
        conn.writer.write_all(body).map_err(|e| before(e.into()))?;
        conn.writer.flush().map_err(|e| before(e.into()))?;
        // Peek before parsing: an error or clean EOF *here* means no
        // response byte was consumed, so the request is safely replayable
        // (the classic stale keep-alive race — the server idle-closed the
        // connection while our request was in flight).
        match conn.reader.fill_buf() {
            Ok([]) => {
                return Err(before(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                ))))
            }
            Ok(_) => {}
            Err(e) => return Err(before(e.into())),
        }
        let resp =
            read_response(&mut conn.reader).map_err(|e| AttemptError::AfterResponse(e.into()))?;
        if !resp.keep_alive {
            // The server declared this connection over (`connection:
            // close`); keeping it pooled would make the next request hit
            // the stale keep-alive race deterministically.
            self.conn = None;
        }
        Ok((resp.status, resp.body))
    }

    /// Pipelining, send half: write one request on the current connection
    /// (dialing it first if needed) *without* waiting for the response.
    /// The cluster router uses this to put every per-owner sub-batch in
    /// flight before reading any reply — the servers overlap their work
    /// while the client is still writing. Must be paired with
    /// [`Client::pipeline_recv`]; interleaving other requests in between
    /// would desynchronize the connection.
    pub(crate) fn pipeline_send(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(), ClientError> {
        if self.conn.is_none() {
            self.conn = Some(Conn::dial(self.addr, &self.config)?);
        }
        let conn = self.conn.as_mut().expect("connection just dialed");
        let wrote = (|| {
            write!(
                conn.writer,
                "{method} {path} HTTP/1.1\r\nhost: lopc-serve\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )?;
            conn.writer.write_all(body)?;
            conn.writer.flush()
        })();
        if let Err(e) = wrote {
            self.conn = None;
            return Err(e.into());
        }
        Ok(())
    }

    /// Pipelining, receive half: block for the response to the oldest
    /// un-answered [`Client::pipeline_send`]. The retry-safety split is
    /// the caller's to honor: a [`AttemptError::BeforeResponse`] failure
    /// consumed nothing and a retryable one may be replayed on a fresh
    /// connection (the stale keep-alive race); an
    /// [`AttemptError::AfterResponse`] failure must surface.
    pub(crate) fn pipeline_recv(&mut self) -> Result<(u16, Vec<u8>), AttemptError> {
        let before = AttemptError::BeforeResponse;
        let Some(conn) = self.conn.as_mut() else {
            return Err(before(ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "no connection to receive on",
            ))));
        };
        match conn.reader.fill_buf() {
            Ok([]) => {
                self.conn = None;
                return Err(before(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                ))));
            }
            Ok(_) => {}
            Err(e) => {
                self.conn = None;
                return Err(before(e.into()));
            }
        }
        match read_response(&mut conn.reader) {
            Ok(resp) => {
                if !resp.keep_alive {
                    self.conn = None;
                }
                Ok((resp.status, resp.body))
            }
            Err(e) => {
                self.conn = None;
                Err(AttemptError::AfterResponse(e.into()))
            }
        }
    }

    /// Issue one request and parse the JSON body; non-2xx becomes
    /// [`ClientError::Status`].
    pub fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<Json, ClientError> {
        let (status, body) = self.request(method, path, body)?;
        let text = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status(status, text));
        }
        parse(&text).map_err(ClientError::Protocol)
    }

    /// `POST /v1/predict` for one scenario (exact mode).
    pub fn predict(&mut self, scenario: &Scenario) -> Result<Prediction, ClientError> {
        self.predict_within(scenario, 0.0)
    }

    /// `POST /v1/predict` with a `max_rel_err` tolerance: `0` is exact
    /// mode; a positive bound permits certified grid interpolation.
    pub fn predict_within(
        &mut self,
        scenario: &Scenario,
        max_rel_err: f64,
    ) -> Result<Prediction, ClientError> {
        let body = with_tolerance(scenario_to_json(scenario), max_rel_err).to_compact();
        let doc = self.request_json("POST", "/v1/predict", body.as_bytes())?;
        prediction_from_json(&doc).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `POST /v1/predict/batch` for a scenario list (exact mode).
    pub fn predict_batch(
        &mut self,
        scenarios: &[Scenario],
    ) -> Result<Vec<Prediction>, ClientError> {
        self.predict_batch_within(scenarios, 0.0)
    }

    /// `POST /v1/predict/batch` with a `max_rel_err` tolerance applied to
    /// every scenario in the batch.
    pub fn predict_batch_within(
        &mut self,
        scenarios: &[Scenario],
        max_rel_err: f64,
    ) -> Result<Vec<Prediction>, ClientError> {
        let refs: Vec<&Scenario> = scenarios.iter().collect();
        self.predict_batch_refs(&refs, max_rel_err)
    }

    /// [`Client::predict_batch_within`] over borrowed lanes. The cluster
    /// router partitions one caller batch into per-owner sub-batches; this
    /// signature lets it ship each sub-batch without cloning a single
    /// `Scenario` on the hot path.
    pub fn predict_batch_refs(
        &mut self,
        scenarios: &[&Scenario],
        max_rel_err: f64,
    ) -> Result<Vec<Prediction>, ClientError> {
        let body = batch_request_body(scenarios, max_rel_err);
        let (status, body) = self.request("POST", "/v1/predict/batch", body.as_bytes())?;
        batch_predictions_from_response(status, body)
    }

    /// Bound how long [`Client::wait_for_eof`] (or any read) blocks.
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.config.read_timeout = dur;
        match &self.conn {
            Some(conn) => conn.reader.get_ref().set_read_timeout(dur),
            None => Ok(()),
        }
    }

    /// Block until the server closes the connection. `Ok(true)` is a clean
    /// EOF at a response boundary (how the server's keep-alive idle
    /// timeout manifests client-side); `Ok(false)` means unexpected bytes
    /// arrived instead.
    pub fn wait_for_eof(&mut self) -> io::Result<bool> {
        use std::io::Read;
        let Some(conn) = self.conn.as_mut() else {
            // The connection is already gone (torn down by an earlier
            // error): indistinguishable from EOF.
            return Ok(true);
        };
        let mut byte = [0u8; 1];
        match conn.reader.read(&mut byte) {
            Ok(0) => Ok(true),
            Ok(_) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// `GET /metrics`.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.request_json("GET", "/metrics", b"")
    }

    /// `GET /metrics?format=prom`: the Prometheus text exposition.
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        let (status, body) = self.request("GET", "/metrics?format=prom", b"")?;
        let text = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
        if status != 200 {
            return Err(ClientError::Status(status, text));
        }
        Ok(text)
    }
}
