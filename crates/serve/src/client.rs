//! A minimal blocking HTTP client for the service — the in-repo test
//! client the smoke suite, the integration tests, and the CI smoke job use
//! (the build container has no curl crate, and shelling out would not be
//! portable).
//!
//! One [`Client`] owns one keep-alive connection; requests on it are
//! sequential. For concurrency, open one client per thread.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

use crate::codec::{prediction_from_json, scenario_to_json, MAX_REL_ERR_FIELD};
use crate::http::{read_response, HttpError};
use crate::json::{parse, Json};
use lopc_core::{Prediction, Scenario};

/// Append `max_rel_err` to a request object when it is non-zero (zero is
/// the wire default, and omitting it keeps exact-mode requests identical to
/// pre-interpolation clients).
fn with_tolerance(mut kv: Json, max_rel_err: f64) -> Json {
    if max_rel_err != 0.0 {
        if let Json::Object(fields) = &mut kv {
            fields.push((MAX_REL_ERR_FIELD.into(), Json::Num(max_rel_err)));
        }
    }
    kv
}

/// Client-side failure: transport, protocol, or an error status.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The response could not be parsed.
    Protocol(String),
    /// The server answered with a non-2xx status.
    Status(u16, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Status(code, body) => write!(f, "status {code}: {body}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<HttpError> for ClientError {
    fn from(e: HttpError) -> Self {
        match e {
            HttpError::Io(e) => ClientError::Io(e),
            HttpError::Bad(m) => ClientError::Protocol(m),
        }
    }
}

/// One keep-alive connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to the server at `addr`.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/response over one connection: never trade latency for
        // Nagle batching.
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Issue one request; returns `(status, body bytes)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: lopc-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        let resp = read_response(&mut self.reader)?;
        Ok((resp.status, resp.body))
    }

    /// Issue one request and parse the JSON body; non-2xx becomes
    /// [`ClientError::Status`].
    pub fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<Json, ClientError> {
        let (status, body) = self.request(method, path, body)?;
        let text = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
        if !(200..300).contains(&status) {
            return Err(ClientError::Status(status, text));
        }
        parse(&text).map_err(ClientError::Protocol)
    }

    /// `POST /v1/predict` for one scenario (exact mode).
    pub fn predict(&mut self, scenario: &Scenario) -> Result<Prediction, ClientError> {
        self.predict_within(scenario, 0.0)
    }

    /// `POST /v1/predict` with a `max_rel_err` tolerance: `0` is exact
    /// mode; a positive bound permits certified grid interpolation.
    pub fn predict_within(
        &mut self,
        scenario: &Scenario,
        max_rel_err: f64,
    ) -> Result<Prediction, ClientError> {
        let body = with_tolerance(scenario_to_json(scenario), max_rel_err).to_compact();
        let doc = self.request_json("POST", "/v1/predict", body.as_bytes())?;
        prediction_from_json(&doc).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// `POST /v1/predict/batch` for a scenario list (exact mode).
    pub fn predict_batch(
        &mut self,
        scenarios: &[Scenario],
    ) -> Result<Vec<Prediction>, ClientError> {
        self.predict_batch_within(scenarios, 0.0)
    }

    /// `POST /v1/predict/batch` with a `max_rel_err` tolerance applied to
    /// every scenario in the batch.
    pub fn predict_batch_within(
        &mut self,
        scenarios: &[Scenario],
        max_rel_err: f64,
    ) -> Result<Vec<Prediction>, ClientError> {
        let body = with_tolerance(
            Json::Object(vec![(
                "scenarios".into(),
                Json::Array(scenarios.iter().map(scenario_to_json).collect()),
            )]),
            max_rel_err,
        )
        .to_compact();
        let doc = self.request_json("POST", "/v1/predict/batch", body.as_bytes())?;
        let items = doc
            .get("predictions")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing \"predictions\" array".into()))?;
        items
            .iter()
            .map(|v| prediction_from_json(v).map_err(|e| ClientError::Protocol(e.to_string())))
            .collect()
    }

    /// Bound how long [`Client::wait_for_eof`] (or any read) blocks.
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(dur)
    }

    /// Block until the server closes the connection. `Ok(true)` is a clean
    /// EOF at a response boundary (how the server's keep-alive idle
    /// timeout manifests client-side); `Ok(false)` means unexpected bytes
    /// arrived instead.
    pub fn wait_for_eof(&mut self) -> io::Result<bool> {
        use std::io::Read;
        let mut byte = [0u8; 1];
        match self.reader.read(&mut byte) {
            Ok(0) => Ok(true),
            Ok(_) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// `GET /metrics`.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.request_json("GET", "/metrics", b"")
    }

    /// `GET /metrics?format=prom`: the Prometheus text exposition.
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        let (status, body) = self.request("GET", "/metrics?format=prom", b"")?;
        let text = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
        if status != 200 {
            return Err(ClientError::Status(status, text));
        }
        Ok(text)
    }
}
