//! The prediction server: a `TcpListener` accept loop feeding a fixed pool
//! of worker threads, dispatching three endpoints over the scenario cache.
//!
//! | Endpoint | Body | Response |
//! |---|---|---|
//! | `POST /v1/predict` | one scenario object | one prediction object |
//! | `POST /v1/predict/batch` | `{"scenarios": [...]}` | `{"predictions": [...]}` |
//! | `GET /metrics` | — | counters, cache hit rate, p50/p99 latency |
//! | `GET /v1/cluster` | — | ring topology + peer health (DESIGN.md §15) |
//! | `GET /v1/cell/{key}` | — | one interpolation-cell export, or 404 |
//! | `POST /v1/cell/{key}` | cell export | re-verify and admit (422 = rejected) |
//!
//! Threading model: a single **reactor** thread multiplexes every
//! connection over epoll (see the `reactor` module) — accepting, reading,
//! incrementally parsing, and writing, all non-blocking — and hands each
//! *complete parsed request* to a fixed pool of `workers` threads over a
//! request queue. A worker computes the reply, writes the response bytes
//! straight to the socket, and posts a completion back through an eventfd
//! so the reactor re-arms the connection. Idle keep-alive connections
//! therefore cost a few kilobytes of reactor state instead of a blocked
//! worker thread: the concurrent-connection ceiling is the fd limit, not
//! the worker count. *Within* a batch request the scenario list goes
//! through [`InterpCache::predict_batch`](crate::interp::InterpCache):
//! cache-resident and certified-interpolated lanes are answered in place,
//! and the remaining misses are key-deduped and solved together by the
//! SoA batched fixed-point kernel — one kernel invocation per request
//! instead of lane-at-a-time work-queue claims.
//!
//! Status codes: `200` success, `400` malformed HTTP/JSON/schema, `404`
//! unknown path, `405` wrong method, `422` well-formed but unsolvable
//! scenario (model validation/solver failure), `500` never intentionally.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::OnceLock;

use crate::cache::SolutionCache;
use crate::cluster::{ClusterCellSource, ClusterState, VNODES};
use crate::codec::{
    cell_from_json, cell_to_json, max_rel_err_from_json, prediction_to_json, scenario_from_json,
};
use crate::http::{write_response, Request};
use crate::interp::{CellKey, ImportOutcome, InterpCache};
use crate::json::{parse, Json};
use crate::metrics::{CacheCounters, ClusterCounters, Endpoint, Metrics};
use crate::reactor::{Completion, Done, Reactor, Shared};
use lopc_core::Scenario;

/// Server tunables; the defaults suit tests and the quickstart binary.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (0 = available parallelism).
    pub workers: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Cache capacity per shard.
    pub cache_capacity_per_shard: usize,
    /// Close a keep-alive connection after this long with no request.
    pub idle_timeout: Duration,
    /// Peer addresses of the other cluster nodes (empty = single node).
    /// Every node must be configured with the same member set — the
    /// consistent-hash ring is derived from it (DESIGN.md §15).
    pub peers: Vec<String>,
    /// The address this node advertises as its ring identity. Defaults to
    /// the bound address — override it when binding `0.0.0.0` or an
    /// ephemeral port, since peers must name this node consistently.
    pub advertise: Option<String>,
    /// Virtual points per node on the ring.
    pub vnodes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            cache_shards: 16,
            cache_capacity_per_shard: 256,
            idle_timeout: Duration::from_secs(30),
            peers: Vec::new(),
            advertise: None,
            vnodes: VNODES,
        }
    }
}

/// Shared server state (cache + metrics), also usable without a socket —
/// `handle` drives the dispatcher directly, which is how the unit tests
/// exercise routing.
pub struct Service {
    interp: InterpCache,
    metrics: Metrics,
    /// Cluster tier, when enabled (always is for socket-backed servers;
    /// bare `Service` unit tests run without one).
    cluster: OnceLock<Arc<ClusterState>>,
}

/// One computed response.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Response body (compact JSON, or Prometheus text).
    pub body: String,
    /// `content-type` of the body.
    pub content_type: &'static str,
}

impl Reply {
    fn ok(v: &Json) -> Reply {
        Reply {
            status: 200,
            body: v.to_compact(),
            content_type: "application/json",
        }
    }

    fn text(body: String) -> Reply {
        Reply {
            status: 200,
            body,
            content_type: "text/plain; version=0.0.4",
        }
    }

    fn error(status: u16, msg: impl std::fmt::Display) -> Reply {
        Reply {
            status,
            body: Json::Object(vec![("error".into(), Json::Str(msg.to_string()))]).to_compact(),
            content_type: "application/json",
        }
    }
}

impl Service {
    /// Fresh service with the given cache geometry (the interpolation cell
    /// index reuses the same shard count and per-shard capacity).
    pub fn new(cache_shards: usize, cache_capacity_per_shard: usize) -> Self {
        Service {
            interp: InterpCache::new(
                SolutionCache::new(cache_shards, cache_capacity_per_shard),
                cache_shards,
                cache_capacity_per_shard,
            ),
            metrics: Metrics::new(),
            cluster: OnceLock::new(),
        }
    }

    /// Attach the cluster tier: publishes the topology endpoint and plugs
    /// the peer network in as the interpolation cache's
    /// [`CellSource`](crate::interp::CellSource) — cell misses pull from peers, sweep
    /// prefetches push to them. One-shot; later calls are ignored.
    pub fn enable_cluster(&self, state: Arc<ClusterState>) {
        if self.cluster.set(Arc::clone(&state)).is_ok() {
            self.interp
                .set_cell_source(Arc::new(ClusterCellSource(state)));
        }
    }

    /// The cluster state, when [`Service::enable_cluster`] has run.
    pub fn cluster(&self) -> Option<&Arc<ClusterState>> {
        self.cluster.get()
    }

    /// The exact solution cache (bench/tests read its counters).
    pub fn cache(&self) -> &SolutionCache {
        self.interp.cache()
    }

    /// The interpolation layer (cell counters).
    pub fn interp(&self) -> &InterpCache {
        &self.interp
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn cache_counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.cache().hits(),
            misses: self.cache().misses(),
            hit_rate: self.cache().hit_rate(),
            interp_hits: self.interp.interp_hits(),
            interp_fallbacks: self.interp.interp_fallbacks(),
            interp_cells_built: self.interp.cells_built(),
            interp_cells_prefetched: self.interp.cells_prefetched(),
        }
    }

    /// Cluster counters for `/metrics` (a one-node, zero-peer shape when
    /// clustering is not enabled, so the schema never changes).
    pub fn cluster_counters(&self) -> ClusterCounters {
        let (nodes, vnodes_per_node, cells_shipped, peers) = match self.cluster.get() {
            Some(c) => (
                c.ring().len() as u64,
                c.ring().vnodes() as u64,
                c.cells_shipped(),
                c.peer_snapshots(),
            ),
            None => (1, 0, 0, Vec::new()),
        };
        ClusterCounters {
            nodes,
            vnodes_per_node,
            cells_shipped,
            cells_received: self.interp.cells_received(),
            cells_rejected: self.interp.cells_rejected(),
            peers,
        }
    }

    /// Route one request to its endpoint, recording metrics. The short form
    /// of [`Service::handle_request`] for callers without a query string or
    /// `Accept` header (unit tests, simple tools).
    pub fn handle(&self, method: &str, path: &str, body: &[u8]) -> Reply {
        self.handle_request(method, path, None, None, body)
    }

    /// Route one request to its endpoint, recording metrics.
    ///
    /// `query` is the raw query string (no `?`); `accept` the request's
    /// `Accept` header. `GET /metrics` renders the Prometheus text
    /// exposition instead of JSON when the query contains `format=prom` or
    /// the `Accept` header asks for `text/plain`.
    pub fn handle_request(
        &self,
        method: &str,
        path: &str,
        query: Option<&str>,
        accept: Option<&str>,
        body: &[u8],
    ) -> Reply {
        let start = Instant::now();
        // Path decides 404 vs 405: any method other than the endpoint's own
        // on a known path is 405, only unknown paths are 404.
        let (endpoint, reply, scenarios) = if let Some(key) = path.strip_prefix("/v1/cell/") {
            let reply = match method {
                "GET" => self.cell_get(key),
                "POST" => self.cell_post(key, body),
                _ => Reply::error(405, format!("{method} not allowed on {path}")),
            };
            (Endpoint::Other, reply, 0)
        } else {
            match (path, method) {
                ("/v1/predict", "POST") => {
                    let (r, n) = self.predict(body);
                    (Endpoint::Predict, r, n)
                }
                ("/v1/predict/batch", "POST") => {
                    let (r, n) = self.predict_batch(body);
                    (Endpoint::Batch, r, n)
                }
                ("/metrics", "GET") => {
                    let prom_query = query
                        .map(|q| q.split('&').any(|kv| kv == "format=prom"))
                        .unwrap_or(false);
                    let prom_accept = accept
                        .map(|a| a.split(',').any(|m| m.trim().starts_with("text/plain")))
                        .unwrap_or(false);
                    let reply = if prom_query || prom_accept {
                        Reply::text(
                            self.metrics
                                .to_prometheus(&self.cache_counters(), &self.cluster_counters()),
                        )
                    } else {
                        Reply::ok(
                            &self
                                .metrics
                                .to_json(&self.cache_counters(), &self.cluster_counters()),
                        )
                    };
                    (Endpoint::Metrics, reply, 0)
                }
                ("/v1/cluster", "GET") => {
                    let reply = match self.cluster.get() {
                        Some(c) => Reply::ok(&c.topology_json()),
                        None => Reply::error(404, "clustering is not enabled"),
                    };
                    (Endpoint::Other, reply, 0)
                }
                ("/v1/predict" | "/v1/predict/batch" | "/metrics" | "/v1/cluster", _) => (
                    Endpoint::Other,
                    Reply::error(405, format!("{method} not allowed on {path}")),
                    0,
                ),
                _ => (
                    Endpoint::Other,
                    Reply::error(404, format!("no such endpoint {path}")),
                    0,
                ),
            }
        };
        self.metrics.record(
            endpoint,
            reply.status,
            start.elapsed().as_nanos() as u64,
            scenarios,
        );
        reply
    }

    /// `GET /v1/cell/{key}`: export one resident interpolation cell.
    /// `400` unparseable key, `404` absent (or untrusted — never re-ship a
    /// cell this node would not vouch for), `200` with the export.
    fn cell_get(&self, key: &str) -> Reply {
        if CellKey::from_wire(key).is_none() {
            return Reply::error(400, format!("malformed cell key {key:?}"));
        }
        match self.interp.export_cell(key) {
            Some(export) => {
                if let Some(cluster) = self.cluster.get() {
                    cluster.count_shipped();
                }
                Reply::ok(&cell_to_json(&export))
            }
            None => Reply::error(404, format!("no resident cell {key:?}")),
        }
    }

    /// `POST /v1/cell/{key}`: a peer pushes a cell it built. The body is
    /// decoded, checked against the path key, and handed to
    /// [`InterpCache::import_cell`] — which re-verifies the certificate
    /// against a locally solved spot-probe before admitting anything.
    fn cell_post(&self, key: &str, body: &[u8]) -> Reply {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Reply::error(400, "body is not UTF-8"),
        };
        let doc = match parse(text) {
            Ok(d) => d,
            Err(e) => return Reply::error(400, format!("invalid JSON: {e}")),
        };
        let export = match cell_from_json(&doc) {
            Ok(e) => e,
            Err(e) => return Reply::error(400, format!("invalid cell export: {e}")),
        };
        if export.wire_key != key {
            return Reply::error(
                400,
                format!(
                    "path key {key:?} does not match body key {:?}",
                    export.wire_key
                ),
            );
        }
        match self.interp.import_cell(&export) {
            ImportOutcome::Admitted => {
                Reply::ok(&Json::Object(vec![("imported".into(), Json::Bool(true))]))
            }
            ImportOutcome::AlreadyResident => {
                Reply::ok(&Json::Object(vec![("imported".into(), Json::Bool(false))]))
            }
            ImportOutcome::Rejected(reason) => {
                Reply::error(422, format!("cell rejected: {reason}"))
            }
        }
    }

    fn decode_scenario(body: &[u8]) -> Result<(Scenario, f64), Reply> {
        let text = std::str::from_utf8(body).map_err(|_| Reply::error(400, "body is not UTF-8"))?;
        let doc = parse(text).map_err(|e| Reply::error(400, format!("invalid JSON: {e}")))?;
        let max_rel_err =
            max_rel_err_from_json(&doc).map_err(|e| Reply::error(400, e.to_string()))?;
        let scenario = scenario_from_json(&doc)
            .map_err(|e| Reply::error(400, format!("invalid scenario: {e}")))?;
        // Model-level validation up front: well-formed but unsolvable
        // requests are rejected (422) before they touch the cache.
        scenario
            .validate()
            .map_err(|e| Reply::error(422, format!("invalid parameters: {e}")))?;
        Ok((scenario, max_rel_err))
    }

    fn predict(&self, body: &[u8]) -> (Reply, u64) {
        let (scenario, max_rel_err) = match Self::decode_scenario(body) {
            Ok(s) => s,
            Err(reply) => return (reply, 0),
        };
        match self.interp.predict(&scenario, max_rel_err) {
            Ok(p) => (Reply::ok(&prediction_to_json(&p)), 1),
            Err(e) => (Reply::error(422, format!("unsolvable scenario: {e}")), 0),
        }
    }

    fn predict_batch(&self, body: &[u8]) -> (Reply, u64) {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return (Reply::error(400, "body is not UTF-8"), 0),
        };
        let doc = match parse(text) {
            Ok(d) => d,
            Err(e) => return (Reply::error(400, format!("invalid JSON: {e}")), 0),
        };
        let max_rel_err = match max_rel_err_from_json(&doc) {
            Ok(tol) => tol,
            Err(e) => return (Reply::error(400, e.to_string()), 0),
        };
        let items = match doc.get("scenarios").and_then(Json::as_array) {
            Some(items) => items,
            None => return (Reply::error(400, "body must be {\"scenarios\": [...]}"), 0),
        };
        let mut scenarios = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let s = match scenario_from_json(item) {
                Ok(s) => s,
                Err(e) => {
                    return (
                        Reply::error(400, format!("invalid scenario at index {i}: {e}")),
                        0,
                    )
                }
            };
            if let Err(e) = s.validate() {
                return (
                    Reply::error(422, format!("invalid parameters at index {i}: {e}")),
                    0,
                );
            }
            scenarios.push(s);
        }
        match self.solve_batch(&scenarios, max_rel_err) {
            Ok(predictions) => (
                Reply::ok(&Json::Object(vec![(
                    "predictions".into(),
                    Json::Array(predictions),
                )])),
                scenarios.len() as u64,
            ),
            Err((i, e)) => (
                Reply::error(422, format!("unsolvable scenario at index {i}: {e}")),
                0,
            ),
        }
    }

    /// Solve a batch through the interpolation layer's batched entry:
    /// lanes answered by resident exact entries or certified cells are
    /// served immediately, the remaining cache misses are key-deduped and
    /// solved together by the SoA fixed-point kernel
    /// ([`lopc_core::scenario::solve_batch`]) instead of lane-at-a-time
    /// claims. The first failing lane (smallest index) reports the error.
    fn solve_batch(
        &self,
        scenarios: &[Scenario],
        max_rel_err: f64,
    ) -> Result<Vec<Json>, (usize, lopc_core::ModelError)> {
        let results = self.interp.predict_batch(scenarios, max_rel_err);
        let mut out = Vec::with_capacity(results.len());
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok(p) => out.push(prediction_to_json(&p)),
                Err(e) => return Err((i, e)),
            }
        }
        Ok(out)
    }
}

/// A running server; dropping the handle leaks the threads, so call
/// [`ServerHandle::shutdown`] (tests) or hold it forever (the binary).
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shared: Arc<Shared>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (read the ephemeral port from here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (cache counters, metrics).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Stop the server: shutdown is an *event*, not a poll. Flag + eventfd
    /// wake the reactor out of `epoll_wait`; it closes the listener and
    /// every idle connection immediately, waits only for requests already
    /// dispatched to workers, and exits. Workers drain the request queue
    /// and park out. Every thread is joined on return.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.signal();
        self.shared.jobs.wake_all();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Compute and write one response directly to the (non-blocking) socket.
/// The direct write is the fast path — the thread that computed the reply
/// also sends it; only a filled socket buffer falls back to the reactor's
/// `EPOLLOUT` machinery via [`Done::Partial`].
fn run_request(service: &Service, stream: &TcpStream, req: &Request) -> Done {
    let reply = service.handle_request(
        &req.method,
        &req.path,
        req.query.as_deref(),
        req.header("accept"),
        &req.body,
    );
    let keep_alive = req.keep_alive();
    // RFC 9110 §9.3.2: responses to HEAD must carry no body, or a
    // conforming client desyncs on the kept-alive connection.
    let body = if req.method == "HEAD" {
        ""
    } else {
        &reply.body
    };
    let mut bytes = Vec::with_capacity(128 + body.len());
    write_response(
        &mut bytes,
        reply.status,
        reply.content_type,
        body,
        keep_alive,
    )
    .expect("in-memory write");
    let mut pos = 0;
    while pos < bytes.len() {
        match (&*stream).write(&bytes[pos..]) {
            Ok(0) => return Done::Failed,
            Ok(n) => pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return Done::Partial {
                    rest: bytes[pos..].to_vec(),
                    keep_alive,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Done::Failed,
        }
    }
    Done::Written { keep_alive }
}

/// Serve one parsed request end to end (handler + response write), with
/// panics contained to [`Done::Failed`]. Called from worker threads for
/// solver-heavy jobs and from the reactor itself on the inline fast path —
/// either way a panicking handler must cost one connection, not a thread.
pub(crate) fn execute(service: &Service, stream: &TcpStream, request: &Request) -> Done {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_request(service, stream, request)
    }))
    .unwrap_or(Done::Failed)
}

/// Worker thread body: pop parsed requests until shutdown drains the
/// queue. A completion is *always* posted — even when the handler panics —
/// so the reactor's shutdown drain can never wait on a job that will not
/// report back.
fn worker_loop(service: &Service, shared: &Shared) {
    while let Some(job) = shared.jobs.pop(&shared.shutdown) {
        let done = execute(service, &job.stream, &job.request);
        shared.complete(Completion {
            token: job.token,
            done,
        });
    }
}

/// Bind and start a server.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    start_on(listener, config)
}

/// Start a server on an already-bound listener. Splitting the bind from
/// the start lets multi-node tests bind every listener first (learning the
/// ephemeral ports) and only then start the nodes with each other's
/// addresses as peers.
pub fn start_on(listener: TcpListener, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let service = Arc::new(Service::new(
        config.cache_shards,
        config.cache_capacity_per_shard,
    ));
    // The cluster tier is always on — with no peers it is a one-node ring
    // whose fetches and pushes are no-ops, but `/v1/cluster` still serves
    // the topology so routing clients work against any deployment.
    let self_addr = config.advertise.clone().unwrap_or_else(|| addr.to_string());
    service.enable_cluster(Arc::new(ClusterState::new(
        self_addr,
        &config.peers,
        config.vnodes,
    )));
    let shared = Arc::new(Shared::new()?);
    // Many-connection serving is fd-bound; lift the soft limit as far as
    // the environment allows (best effort — C10K needs ~10k fds).
    let _ = crate::sys::raise_nofile_limit(65536);

    let workers_n = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.workers
    };
    let mut workers = Vec::with_capacity(workers_n);
    for _ in 0..workers_n {
        let service = Arc::clone(&service);
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || worker_loop(&service, &shared)));
    }

    let reactor = Reactor::new(
        listener,
        Arc::clone(&service),
        Arc::clone(&shared),
        config.idle_timeout,
    )?;
    let reactor_thread = std::thread::spawn(move || reactor.run());

    Ok(ServerHandle {
        addr,
        service,
        shared,
        reactor_thread: Some(reactor_thread),
        workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_core::Machine;

    fn service() -> Service {
        Service::new(4, 64)
    }

    fn a2a_body(w: f64) -> String {
        format!(
            r#"{{"kind":"all_to_all","machine":{{"p":32,"st":25.0,"so":200.0,"c2":0.0}},"w":{w}}}"#
        )
    }

    #[test]
    fn predict_round_trips_through_dispatcher() {
        let svc = service();
        let reply = svc.handle("POST", "/v1/predict", a2a_body(1000.0).as_bytes());
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = parse(&reply.body).unwrap();
        let direct = lopc_core::scenario::solve(&Scenario::AllToAll {
            machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
            w: 1000.0,
        })
        .unwrap();
        assert_eq!(doc.get("r").unwrap().as_num(), Some(direct.r));
        assert_eq!(doc.get("x").unwrap().as_num(), Some(direct.x));
    }

    #[test]
    fn batch_matches_singles_and_counts_scenarios() {
        let svc = service();
        let body = format!(
            r#"{{"scenarios":[{},{},{}]}}"#,
            a2a_body(100.0),
            a2a_body(500.0),
            a2a_body(100.0)
        );
        let reply = svc.handle("POST", "/v1/predict/batch", body.as_bytes());
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = parse(&reply.body).unwrap();
        let preds = doc.get("predictions").unwrap().as_array().unwrap();
        assert_eq!(preds.len(), 3);
        // Repeated scenario: identical answer (and a cache hit).
        assert_eq!(preds[0].get("r"), preds[2].get("r"));
        assert!(svc.cache().hits() >= 1);
        assert_eq!(svc.metrics().scenarios_solved(), 3);
    }

    #[test]
    fn error_statuses() {
        let svc = service();
        assert_eq!(svc.handle("GET", "/nope", b"").status, 404);
        assert_eq!(svc.handle("GET", "/v1/predict", b"").status, 405);
        assert_eq!(svc.handle("POST", "/metrics", b"").status, 405);
        // Known path + any unexpected method is 405, never 404.
        assert_eq!(svc.handle("PUT", "/v1/predict", b"").status, 405);
        assert_eq!(svc.handle("DELETE", "/metrics", b"").status, 405);
        assert_eq!(svc.handle("HEAD", "/v1/predict/batch", b"").status, 405);
        assert_eq!(svc.handle("POST", "/v1/predict", b"not json").status, 400);
        assert_eq!(svc.handle("POST", "/v1/predict", b"\xff\xfe").status, 400);
        assert_eq!(svc.handle("POST", "/v1/predict", b"{}").status, 400);
        assert_eq!(
            svc.handle("POST", "/v1/predict/batch", b"{\"nope\":1}")
                .status,
            400
        );
        // Well-formed but unsolvable: P = 1.
        let bad = r#"{"kind":"all_to_all","machine":{"p":1,"st":1,"so":1,"c2":1},"w":1}"#;
        assert_eq!(
            svc.handle("POST", "/v1/predict", bad.as_bytes()).status,
            422
        );
        // Batch reports the failing index.
        let batch = format!(r#"{{"scenarios":[{},{bad}]}}"#, a2a_body(10.0));
        let reply = svc.handle("POST", "/v1/predict/batch", batch.as_bytes());
        assert_eq!(reply.status, 422);
        assert!(reply.body.contains("index 1"), "{}", reply.body);
    }

    #[test]
    fn metrics_endpoint_reflects_traffic() {
        let svc = service();
        svc.handle("POST", "/v1/predict", a2a_body(1.0).as_bytes());
        svc.handle("POST", "/v1/predict", a2a_body(1.0).as_bytes());
        svc.handle("GET", "/nope", b"");
        let reply = svc.handle("GET", "/metrics", b"");
        assert_eq!(reply.status, 200);
        let doc = parse(&reply.body).unwrap();
        assert_eq!(
            doc.get("requests")
                .unwrap()
                .get("predict")
                .unwrap()
                .as_num(),
            Some(2.0)
        );
        assert_eq!(
            doc.get("cache").unwrap().get("hits").unwrap().as_num(),
            Some(1.0)
        );
        assert_eq!(
            doc.get("cache").unwrap().get("hit_rate").unwrap().as_num(),
            Some(0.5)
        );
        assert!(doc
            .get("latency_ns")
            .unwrap()
            .get("p50")
            .unwrap()
            .as_num()
            .is_some());
    }

    #[test]
    fn cell_and_cluster_endpoints_route_correctly() {
        let svc = service();
        // Key validation is independent of residency.
        assert_eq!(svc.handle("GET", "/v1/cell/zz!!", b"").status, 400);
        assert_eq!(svc.handle("GET", "/v1/cell/0-20-a", b"").status, 404);
        assert_eq!(svc.handle("PUT", "/v1/cell/0-20-a", b"").status, 405);
        assert_eq!(
            svc.handle("POST", "/v1/cell/0-20-a", b"not json").status,
            400
        );
        // A bare Service has no cluster state: topology 404s, method 405s.
        assert_eq!(svc.handle("GET", "/v1/cluster", b"").status, 404);
        assert_eq!(svc.handle("POST", "/v1/cluster", b"").status, 405);
    }

    #[test]
    fn cluster_topology_and_cell_round_trip_through_endpoints() {
        use crate::cluster::{ClusterState, VNODES};
        // Node A (peerless cluster enabled) warms a cell with a tolerant
        // sweep; its export round-trips through the HTTP bodies into node
        // B, which re-verifies and admits it.
        let a = service();
        a.enable_cluster(Arc::new(ClusterState::new(
            "127.0.0.1:1".into(),
            &[],
            VNODES,
        )));
        let reply = a.handle("GET", "/v1/cluster", b"");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let topo = parse(&reply.body).unwrap();
        assert_eq!(topo.get("self").unwrap().as_str(), Some("127.0.0.1:1"));
        assert_eq!(topo.get("nodes").unwrap().as_array().unwrap().len(), 1);

        for i in 0..40 {
            let body = format!(
                r#"{{"kind":"all_to_all","machine":{{"p":32,"st":25.0,"so":200.0,"c2":0.0}},"w":{},"max_rel_err":0.05}}"#,
                700.0 + 10.0 * i as f64
            );
            assert_eq!(a.handle("POST", "/v1/predict", body.as_bytes()).status, 200);
        }
        assert!(a.interp().cells() > 0, "tolerant sweep built no cells");
        // Find a resident cell's wire key through the public export path.
        let wire_key = a
            .interp()
            .resident_cell_keys()
            .into_iter()
            .find(|k| a.interp().export_cell(k).is_some())
            .expect("at least one exportable cell");
        let reply = a.handle("GET", &format!("/v1/cell/{wire_key}"), b"");
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(a.cluster().unwrap().cells_shipped(), 1);

        let b = service();
        let post = b.handle(
            "POST",
            &format!("/v1/cell/{wire_key}"),
            reply.body.as_bytes(),
        );
        assert_eq!(post.status, 200, "{}", post.body);
        assert!(post.body.contains("\"imported\":true"), "{}", post.body);
        assert_eq!(b.interp().cells_received(), 1);
        assert_eq!(b.interp().cells_rejected(), 0);
        // Pushing the same cell again is idempotent.
        let again = b.handle(
            "POST",
            &format!("/v1/cell/{wire_key}"),
            reply.body.as_bytes(),
        );
        assert!(again.body.contains("\"imported\":false"), "{}", again.body);
        // Path/body key mismatch is a 400, not an import attempt.
        let mismatch = b.handle("POST", "/v1/cell/0-20-a", reply.body.as_bytes());
        assert_eq!(mismatch.status, 400);
        // A tampered certificate (cheaper than the probe supports) is
        // rejected and the key pinned exact.
        let mut doc = parse(&reply.body).unwrap();
        if let Json::Object(kv) = &mut doc {
            for (k, v) in kv.iter_mut() {
                if k == "cert" {
                    *v = Json::Num(1e-12);
                }
            }
        }
        let c = service();
        let tampered = c.handle(
            "POST",
            &format!("/v1/cell/{wire_key}"),
            doc.to_compact().as_bytes(),
        );
        assert_eq!(tampered.status, 422, "{}", tampered.body);
        assert_eq!(c.interp().cells_rejected(), 1);
    }

    #[test]
    fn metrics_include_cluster_section() {
        let svc = service();
        let reply = svc.handle("GET", "/metrics", b"");
        let doc = parse(&reply.body).unwrap();
        let cluster = doc.get("cluster").unwrap();
        assert_eq!(cluster.get("nodes").unwrap().as_num(), Some(1.0));
        assert!(cluster.get("peers").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn batch_of_one_and_empty_batch() {
        let svc = service();
        let one = format!(r#"{{"scenarios":[{}]}}"#, a2a_body(64.0));
        assert_eq!(
            svc.handle("POST", "/v1/predict/batch", one.as_bytes())
                .status,
            200
        );
        let empty = r#"{"scenarios":[]}"#;
        let reply = svc.handle("POST", "/v1/predict/batch", empty.as_bytes());
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, r#"{"predictions":[]}"#);
    }
}
