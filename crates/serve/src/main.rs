//! The `lopc-serve` binary: bind the prediction service and run until
//! killed.
//!
//! ```text
//! cargo run -p lopc-serve [--release] -- [--addr 127.0.0.1:7070] [--workers N]
//! ```
//!
//! With no `--addr` the server picks an ephemeral port and prints it.

use lopc_serve::server::{start, ServerConfig};

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7070".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_for("--addr"),
            "--workers" => {
                config.workers = value_for("--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers must be an integer"))
            }
            "--cache-shards" => {
                config.cache_shards = value_for("--cache-shards")
                    .parse()
                    .unwrap_or_else(|_| die("--cache-shards must be an integer"))
            }
            "--cache-capacity" => {
                config.cache_capacity_per_shard = value_for("--cache-capacity")
                    .parse()
                    .unwrap_or_else(|_| die("--cache-capacity must be an integer"))
            }
            "--idle-timeout-ms" => {
                config.idle_timeout = std::time::Duration::from_millis(
                    value_for("--idle-timeout-ms")
                        .parse()
                        .unwrap_or_else(|_| die("--idle-timeout-ms must be an integer")),
                )
            }
            "--peer" => config.peers.push(value_for("--peer")),
            "--advertise" => config.advertise = Some(value_for("--advertise")),
            "--vnodes" => {
                config.vnodes = value_for("--vnodes")
                    .parse()
                    .unwrap_or_else(|_| die("--vnodes must be an integer"))
            }
            "--help" | "-h" => {
                println!(
                    "lopc-serve: LoPC prediction service\n\n\
                     options:\n  --addr HOST:PORT    bind address (default 127.0.0.1:7070; port 0 = ephemeral)\n  \
                     --workers N         worker threads (default: available parallelism)\n  \
                     --cache-shards N    cache shard count (default 16)\n  \
                     --cache-capacity N  cache entries per shard (default 256)\n  \
                     --idle-timeout-ms N close keep-alive connections idle this long (default 30000)\n  \
                     --peer HOST:PORT    another cluster node (repeatable; all nodes list each other)\n  \
                     --advertise H:P     ring identity to advertise (default: the bound address)\n  \
                     --vnodes N          virtual ring points per node (default 64)"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    let handle = match start(config) {
        Ok(h) => h,
        Err(e) => die(&format!("could not bind: {e}")),
    };
    let addr = handle.addr();
    println!("lopc-serve listening on http://{addr}");
    println!(
        "endpoints: POST /v1/predict | POST /v1/predict/batch | GET /metrics | \
         GET /v1/cluster | GET|POST /v1/cell/{{key}}"
    );
    println!(
        "example:\n  curl -s http://{addr}/v1/predict -d \
         '{{\"kind\":\"all_to_all\",\"machine\":{{\"p\":32,\"st\":25,\"so\":200,\"c2\":0}},\"w\":1000}}'"
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn die(msg: &str) -> ! {
    eprintln!("lopc-serve: {msg}");
    std::process::exit(2)
}
