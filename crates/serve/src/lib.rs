//! **lopc-serve** — the LoPC prediction service: the analytical models of
//! `lopc-core`, queryable over HTTP.
//!
//! The reproduction's models answer "given machine and algorithm
//! parameters, what runtime/throughput should I expect?" — a question that
//! arrives at sweep scale once anything (a scheduler, a capacity planner, a
//! dashboard) consumes the model online. This crate turns the library into
//! that service without any external dependency:
//!
//! * [`json`] — the workspace's shared hand-rolled JSON (value type,
//!   emitter, parser); `lopc_bench::baseline` re-uses it for
//!   `BENCH_sim.json`;
//! * [`codec`] — the wire schema for [`Scenario`](lopc_core::Scenario) and
//!   [`Prediction`](lopc_core::Prediction);
//! * [`cache`] — the sharded LRU solution cache over quantized scenario
//!   keys, so repeated and near-identical sweep queries skip the AMVA
//!   fixed-point solve;
//! * [`interp`] — grid interpolation with certified error bounds over that
//!   cache: a request carrying `max_rel_err > 0` may be answered by
//!   multilinear interpolation between cached exact solves when the
//!   surrounding grid cell's certificate is within the tolerance (see
//!   DESIGN.md §12);
//! * [`http`] — a dependency-free HTTP/1.1 subset on `std::net`, with
//!   both a blocking reference parser and the incremental
//!   [`RequestParser`](http::RequestParser) the reactor resumes
//!   byte-by-byte;
//! * [`sys`] — a thin `libc`-free shim over the raw Linux syscalls the
//!   reactor needs (`epoll_*`, `eventfd2`, `prlimit64`);
//! * [`server`] — the epoll reactor + worker-pool server and its
//!   endpoints (`POST /v1/predict`, `POST /v1/predict/batch`,
//!   `GET /metrics`, plus the cluster tier's `GET /v1/cluster` and
//!   `GET|POST /v1/cell/{key}`), multiplexing thousands of idle
//!   keep-alive connections on one thread;
//! * [`cluster`] — the distributed serving tier (DESIGN.md §15):
//!   consistent-hash sharding of the caches across N nodes, node-to-node
//!   cell transfer with re-verification on import, lazy peer failure
//!   detection, and the routing [`ClusterClient`];
//! * [`client`] — the in-repo blocking client (smoke tests, CI, the
//!   load-generator bench), with connect/read timeouts and bounded
//!   jittered retry.
//!
//! Served numbers are **bit-identical** to direct library calls: the
//! dispatcher is `lopc_core::scenario::solve`, the JSON number format
//! round-trips `f64` exactly, and the cache stores exact solves (see
//! DESIGN.md §11 for the quantization contract). The `serve_vs_library`
//! integration test pins this end to end.
//!
//! # Quickstart
//!
//! ```no_run
//! use lopc_serve::{client::Client, server, server::ServerConfig};
//! use lopc_core::{Machine, Scenario};
//!
//! let handle = server::start(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let prediction = client
//!     .predict(&Scenario::AllToAll {
//!         machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
//!         w: 1000.0,
//!     })
//!     .unwrap();
//! println!("predicted R = {:.1} cycles", prediction.r);
//! handle.shutdown();
//! ```
//!
//! Or as a process: `cargo run -p lopc-serve` (see the README's serving
//! quickstart for example request/response payloads).

pub mod cache;
pub mod client;
pub mod cluster;
pub mod codec;
pub mod http;
pub mod interp;
pub mod json;
pub mod metrics;
pub(crate) mod reactor;
pub mod server;
pub mod sys;

pub use cache::SolutionCache;
pub use client::{Client, ClientConfig, ClientError, RetryPolicy};
pub use cluster::{ClusterClient, ClusterState, HashRing};
pub use codec::{
    cell_from_json, cell_to_json, prediction_from_json, prediction_to_json, predictions_identical,
    scenario_from_json, scenario_to_json, DecodeError,
};
pub use interp::{CellExport, CellKey, ImportOutcome, InterpCache, Served};
pub use json::{parse, Json};
pub use metrics::Metrics;
pub use server::{start, start_on, Reply, ServerConfig, ServerHandle, Service};
