//! The sharded solution cache: repeated (and near-identical) scenario
//! queries skip the AMVA fixed-point solve.
//!
//! Parameter sweeps and dashboard traffic ask for the same handful of
//! scenarios over and over, and the general-model solve is five orders of
//! magnitude more expensive than a hash lookup. The cache maps a
//! **quantized key** of the scenario to its solved [`Prediction`]:
//!
//! * **Quantization** — every `f64` parameter is rounded to
//!   [`SIG_DIGITS`] significant decimal digits before keying, so queries
//!   that differ only by float noise (`W = 1000.0` vs `W = 1000.0000001`,
//!   as produced by sweep generators) land in the same bucket. The *stored*
//!   prediction is always the exact solve of the **first** scenario seen in
//!   the bucket; a later near-identical query returns that stored answer,
//!   differing from its own exact solve by at most the model's sensitivity
//!   across one quantization step (~1e-6 relative). Exact repeats are
//!   returned bit-identically.
//! * **Sharding** — the key hash picks one of `shards` independently locked
//!   LRU maps, so concurrent workers rarely contend on the same mutex.
//! * **LRU** — each shard is a hand-rolled intrusive doubly-linked list
//!   over a slab (`Vec`) of entries with a `HashMap` index: O(1) hit,
//!   insert, and eviction; no allocation churn after warm-up.
//!
//! Hit/miss counters are process-global atomics surfaced by `/metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lopc_core::{ModelError, Prediction, Scenario};

/// Significant decimal digits kept by the cache-key quantizer.
pub const SIG_DIGITS: i32 = 6;

/// Round to [`SIG_DIGITS`] significant digits (0, NaN and infinities pass
/// through; the key uses the result's bit pattern).
pub fn quantize(x: f64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let mag = x.abs().log10().floor() as i32;
    let scale = 10f64.powi(SIG_DIGITS - 1 - mag);
    // At extreme magnitudes (|x| below ~1e-304) the scale itself overflows;
    // key such values unquantized rather than collapsing them into one
    // NaN bucket.
    if !scale.is_finite() || scale == 0.0 {
        return x;
    }
    (x * scale).round() / scale
}

/// The quantized cache key: variant tag followed by every parameter's
/// quantized bit pattern. Two scenarios share a key iff they quantize to
/// the same parameters.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey(Box<[u64]>);

/// Feed every word of a scenario's quantized key — variant tag, machine
/// parameters, then the variant's own parameters — to `emit`, in the
/// order [`CacheKey::of`] stores them. The single source of truth for the
/// key layout: materialising a key and the allocation-free routing hash
/// ([`CacheKey::hash_of`]) both walk through here, so they can never
/// disagree.
fn key_words(scenario: &Scenario, mut emit: impl FnMut(u64)) {
    /// Quantized bit pattern of one parameter.
    fn q(x: f64) -> u64 {
        quantize(x).to_bits()
    }
    fn machine_words(emit: &mut impl FnMut(u64), m: &lopc_core::Machine) {
        emit(m.p as u64);
        emit(q(m.s_l));
        emit(q(m.s_o));
        emit(q(m.c2));
    }
    match scenario {
        Scenario::AllToAll { machine, w } => {
            emit(0);
            machine_words(&mut emit, machine);
            emit(q(*w));
        }
        Scenario::ClientServer { machine, w, ps } => {
            emit(1);
            machine_words(&mut emit, machine);
            emit(q(*w));
            emit(ps.map_or(u64::MAX, |ps| ps as u64));
        }
        Scenario::ForkJoin { machine, w, k } => {
            emit(2);
            machine_words(&mut emit, machine);
            emit(q(*w));
            emit(*k as u64);
        }
        Scenario::General(model) => {
            emit(3);
            machine_words(&mut emit, &model.machine);
            emit(model.protocol_processor as u64);
            for w in &model.w {
                match w {
                    None => emit(u64::MAX),
                    Some(w) => emit(q(*w)),
                }
            }
            for row in &model.v {
                for &x in row {
                    emit(q(x));
                }
            }
        }
        Scenario::SharedMemory { machine, w } => {
            emit(4);
            machine_words(&mut emit, machine);
            emit(q(*w));
        }
    }
}

/// One FNV-1a step over a key word.
fn fnv_word(h: u64, w: u64) -> u64 {
    let mut h = h;
    for b in w.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

impl CacheKey {
    /// Derive the key for one scenario.
    pub fn of(scenario: &Scenario) -> Self {
        let mut words: Vec<u64> = Vec::with_capacity(8);
        key_words(scenario, |w| words.push(w));
        CacheKey(words.into_boxed_slice())
    }

    /// FNV-1a over the key words. Shard selection uses it locally; the
    /// cluster tier uses the same value as the **routing hash** — every
    /// node and every client must agree on where a quantized key lives on
    /// the consistent-hash ring, so this function is part of the cluster
    /// wire contract (DESIGN.md §15).
    pub fn hash64(&self) -> u64 {
        self.0.iter().fold(FNV_OFFSET, |h, &w| fnv_word(h, w))
    }

    /// `CacheKey::of(scenario).hash64()` without materialising the key:
    /// the routing client hashes every lane of every batch, and the
    /// per-lane allocation is the only part of that cost that isn't
    /// inherent.
    pub fn hash_of(scenario: &Scenario) -> u64 {
        let mut h = FNV_OFFSET;
        key_words(scenario, |w| h = fnv_word(h, w));
        h
    }
}

/// `usize::MAX` as the list terminator.
const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Prediction,
    prev: usize,
    next: usize,
}

/// One shard: slab-backed intrusive LRU list plus its index.
struct Shard {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry>,
    /// Most recently used.
    head: usize,
    /// Least recently used (eviction end).
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlink slot `i` from the list (it must be linked).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Link slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &CacheKey) -> Option<Prediction> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.link_front(i);
        Some(self.slab[i].value)
    }

    fn insert(&mut self, key: CacheKey, value: Prediction) {
        if let Some(&i) = self.map.get(&key) {
            // Raced with another worker solving the same key: refresh.
            self.slab[i].value = value;
            self.unlink(i);
            self.link_front(i);
            return;
        }
        let i = if self.slab.len() < self.capacity {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        } else {
            // Evict the LRU entry and reuse its slot.
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.slab[i].key);
            self.slab[i].key = key.clone();
            self.slab[i].value = value;
            i
        };
        self.map.insert(key, i);
        self.link_front(i);
    }
}

/// The sharded solution cache. Share by reference (`&SolutionCache` is
/// `Sync`); one instance per server.
pub struct SolutionCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolutionCache {
    /// Cache with `shards` independent locks of `capacity_per_shard`
    /// entries each. Both are clamped to at least 1.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        SolutionCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::new(capacity_per_shard.max(1))))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.hash64() % self.shards.len() as u64) as usize]
    }

    /// Probe the cache for the scenario's quantized key *without* solving
    /// on a miss. A hit counts toward the hit counter (it served an
    /// answer); a miss counts nothing — no solve was performed.
    ///
    /// The interpolation layer uses this as its first step: when the exact
    /// answer is already resident there is never a reason to interpolate.
    pub fn lookup(&self, scenario: &Scenario) -> Option<Prediction> {
        let key = CacheKey::of(scenario);
        let hit = self
            .shard_for(&key)
            .lock()
            .expect("cache shard poisoned")
            .get(&key);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Look up the scenario's quantized key; on a miss, solve through
    /// [`lopc_core::scenario::solve`] and populate the cache.
    ///
    /// The solve runs *outside* the shard lock so concurrent misses in one
    /// shard do not serialize on the fixed-point iteration; a lost race
    /// costs one redundant solve, never a wrong answer. Errors are not
    /// cached (the solve is cheap to fail and the error carries no reusable
    /// result).
    pub fn get_or_solve(&self, scenario: &Scenario) -> Result<Prediction, ModelError> {
        let key = CacheKey::of(scenario);
        let shard = self.shard_for(&key);
        if let Some(hit) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let solved = lopc_core::scenario::solve(scenario)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .lock()
            .expect("cache shard poisoned")
            .insert(key, solved);
        Ok(solved)
    }

    /// Batched [`SolutionCache::get_or_solve`]: look every lane up, dedupe
    /// the misses by quantized key, solve the unique representatives
    /// through the SoA batch kernel
    /// ([`lopc_core::scenario::solve_batch`]), insert the successes, and
    /// fan results back out to duplicate lanes.
    ///
    /// Counter semantics mirror the scalar lane-at-a-time sequence exactly:
    /// resident keys are hits, each unique solved key is one miss, and a
    /// duplicate lane of a solved key is a hit (in the scalar sequence it
    /// would have found the answer the first lane inserted). Errors are
    /// propagated per lane, never cached, and count neither way.
    pub fn solve_batch(&self, scenarios: &[Scenario]) -> Vec<Result<Prediction, ModelError>> {
        let n = scenarios.len();
        let keys: Vec<CacheKey> = scenarios.iter().map(CacheKey::of).collect();
        let mut out: Vec<Option<Result<Prediction, ModelError>>> = Vec::with_capacity(n);
        out.resize_with(n, || None);

        // Partition lanes: resident -> answered now; first lane of each
        // missing key -> representative; later duplicates -> fan-out.
        let mut rep_of: HashMap<&CacheKey, usize> = HashMap::new();
        let mut reps: Vec<usize> = Vec::new();
        let mut dup_of: Vec<usize> = vec![usize::MAX; n];
        for i in 0..n {
            if let Some(&rep) = rep_of.get(&keys[i]) {
                dup_of[i] = rep;
                continue;
            }
            let hit = self
                .shard_for(&keys[i])
                .lock()
                .expect("cache shard poisoned")
                .get(&keys[i]);
            match hit {
                Some(p) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(Ok(p));
                }
                None => {
                    rep_of.insert(&keys[i], i);
                    reps.push(i);
                }
            }
        }

        // One batched solve over the unique misses (outside every lock).
        if !reps.is_empty() {
            let lanes: Vec<Scenario> = reps.iter().map(|&i| scenarios[i].clone()).collect();
            for (&lane, result) in reps.iter().zip(lopc_core::scenario::solve_batch(&lanes)) {
                if let Ok(p) = &result {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    self.shard_for(&keys[lane])
                        .lock()
                        .expect("cache shard poisoned")
                        .insert(keys[lane].clone(), *p);
                }
                out[lane] = Some(result);
            }
        }

        // Fan representative answers out to their duplicate lanes.
        for i in 0..n {
            if out[i].is_some() {
                continue;
            }
            let r = out[dup_of[i]]
                .as_ref()
                .expect("representative lane resolved")
                .clone();
            if r.is_ok() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every lane resolved"))
            .collect()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= solves performed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction in `[0, 1]` (0 when nothing was looked up yet).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopc_core::Machine;

    fn machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    fn a2a(w: f64) -> Scenario {
        Scenario::AllToAll {
            machine: machine(),
            w,
        }
    }

    #[test]
    fn quantize_keeps_six_significant_digits() {
        assert_eq!(quantize(1000.0), 1000.0);
        assert_eq!(quantize(1000.0000001), 1000.0);
        assert_eq!(quantize(123.456789), 123.457);
        assert_eq!(quantize(0.0001234567), 0.000123457);
        assert_eq!(quantize(-1000.0000001), -1000.0);
        assert_eq!(quantize(0.0), 0.0);
        assert!(quantize(f64::NAN).is_nan());
        // Extreme magnitudes where the scale factor would overflow pass
        // through unquantized instead of collapsing into one NaN bucket.
        assert_eq!(quantize(1e-310), 1e-310);
        assert_eq!(quantize(5e-324), 5e-324);
        assert_ne!(
            quantize(1e-305).to_bits(),
            quantize(9e-310).to_bits(),
            "distinct subnormal-range values must keep distinct keys"
        );
    }

    #[test]
    fn hash_of_matches_materialised_key_for_every_variant() {
        // `hash_of` is the routing hash (cluster wire contract): it must
        // equal hashing the materialised key, variant by variant.
        let variants = [
            a2a(1000.0),
            Scenario::ClientServer {
                machine: machine(),
                w: 700.0,
                ps: Some(3),
            },
            Scenario::ClientServer {
                machine: machine(),
                w: 700.0,
                ps: None,
            },
            Scenario::ForkJoin {
                machine: machine(),
                w: 2000.0,
                k: 4,
            },
            Scenario::General(lopc_core::GeneralModel::client_server(machine(), 700.0, 3)),
            Scenario::General(
                lopc_core::GeneralModel::multi_hop(machine(), 300.0, 2).with_protocol_processor(),
            ),
            Scenario::SharedMemory {
                machine: machine(),
                w: 500.0,
            },
        ];
        for s in &variants {
            assert_eq!(
                CacheKey::hash_of(s),
                CacheKey::of(s).hash64(),
                "hash_of diverged for {}",
                s.kind()
            );
        }
    }

    #[test]
    fn exact_repeat_hits_and_is_bit_identical() {
        let cache = SolutionCache::new(4, 16);
        let first = cache.get_or_solve(&a2a(1000.0)).unwrap();
        let second = cache.get_or_solve(&a2a(1000.0)).unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(first.r.to_bits(), second.r.to_bits());
        assert_eq!(
            second.r,
            lopc_core::scenario::solve(&a2a(1000.0)).unwrap().r
        );
    }

    #[test]
    fn near_identical_query_hits_same_bucket() {
        let cache = SolutionCache::new(4, 16);
        let exact = cache.get_or_solve(&a2a(1000.0)).unwrap();
        let near = cache.get_or_solve(&a2a(1000.0000001)).unwrap();
        assert_eq!(cache.hits(), 1, "float-noise query must not re-solve");
        assert_eq!(near.r.to_bits(), exact.r.to_bits());
    }

    #[test]
    fn distinct_scenarios_do_not_collide() {
        let cache = SolutionCache::new(4, 64);
        let ws: Vec<f64> = (0..20).map(|i| 100.0 + 50.0 * i as f64).collect();
        for &w in &ws {
            let cached = cache.get_or_solve(&a2a(w)).unwrap();
            let direct = lopc_core::scenario::solve(&a2a(w)).unwrap();
            assert_eq!(cached.r.to_bits(), direct.r.to_bits(), "W={w}");
        }
        assert_eq!(cache.misses(), 20);
        assert_eq!(cache.hits(), 0);
        // Variant tag separates scenarios with identical parameters.
        let sm = Scenario::SharedMemory {
            machine: machine(),
            w: ws[0],
        };
        let p_sm = cache.get_or_solve(&sm).unwrap();
        assert_eq!(cache.misses(), 21);
        assert_ne!(
            p_sm.r,
            cache.get_or_solve(&a2a(ws[0])).unwrap().r,
            "shared-memory and message-passing answers differ"
        );
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let cache = SolutionCache::new(1, 3);
        for w in [100.0, 200.0, 300.0] {
            cache.get_or_solve(&a2a(w)).unwrap();
        }
        assert_eq!(cache.len(), 3);
        // Touch 100 so 200 becomes the LRU, then overflow.
        cache.get_or_solve(&a2a(100.0)).unwrap();
        cache.get_or_solve(&a2a(400.0)).unwrap();
        assert_eq!(cache.len(), 3);
        let misses_before = cache.misses();
        cache.get_or_solve(&a2a(100.0)).unwrap(); // still resident
        cache.get_or_solve(&a2a(300.0)).unwrap(); // still resident
        assert_eq!(cache.misses(), misses_before, "100 and 300 must be hits");
        cache.get_or_solve(&a2a(200.0)).unwrap(); // evicted -> re-solve
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn hit_rate_accounting() {
        let cache = SolutionCache::new(2, 8);
        assert_eq!(cache.hit_rate(), 0.0);
        cache.get_or_solve(&a2a(100.0)).unwrap();
        for _ in 0..3 {
            cache.get_or_solve(&a2a(100.0)).unwrap();
        }
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn concurrent_mixed_queries_stay_correct() {
        let cache = SolutionCache::new(8, 32);
        let ws: Vec<f64> = (0..16).map(|i| 200.0 + 100.0 * i as f64).collect();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                let ws = &ws;
                s.spawn(move || {
                    for rep in 0..3 {
                        for (i, &w) in ws.iter().enumerate() {
                            if (i + t + rep) % 2 == 0 {
                                let got = cache.get_or_solve(&a2a(w)).unwrap();
                                let want = lopc_core::scenario::solve(&a2a(w)).unwrap();
                                assert_eq!(got.r.to_bits(), want.r.to_bits());
                            }
                        }
                    }
                });
            }
        });
        assert!(cache.hits() > 0, "repeats must hit");
        assert!(cache.len() <= 16);
    }

    /// Walk every shard's intrusive list and assert structural sanity:
    /// head-to-tail and tail-to-head walks agree with the map, and every
    /// linked entry is indexed. Any lost/duplicated link under concurrency
    /// fails here.
    fn assert_lru_invariants(cache: &SolutionCache) {
        for (si, shard) in cache.shards.iter().enumerate() {
            let shard = shard.lock().unwrap();
            let mut forward = Vec::new();
            let mut i = shard.head;
            while i != NIL {
                forward.push(i);
                assert!(forward.len() <= shard.map.len(), "shard {si}: list cycle");
                i = shard.slab[i].next;
            }
            let mut backward = Vec::new();
            let mut i = shard.tail;
            while i != NIL {
                backward.push(i);
                assert!(backward.len() <= shard.map.len(), "shard {si}: list cycle");
                i = shard.slab[i].prev;
            }
            backward.reverse();
            assert_eq!(forward, backward, "shard {si}: asymmetric links");
            assert_eq!(
                forward.len(),
                shard.map.len(),
                "shard {si}: orphaned entries"
            );
            for &slot in &forward {
                assert_eq!(
                    shard.map.get(&shard.slab[slot].key),
                    Some(&slot),
                    "shard {si}: slot {slot} not indexed under its key"
                );
            }
        }
    }

    #[test]
    fn concurrent_hammering_preserves_lru_structure_and_order() {
        // Phase 1: hammer one small shard from many threads with a key set
        // 4x its capacity, forcing constant eviction under contention.
        let cache = SolutionCache::new(1, 8);
        let ws: Vec<f64> = (0..32).map(|i| 150.0 + 37.5 * i as f64).collect();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let cache = &cache;
                let ws = &ws;
                s.spawn(move || {
                    for rep in 0..20 {
                        for (i, &w) in ws.iter().enumerate() {
                            if (i * 7 + t * 3 + rep) % 3 != 0 {
                                continue;
                            }
                            let got = cache.get_or_solve(&a2a(w)).unwrap();
                            let want = lopc_core::scenario::solve(&a2a(w)).unwrap();
                            assert_eq!(got.r.to_bits(), want.r.to_bits(), "W={w}");
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 8, "capacity must hold under concurrency");
        assert_lru_invariants(&cache);

        // Phase 2: with the dust settled, eviction order is exactly LRU.
        // Fill the shard with a known sequence, reverse-touch it so recency
        // is the reverse of insertion, then overflow with fresh keys and
        // verify exactly the recency tail was evicted (lookup probes
        // without inserting, so the check itself is non-perturbing).
        let seq: Vec<f64> = (0..8).map(|i| 10_000.0 + 100.0 * i as f64).collect();
        for &w in &seq {
            cache.get_or_solve(&a2a(w)).unwrap();
        }
        for &w in seq.iter().rev() {
            cache.get_or_solve(&a2a(w)).unwrap();
        }
        // Recency MRU->LRU is now seq[0] .. seq[7]; three inserts must
        // evict seq[7], seq[6], seq[5] and nothing else.
        for k in 0..3 {
            cache
                .get_or_solve(&a2a(50_000.0 + 100.0 * k as f64))
                .unwrap();
        }
        for &gone in &seq[5..] {
            assert!(cache.lookup(&a2a(gone)).is_none(), "{gone} must be evicted");
        }
        for &kept in &seq[..5] {
            assert!(cache.lookup(&a2a(kept)).is_some(), "{kept} must survive");
        }
        assert_lru_invariants(&cache);
    }

    #[test]
    fn quantization_boundary_keys_do_not_alias() {
        // quantize() keeps 6 significant digits with round-half-away:
        // 1000.005 -> 1000.01 but 1000.0049 -> 1000.0. Keys just above and
        // below the bucket edge must stay distinct...
        assert_ne!(
            CacheKey::of(&a2a(1000.005)),
            CacheKey::of(&a2a(1000.0049)),
            "bucket-edge neighbours must not alias"
        );
        assert_eq!(quantize(1000.005), 1000.01);
        assert_eq!(quantize(1000.0049), 1000.0);
        // ...while float noise below the last kept digit aliases by design.
        assert_eq!(
            CacheKey::of(&a2a(1000.0049)),
            CacheKey::of(&a2a(1000.00494))
        );
        assert_eq!(CacheKey::of(&a2a(1000.0)), CacheKey::of(&a2a(1000.0000001)));

        // The same holds end to end through the cache: edge neighbours get
        // their own exact solves.
        let cache = SolutionCache::new(2, 16);
        cache.get_or_solve(&a2a(1000.005)).unwrap();
        cache.get_or_solve(&a2a(1000.0049)).unwrap();
        assert_eq!(cache.misses(), 2, "distinct buckets, two solves");
        assert_eq!(cache.hits(), 0);
        cache.get_or_solve(&a2a(1000.00494)).unwrap();
        assert_eq!(cache.hits(), 1, "same bucket, no third solve");

        // Negative mirror of the boundary behaves identically.
        assert_ne!(
            CacheKey::of(&a2a(-1000.005)).0,
            CacheKey::of(&a2a(-1000.0049)).0
        );
    }

    #[test]
    fn lookup_probes_without_solving() {
        let cache = SolutionCache::new(2, 8);
        assert!(cache.lookup(&a2a(123.0)).is_none());
        assert_eq!(cache.misses(), 0, "a lookup miss performs no solve");
        assert_eq!(cache.hits(), 0);
        let solved = cache.get_or_solve(&a2a(123.0)).unwrap();
        let hit = cache.lookup(&a2a(123.0)).unwrap();
        assert_eq!(hit.r.to_bits(), solved.r.to_bits());
        assert_eq!(cache.hits(), 1, "a lookup hit counts as a hit");
        // Lookup refreshes recency like any hit: with capacity 2, the
        // looked-up key survives the next two inserts' evictions.
        let cache = SolutionCache::new(1, 2);
        cache.get_or_solve(&a2a(1.0)).unwrap();
        cache.get_or_solve(&a2a(2.0)).unwrap();
        cache.lookup(&a2a(1.0)).unwrap();
        cache.get_or_solve(&a2a(3.0)).unwrap(); // evicts 2.0
        assert!(cache.lookup(&a2a(1.0)).is_some());
        assert!(cache.lookup(&a2a(2.0)).is_none());
    }

    #[test]
    fn errors_are_propagated_not_cached() {
        let cache = SolutionCache::new(1, 4);
        let bad = Scenario::AllToAll {
            machine: Machine::new(1, 0.0, 1.0),
            w: 1.0,
        };
        assert!(cache.get_or_solve(&bad).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 0, "failed solves are not misses");
    }

    #[test]
    fn solve_batch_matches_scalar_sequence_and_counters() {
        // The batched path must agree lane for lane — answers *and*
        // counters — with running get_or_solve over the lanes in order.
        let lanes = vec![
            a2a(100.0),
            a2a(500.0),
            a2a(100.0),       // duplicate of lane 0: fan-out hit
            a2a(100.0000001), // quantizes onto lane 0's key too
            a2a(900.0),
        ];
        let batched_cache = SolutionCache::new(4, 16);
        let batched = batched_cache.solve_batch(&lanes);
        let scalar_cache = SolutionCache::new(4, 16);
        for (b, s) in batched.iter().zip(&lanes) {
            let want = scalar_cache.get_or_solve(s).unwrap();
            assert_eq!(b.as_ref().unwrap().r.to_bits(), want.r.to_bits());
        }
        assert_eq!(batched_cache.misses(), scalar_cache.misses());
        assert_eq!(batched_cache.hits(), scalar_cache.hits());
        assert_eq!(batched_cache.misses(), 3, "three unique keys");
        assert_eq!(batched_cache.hits(), 2, "two duplicate lanes fan out");
        // A second identical batch is all hits.
        batched_cache.solve_batch(&lanes);
        assert_eq!(batched_cache.misses(), 3);
        assert_eq!(batched_cache.hits(), 7);
    }

    #[test]
    fn solve_batch_propagates_errors_without_caching_or_counting() {
        let cache = SolutionCache::new(2, 8);
        let bad = Scenario::AllToAll {
            machine: Machine::new(1, 0.0, 1.0),
            w: 1.0,
        };
        let out = cache.solve_batch(&[a2a(250.0), bad.clone(), bad.clone(), a2a(250.0)]);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert_eq!(out[1], out[2], "duplicate error lanes carry the same error");
        assert!(out[3].is_ok());
        assert_eq!(cache.len(), 1, "only the solvable key is resident");
        assert_eq!(cache.misses(), 1, "failed lanes are not misses");
        assert_eq!(cache.hits(), 1, "only the solvable duplicate fans out");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let cache = SolutionCache::new(1, 4);
        assert!(cache.solve_batch(&[]).is_empty());
        assert_eq!(cache.hits() + cache.misses(), 0);
    }
}
