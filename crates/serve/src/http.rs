//! A dependency-free HTTP/1.1 subset: enough protocol to serve and query
//! JSON endpoints, and nothing more.
//!
//! Implemented: request line + headers + `Content-Length` bodies,
//! keep-alive (the HTTP/1.1 default) and `Connection: close`, status lines,
//! and hard limits on header and body size so a misbehaving client cannot
//! balloon memory. Not implemented (requests using them are rejected, never
//! mis-parsed): chunked transfer encoding, continuation lines, trailers,
//! upgrades, HTTP/2.
//!
//! Parsers work over any `BufRead`, so the malformed-input fuzz tests drive
//! them with in-memory byte soup; none of the error paths panic.

use std::io::{self, BufRead, Write};

/// Largest accepted request line + header block, in bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Protocol violation; the message is safe to echo to the client.
    Bad(String),
    /// The underlying socket failed.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn bad<T>(msg: impl Into<String>) -> Result<T, HttpError> {
    Err(HttpError::Bad(msg.into()))
}

/// Classify a failed body `read_exact`: EOF means the peer closed inside
/// the promised body (a framing truncation — protocol-level), while any
/// other error (a read timeout, a reset) is a transport condition and must
/// keep its [`io::ErrorKind`] so callers can tell a stall from a close.
fn body_read_error(e: io::Error) -> HttpError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        HttpError::Bad("connection closed inside body".into())
    } else {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Method verb, upper-cased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string split off into [`Request::query`]).
    pub path: String,
    /// Raw query string after `?`, if any (`None` when absent; `Some("")`
    /// for a bare trailing `?`).
    pub query: Option<String>,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to keep the connection open? HTTP/1.1 defaults
    /// to yes unless `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Read one line terminated by `\n` (tolerating `\r\n`), bounded by
/// `remaining` header budget. Returns `None` on clean EOF before any byte.
fn read_line(r: &mut impl BufRead, remaining: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return bad("truncated header line");
            }
            Ok(_) => {}
            Err(e) => return Err(e.into()),
        }
        if *remaining == 0 {
            return bad(format!("headers exceed {MAX_HEADER_BYTES} bytes"));
        }
        *remaining -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::Bad("header line is not UTF-8".into()));
        }
        line.push(byte[0]);
    }
}

/// Parse `METHOD TARGET VERSION` and split the query string off the
/// target. Shared by the one-shot and incremental parsers so both reject
/// (and word) malformed request lines identically.
fn parse_request_line(request_line: &str) -> Result<(String, String, Option<String>), HttpError> {
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p, v),
        _ => return bad(format!("malformed request line {request_line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return bad(format!("unsupported protocol {version:?}"));
    }
    // Routing matches on the path alone: split any query string off so
    // `/metrics?format=prom` reaches the `/metrics` endpoint (which then
    // reads the format knob from the query).
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), Some(query.to_string())),
        None => (target.to_string(), None),
    };
    Ok((method, path, query))
}

/// Parse one `name: value` header line. Shared by both parsers.
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| HttpError::Bad(format!("malformed header {line:?}")))?;
    if name.is_empty() || name.contains(' ') {
        return bad(format!("malformed header name {name:?}"));
    }
    Ok((name.to_ascii_lowercase(), value.trim().to_string()))
}

/// Validate framing headers and return the declared body length. Shared by
/// both parsers; check order matters for identical error wording.
fn body_length(req: &Request) -> Result<usize, HttpError> {
    if req.header("transfer-encoding").is_some() {
        return bad("transfer-encoding is not supported");
    }
    // RFC 7230 §3.3.2: conflicting Content-Length values are a framing
    // attack (request smuggling); reject duplicates outright rather than
    // silently trusting the first.
    if req
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return bad("multiple content-length headers");
    }
    let len = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Bad(format!("bad content-length {v:?}")))?,
    };
    if len > MAX_BODY_BYTES {
        return bad(format!("body of {len} bytes exceeds {MAX_BODY_BYTES}"));
    }
    Ok(len)
}

/// Read one request, blocking until it is complete. `Ok(None)` means the
/// peer closed cleanly between requests (normal keep-alive teardown).
///
/// This is the *reference* parser: simplest possible control flow, one
/// blocking pass. The server's reactor uses the incremental
/// [`RequestParser`] instead; `tests/parser_props.rs` pins the two
/// byte-for-byte against each other across every corpus split.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = match read_line(r, &mut budget)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let (method, path, query) = parse_request_line(&request_line)?;

    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, &mut budget)? {
            None => return bad("connection closed inside headers"),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        headers.push(parse_header_line(&line)?);
    }

    let req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    let len = body_length(&req)?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(body_read_error)?;
    Ok(Some(Request { body, ..req }))
}

/// Incremental (resumable, non-blocking) request parser: the reactor's
/// per-connection read state machine.
///
/// Bytes arrive whenever the socket is readable ([`RequestParser::push`]);
/// [`RequestParser::poll`] advances the state machine as far as the
/// buffered bytes allow and yields a complete [`Request`] when one is
/// framed, `Ok(None)` when more bytes are needed, or the same
/// [`HttpError::Bad`] the one-shot [`read_request`] would produce on the
/// equivalent stream. Consecutive keep-alive requests flow through one
/// parser: leftover bytes after a complete request (a pipelined follow-up)
/// stay buffered and are consumed by the next `poll`.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Start of the not-yet-consumed region of `buf`.
    consumed: usize,
    /// Header-byte budget remaining for the in-progress request.
    budget: usize,
    state: ParseState,
}

#[derive(Debug)]
enum ParseState {
    RequestLine,
    Headers(Request),
    Body(Request, usize),
    /// A framing error was reported; the stream is unreliable from here.
    Failed,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// Fresh parser at a request boundary.
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            consumed: 0,
            budget: MAX_HEADER_BYTES,
            state: ParseState::RequestLine,
        }
    }

    /// Buffer freshly read socket bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a completed request — the
    /// reactor's flow-control input (stop reading when a hostile peer
    /// pumps data faster than responses drain).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Is the parser mid-request? (EOF now would truncate a request; at a
    /// boundary it is a clean keep-alive close.)
    pub fn mid_request(&self) -> bool {
        !matches!(self.state, ParseState::RequestLine) || self.buffered() > 0
    }

    /// Extract the next complete line (terminated by `\n`, tolerating
    /// `\r\n`), enforcing the same header-byte budget as the one-shot
    /// parser: a line that cannot complete within the remaining budget is
    /// an error *now* (the blocking parser would hit the same wall on the
    /// byte after the budget).
    fn take_line(&mut self) -> Result<Option<String>, HttpError> {
        let avail = &self.buf[self.consumed..];
        match avail.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let with_terminator = nl + 1;
                if with_terminator > self.budget {
                    return bad(format!("headers exceed {MAX_HEADER_BYTES} bytes"));
                }
                self.budget -= with_terminator;
                let mut line = &avail[..nl];
                if line.last() == Some(&b'\r') {
                    line = &line[..nl - 1];
                }
                let line = std::str::from_utf8(line)
                    .map_err(|_| HttpError::Bad("header line is not UTF-8".into()))?
                    .to_string();
                self.consumed += with_terminator;
                Ok(Some(line))
            }
            None if avail.len() >= self.budget => {
                // Even if a newline arrived next, consuming it would
                // overrun the budget — fail exactly like the one-shot
                // parser reading its (budget+1)-th header byte.
                bad(format!("headers exceed {MAX_HEADER_BYTES} bytes"))
            }
            None => Ok(None),
        }
    }

    /// Advance as far as the buffered bytes allow. `Ok(Some(_))` yields one
    /// complete request and resets to the next request boundary;
    /// `Ok(None)` means more bytes are needed. After an `Err` the
    /// connection must be torn down — HTTP framing is unreliable past a
    /// parse failure, so the parser latches into a failed state.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        match self.poll_inner() {
            Err(e) => {
                self.state = ParseState::Failed;
                Err(e)
            }
            ok => ok,
        }
    }

    fn poll_inner(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            match std::mem::replace(&mut self.state, ParseState::RequestLine) {
                ParseState::RequestLine => match self.take_line()? {
                    None => return Ok(None),
                    Some(line) => {
                        let (method, path, query) = parse_request_line(&line)?;
                        self.state = ParseState::Headers(Request {
                            method,
                            path,
                            query,
                            headers: Vec::new(),
                            body: Vec::new(),
                        });
                    }
                },
                ParseState::Headers(mut req) => match self.take_line()? {
                    None => {
                        self.state = ParseState::Headers(req);
                        return Ok(None);
                    }
                    Some(line) if line.is_empty() => {
                        let len = body_length(&req)?;
                        self.state = ParseState::Body(req, len);
                    }
                    Some(line) => {
                        req.headers.push(parse_header_line(&line)?);
                        self.state = ParseState::Headers(req);
                    }
                },
                ParseState::Body(mut req, len) => {
                    if self.buffered() < len {
                        self.state = ParseState::Body(req, len);
                        return Ok(None);
                    }
                    req.body = self.buf[self.consumed..self.consumed + len].to_vec();
                    self.consumed += len;
                    // Request boundary: compact the buffer (leftover bytes
                    // are a pipelined follow-up) and reset the budget.
                    self.buf.drain(..self.consumed);
                    self.consumed = 0;
                    self.budget = MAX_HEADER_BYTES;
                    return Ok(Some(req));
                }
                ParseState::Failed => {
                    self.state = ParseState::Failed;
                    return bad("request stream already failed");
                }
            }
        }
    }
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Unknown",
    }
}

/// Write one response with the given `content-type` (the JSON endpoints
/// send `application/json`; the Prometheus exposition is `text/plain`).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// One parsed response (client side).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// May the connection carry another request? `connection: close`
    /// clears it; HTTP/1.1 defaults to keep-alive. A pooled client must
    /// check this out before reusing the connection — replaying onto a
    /// half-closed socket is the stale keep-alive race.
    pub keep_alive: bool,
}

/// Read one response (client side).
pub fn read_response(r: &mut impl BufRead) -> Result<Response, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let status_line = match read_line(r, &mut budget)? {
        None => return bad("connection closed before status line"),
        Some(l) => l,
    };
    let mut parts = status_line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| HttpError::Bad(format!("bad status code in {status_line:?}")))?,
        _ => return bad(format!("malformed status line {status_line:?}")),
    };
    let mut content_length = None;
    let mut keep_alive = true;
    loop {
        let line = match read_line(r, &mut budget)? {
            None => return bad("connection closed inside headers"),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| HttpError::Bad(format!("bad content-length {value:?}")))?,
                );
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    let len =
        content_length.ok_or_else(|| HttpError::Bad("response without content-length".into()))?;
    if len > MAX_BODY_BYTES {
        return bad(format!(
            "response body of {len} bytes exceeds {MAX_BODY_BYTES}"
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(body_read_error)?;
    Ok(Response {
        status,
        body,
        keep_alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let req = parse(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive());
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let req = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn query_strings_are_split_from_the_path() {
        let req = parse(b"GET /metrics?pretty=1&x=2 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query.as_deref(), Some("pretty=1&x=2"));
        // A bare '?' leaves an empty query, same path.
        let req = parse(b"GET /v1/predict? HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.query.as_deref(), Some(""));
        // No '?': no query at all.
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.query, None);
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let smuggle = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 50\r\n\r\nhello";
        assert!(matches!(parse(smuggle), Err(HttpError::Bad(_))));
        // Even duplicates that agree are refused: framing must be
        // unambiguous.
        let dup = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        assert!(matches!(parse(dup), Err(HttpError::Bad(_))));
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_error_without_panic() {
        for bytes in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\ntrunc",
            b"\xff\xfe GET / HTTP/1.1\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bytes), Err(HttpError::Bad(_))),
                "{:?} must be rejected",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn oversized_bodies_and_headers_rejected() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse(huge.as_bytes()).is_err());
        let mut long_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            long_headers.push_str(&format!("x-filler-{i}: {}\r\n", "y".repeat(32)));
        }
        long_headers.push_str("\r\n");
        assert!(parse(long_headers.as_bytes()).is_err());
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/json", "{\"ok\":true}", true).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"ok\":true}");
        assert!(
            resp.keep_alive,
            "keep-alive response must check out reusable"
        );
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
    }

    #[test]
    fn response_connection_close_checks_out_not_reusable() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/json", "{}", false).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert!(!resp.keep_alive, "connection: close must fail the checkout");
        // Case-insensitive, whitespace-tolerant; absence defaults to reuse.
        let close = b"HTTP/1.1 200 OK\r\nConnection:  CLOSE \r\ncontent-length: 0\r\n\r\n";
        assert!(
            !read_response(&mut BufReader::new(&close[..]))
                .unwrap()
                .keep_alive
        );
        let bare = b"HTTP/1.1 200 OK\r\ncontent-length: 0\r\n\r\n";
        assert!(
            read_response(&mut BufReader::new(&bare[..]))
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn malformed_responses_error_without_panic() {
        for bytes in [
            &b""[..],
            b"HTTP/1.1\r\n\r\n",
            b"NOTHTTP 200 OK\r\n\r\n",
            b"HTTP/1.1 xyz OK\r\n\r\n",
            b"HTTP/1.1 200 OK\r\n\r\n", // no content-length
            b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\nab",
        ] {
            assert!(
                read_response(&mut BufReader::new(bytes)).is_err(),
                "{:?} must be rejected",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn reasons_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 422, 500, 501] {
            assert_ne!(reason(code), "Unknown");
        }
        assert_eq!(reason(599), "Unknown");
    }
}
