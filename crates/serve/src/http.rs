//! A dependency-free HTTP/1.1 subset: enough protocol to serve and query
//! JSON endpoints, and nothing more.
//!
//! Implemented: request line + headers + `Content-Length` bodies,
//! keep-alive (the HTTP/1.1 default) and `Connection: close`, status lines,
//! and hard limits on header and body size so a misbehaving client cannot
//! balloon memory. Not implemented (requests using them are rejected, never
//! mis-parsed): chunked transfer encoding, continuation lines, trailers,
//! upgrades, HTTP/2.
//!
//! Parsers work over any `BufRead`, so the malformed-input fuzz tests drive
//! them with in-memory byte soup; none of the error paths panic.

use std::io::{self, BufRead, Write};

/// Largest accepted request line + header block, in bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Protocol violation; the message is safe to echo to the client.
    Bad(String),
    /// The underlying socket failed.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Bad(m) => write!(f, "bad request: {m}"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn bad<T>(msg: impl Into<String>) -> Result<T, HttpError> {
    Err(HttpError::Bad(msg.into()))
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb, upper-cased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string split off into [`Request::query`]).
    pub path: String,
    /// Raw query string after `?`, if any (`None` when absent; `Some("")`
    /// for a bare trailing `?`).
    pub query: Option<String>,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to keep the connection open? HTTP/1.1 defaults
    /// to yes unless `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Read one line terminated by `\n` (tolerating `\r\n`), bounded by
/// `remaining` header budget. Returns `None` on clean EOF before any byte.
fn read_line(r: &mut impl BufRead, remaining: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return bad("truncated header line");
            }
            Ok(_) => {}
            Err(e) => return Err(e.into()),
        }
        if *remaining == 0 {
            return bad(format!("headers exceed {MAX_HEADER_BYTES} bytes"));
        }
        *remaining -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::Bad("header line is not UTF-8".into()));
        }
        line.push(byte[0]);
    }
}

/// Read one request. `Ok(None)` means the peer closed cleanly between
/// requests (normal keep-alive teardown).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = match read_line(r, &mut budget)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p, v),
        _ => return bad(format!("malformed request line {request_line:?}")),
    };
    if !version.starts_with("HTTP/1.") {
        return bad(format!("unsupported protocol {version:?}"));
    }
    // Routing matches on the path alone: split any query string off so
    // `/metrics?format=prom` reaches the `/metrics` endpoint (which then
    // reads the format knob from the query).
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), Some(query.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    loop {
        let line = match read_line(r, &mut budget)? {
            None => return bad("connection closed inside headers"),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Bad(format!("malformed header {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return bad(format!("malformed header name {name:?}"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return bad("transfer-encoding is not supported");
    }
    // RFC 7230 §3.3.2: conflicting Content-Length values are a framing
    // attack (request smuggling); reject duplicates outright rather than
    // silently trusting the first.
    if req
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return bad("multiple content-length headers");
    }
    let len = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Bad(format!("bad content-length {v:?}")))?,
    };
    if len > MAX_BODY_BYTES {
        return bad(format!("body of {len} bytes exceeds {MAX_BODY_BYTES}"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|_| HttpError::Bad("connection closed inside body".into()))?;
    Ok(Some(Request { body, ..req }))
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Unknown",
    }
}

/// Write one response with the given `content-type` (the JSON endpoints
/// send `application/json`; the Prometheus exposition is `text/plain`).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// One parsed response (client side).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
}

/// Read one response (client side).
pub fn read_response(r: &mut impl BufRead) -> Result<Response, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let status_line = match read_line(r, &mut budget)? {
        None => return bad("connection closed before status line"),
        Some(l) => l,
    };
    let mut parts = status_line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| HttpError::Bad(format!("bad status code in {status_line:?}")))?,
        _ => return bad(format!("malformed status line {status_line:?}")),
    };
    let mut content_length = None;
    loop {
        let line = match read_line(r, &mut budget)? {
            None => return bad("connection closed inside headers"),
            Some(l) => l,
        };
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| HttpError::Bad(format!("bad content-length {value:?}")))?,
                );
            }
        }
    }
    let len =
        content_length.ok_or_else(|| HttpError::Bad("response without content-length".into()))?;
    if len > MAX_BODY_BYTES {
        return bad(format!(
            "response body of {len} bytes exceeds {MAX_BODY_BYTES}"
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|_| HttpError::Bad("connection closed inside body".into()))?;
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let req = parse(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive());
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let req = parse(b"GET / HTTP/1.1\nHost: x\n\n").unwrap().unwrap();
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn query_strings_are_split_from_the_path() {
        let req = parse(b"GET /metrics?pretty=1&x=2 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query.as_deref(), Some("pretty=1&x=2"));
        // A bare '?' leaves an empty query, same path.
        let req = parse(b"GET /v1/predict? HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.query.as_deref(), Some(""));
        // No '?': no query at all.
        let req = parse(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.query, None);
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let smuggle = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 50\r\n\r\nhello";
        assert!(matches!(parse(smuggle), Err(HttpError::Bad(_))));
        // Even duplicates that agree are refused: framing must be
        // unambiguous.
        let dup = b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        assert!(matches!(parse(dup), Err(HttpError::Bad(_))));
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_requests_error_without_panic() {
        for bytes in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\ntrunc",
            b"\xff\xfe GET / HTTP/1.1\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bytes), Err(HttpError::Bad(_))),
                "{:?} must be rejected",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn oversized_bodies_and_headers_rejected() {
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse(huge.as_bytes()).is_err());
        let mut long_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            long_headers.push_str(&format!("x-filler-{i}: {}\r\n", "y".repeat(32)));
        }
        long_headers.push_str("\r\n");
        assert!(parse(long_headers.as_bytes()).is_err());
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/json", "{\"ok\":true}", true).unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"ok\":true}");
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
    }

    #[test]
    fn malformed_responses_error_without_panic() {
        for bytes in [
            &b""[..],
            b"HTTP/1.1\r\n\r\n",
            b"NOTHTTP 200 OK\r\n\r\n",
            b"HTTP/1.1 xyz OK\r\n\r\n",
            b"HTTP/1.1 200 OK\r\n\r\n", // no content-length
            b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\nab",
        ] {
            assert!(
                read_response(&mut BufReader::new(bytes)).is_err(),
                "{:?} must be rejected",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn reasons_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 422, 500, 501] {
            assert_ne!(reason(code), "Unknown");
        }
        assert_eq!(reason(599), "Unknown");
    }
}
