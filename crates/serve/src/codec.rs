//! Wire codec: [`Scenario`] and [`Prediction`] to and from [`Json`].
//!
//! The schema mirrors `lopc_core::scenario` field for field:
//!
//! ```json
//! {"kind": "all_to_all",    "machine": {"p": 32, "st": 25.0, "so": 200.0, "c2": 0.0}, "w": 1000.0}
//! {"kind": "client_server", "machine": {...}, "w": 1000.0, "ps": 5}
//! {"kind": "fork_join",     "machine": {...}, "w": 2000.0, "k": 4}
//! {"kind": "shared_memory", "machine": {...}, "w": 800.0}
//! {"kind": "general",       "machine": {...}, "w": [800.0, null, ...],
//!                           "v": [[0.0, ...], ...], "protocol_processor": false}
//! ```
//!
//! `ps` is optional (omitted = solve at the eq. 6.8 optimum); in the
//! `general` variant `null` entries of `w` mark idle server threads.
//! Predictions encode every [`Prediction`] field, with `NaN` components as
//! `null`:
//!
//! ```json
//! {"r": 1523.4, "x": 0.021, "rw": 1015.2, "rq": 255.1, "ry": 203.1,
//!  "contention": 73.4, "ps": null, "iterations": 38}
//! ```
//!
//! Numbers use shortest-round-trip formatting, so decode(encode(x)) is
//! bit-identical — served predictions equal direct library calls exactly.

use crate::interp::CellExport;
use crate::json::Json;
use lopc_core::scenario::{AxisBracket, INTERP_AXES};
use lopc_core::{GeneralModel, Machine, Prediction, Scenario};

/// Why a document could not be decoded into a scenario or prediction.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError(msg.into()))
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, DecodeError> {
    v.get(key)
        .ok_or_else(|| DecodeError(format!("missing field {key:?}")))
}

fn num(v: &Json, key: &str) -> Result<f64, DecodeError> {
    field(v, key)?
        .as_num()
        .ok_or_else(|| DecodeError(format!("field {key:?} must be a number")))
}

fn uint(v: &Json, key: &str) -> Result<u64, DecodeError> {
    let x = num(v, key)?;
    if x < 0.0 || x.fract() != 0.0 || x > 9e15 {
        return err(format!("field {key:?} must be a non-negative integer"));
    }
    Ok(x as u64)
}

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

/// Encode a [`Machine`] as `{"p", "st", "so", "c2"}`.
pub fn machine_to_json(m: &Machine) -> Json {
    Json::Object(vec![
        ("p".into(), Json::Num(m.p as f64)),
        ("st".into(), Json::Num(m.s_l)),
        ("so".into(), Json::Num(m.s_o)),
        ("c2".into(), Json::Num(m.c2)),
    ])
}

/// Decode a [`Machine`].
pub fn machine_from_json(v: &Json) -> Result<Machine, DecodeError> {
    Ok(Machine {
        p: uint(v, "p")? as usize,
        s_l: num(v, "st")?,
        s_o: num(v, "so")?,
        c2: num(v, "c2")?,
    })
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

/// Encode a [`Scenario`] into its wire object.
pub fn scenario_to_json(s: &Scenario) -> Json {
    let mut kv: Vec<(String, Json)> = vec![("kind".into(), Json::Str(s.kind().into()))];
    match s {
        Scenario::AllToAll { machine, w } | Scenario::SharedMemory { machine, w } => {
            kv.push(("machine".into(), machine_to_json(machine)));
            kv.push(("w".into(), Json::Num(*w)));
        }
        Scenario::ClientServer { machine, w, ps } => {
            kv.push(("machine".into(), machine_to_json(machine)));
            kv.push(("w".into(), Json::Num(*w)));
            if let Some(ps) = ps {
                kv.push(("ps".into(), Json::Num(*ps as f64)));
            }
        }
        Scenario::ForkJoin { machine, w, k } => {
            kv.push(("machine".into(), machine_to_json(machine)));
            kv.push(("w".into(), Json::Num(*w)));
            kv.push(("k".into(), Json::Num(*k as f64)));
        }
        Scenario::General(model) => {
            kv.push(("machine".into(), machine_to_json(&model.machine)));
            kv.push((
                "w".into(),
                Json::Array(
                    model
                        .w
                        .iter()
                        .map(|w| w.map_or(Json::Null, Json::Num))
                        .collect(),
                ),
            ));
            kv.push((
                "v".into(),
                Json::Array(
                    model
                        .v
                        .iter()
                        .map(|row| Json::Array(row.iter().map(|&x| Json::Num(x)).collect()))
                        .collect(),
                ),
            ));
            kv.push((
                "protocol_processor".into(),
                Json::Bool(model.protocol_processor),
            ));
        }
    }
    Json::Object(kv)
}

/// Decode a wire object into a [`Scenario`].
pub fn scenario_from_json(v: &Json) -> Result<Scenario, DecodeError> {
    let kind = field(v, "kind")?
        .as_str()
        .ok_or_else(|| DecodeError("field \"kind\" must be a string".into()))?;
    let machine = machine_from_json(field(v, "machine")?)?;
    match kind {
        "all_to_all" => Ok(Scenario::AllToAll {
            machine,
            w: num(v, "w")?,
        }),
        "shared_memory" => Ok(Scenario::SharedMemory {
            machine,
            w: num(v, "w")?,
        }),
        "client_server" => {
            let ps = match v.get("ps") {
                None | Some(Json::Null) => None,
                Some(_) => Some(uint(v, "ps")? as usize),
            };
            Ok(Scenario::ClientServer {
                machine,
                w: num(v, "w")?,
                ps,
            })
        }
        "fork_join" => {
            let k = uint(v, "k")?;
            if k > u32::MAX as u64 {
                return err("field \"k\" out of range");
            }
            Ok(Scenario::ForkJoin {
                machine,
                w: num(v, "w")?,
                k: k as u32,
            })
        }
        "general" => {
            let w = field(v, "w")?
                .as_array()
                .ok_or_else(|| DecodeError("field \"w\" must be an array".into()))?
                .iter()
                .map(|x| match x {
                    Json::Null => Ok(None),
                    Json::Num(w) => Ok(Some(*w)),
                    _ => err("\"w\" entries must be numbers or null"),
                })
                .collect::<Result<Vec<_>, _>>()?;
            let rows = field(v, "v")?
                .as_array()
                .ok_or_else(|| DecodeError("field \"v\" must be an array".into()))?;
            let mut vmat = Vec::with_capacity(rows.len());
            for row in rows {
                let row = row
                    .as_array()
                    .ok_or_else(|| DecodeError("\"v\" rows must be arrays".into()))?
                    .iter()
                    .map(|x| {
                        x.as_num()
                            .ok_or_else(|| DecodeError("\"v\" entries must be numbers".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                vmat.push(row);
            }
            let protocol_processor = match v.get("protocol_processor") {
                None => false,
                Some(x) => x.as_bool().ok_or_else(|| {
                    DecodeError("\"protocol_processor\" must be a boolean".into())
                })?,
            };
            Ok(Scenario::General(GeneralModel {
                machine,
                w,
                v: vmat,
                protocol_processor,
            }))
        }
        other => err(format!("unknown scenario kind {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Request options
// ---------------------------------------------------------------------------

/// Name of the optional tolerance field accepted by `POST /v1/predict`
/// (alongside the scenario fields) and by `POST /v1/predict/batch`
/// (top-level, next to `"scenarios"`).
pub const MAX_REL_ERR_FIELD: &str = "max_rel_err";

/// Decode the optional `max_rel_err` tolerance from a request document.
///
/// Absent or `null` means exact mode (`0.0`). A present value must be a
/// finite number in `[0, 1]` — a *relative* error bound above 100 % is
/// certainly a client bug, and rejecting it early (400) beats serving
/// nonsense.
pub fn max_rel_err_from_json(v: &Json) -> Result<f64, DecodeError> {
    match v.get(MAX_REL_ERR_FIELD) {
        None | Some(Json::Null) => Ok(0.0),
        Some(Json::Num(x)) if x.is_finite() && (0.0..=1.0).contains(x) => Ok(*x),
        Some(_) => err(format!(
            "field {MAX_REL_ERR_FIELD:?} must be a number in [0, 1]"
        )),
    }
}

// ---------------------------------------------------------------------------
// Prediction
// ---------------------------------------------------------------------------

/// Every key of the prediction wire object, in order — the schema-drift
/// check in the smoke suite asserts responses carry exactly these.
pub const PREDICTION_FIELDS: [&str; 8] =
    ["r", "x", "rw", "rq", "ry", "contention", "ps", "iterations"];

/// Encode a [`Prediction`] (`NaN` components become `null`).
pub fn prediction_to_json(p: &Prediction) -> Json {
    Json::Object(vec![
        ("r".into(), Json::Num(p.r)),
        ("x".into(), Json::Num(p.x)),
        ("rw".into(), Json::Num(p.rw)),
        ("rq".into(), Json::Num(p.rq)),
        ("ry".into(), Json::Num(p.ry)),
        ("contention".into(), Json::Num(p.contention)),
        (
            "ps".into(),
            p.ps.map_or(Json::Null, |ps| Json::Num(ps as f64)),
        ),
        ("iterations".into(), Json::Num(p.iterations as f64)),
    ])
}

fn num_or_nan(v: &Json, key: &str) -> Result<f64, DecodeError> {
    match field(v, key)? {
        Json::Null => Ok(f64::NAN),
        Json::Num(x) => Ok(*x),
        _ => err(format!("field {key:?} must be a number or null")),
    }
}

/// Decode a [`Prediction`] (`null` components become `NaN`).
pub fn prediction_from_json(v: &Json) -> Result<Prediction, DecodeError> {
    Ok(Prediction {
        r: num_or_nan(v, "r")?,
        x: num_or_nan(v, "x")?,
        rw: num_or_nan(v, "rw")?,
        rq: num_or_nan(v, "rq")?,
        ry: num_or_nan(v, "ry")?,
        contention: num_or_nan(v, "contention")?,
        ps: match field(v, "ps")? {
            Json::Null => None,
            _ => Some(uint(v, "ps")? as usize),
        },
        iterations: uint(v, "iterations")? as usize,
    })
}

// ---------------------------------------------------------------------------
// Cell transfer (cluster tier)
// ---------------------------------------------------------------------------

/// Encode a [`CellExport`] as the `/v1/cell/{key}` wire document:
///
/// ```json
/// {"key": "0-20-4088...-...", "template": {scenario}, "cert": 1e-4,
///  "brackets": [{"lo": 750.0, "hi": 800.0}, ...],
///  "corners": [{prediction}, ...]}
/// ```
///
/// Numbers round-trip `f64` bit-exactly (shortest-round-trip formatting),
/// which the import re-verification relies on: the receiver recomputes the
/// centre residual from *these* corner bits.
pub fn cell_to_json(export: &CellExport) -> Json {
    Json::Object(vec![
        ("key".into(), Json::Str(export.wire_key.clone())),
        ("template".into(), scenario_to_json(&export.template)),
        ("cert".into(), Json::Num(export.cert)),
        (
            "brackets".into(),
            Json::Array(
                export
                    .brackets
                    .iter()
                    .map(|b| {
                        Json::Object(vec![
                            ("lo".into(), Json::Num(b.lo)),
                            ("hi".into(), Json::Num(b.hi)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "corners".into(),
            Json::Array(export.corners.iter().map(prediction_to_json).collect()),
        ),
    ])
}

/// Decode a `/v1/cell/{key}` document into a [`CellExport`].
///
/// This is *shape* validation only — key/grid/certificate trust is decided
/// by [`InterpCache::import_cell`](crate::interp::InterpCache::import_cell)
/// with a locally solved spot-probe.
pub fn cell_from_json(v: &Json) -> Result<CellExport, DecodeError> {
    let wire_key = field(v, "key")?
        .as_str()
        .ok_or_else(|| DecodeError("field \"key\" must be a string".into()))?
        .to_string();
    let template = scenario_from_json(field(v, "template")?)?;
    let cert = num(v, "cert")?;
    let bracket_items = field(v, "brackets")?
        .as_array()
        .ok_or_else(|| DecodeError("field \"brackets\" must be an array".into()))?;
    if bracket_items.len() != INTERP_AXES {
        return err(format!("\"brackets\" must have {INTERP_AXES} entries"));
    }
    let mut brackets = [AxisBracket { lo: 0.0, hi: 0.0 }; INTERP_AXES];
    for (i, item) in bracket_items.iter().enumerate() {
        brackets[i] = AxisBracket {
            lo: num(item, "lo")?,
            hi: num(item, "hi")?,
        };
    }
    let corners = field(v, "corners")?
        .as_array()
        .ok_or_else(|| DecodeError("field \"corners\" must be an array".into()))?
        .iter()
        .map(prediction_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    // Corner count is bounded by the cell dimensionality; anything bigger
    // is garbage not worth buffering further.
    if corners.len() > 1 << INTERP_AXES {
        return err("too many corners");
    }
    Ok(CellExport {
        wire_key,
        template,
        brackets,
        corners,
        cert,
    })
}

/// `NaN`-aware prediction equality: components are equal when both are `NaN`
/// or bit-for-bit equal. This is the relation the serve-vs-library
/// integration test asserts.
pub fn predictions_identical(a: &Prediction, b: &Prediction) -> bool {
    fn eq(x: f64, y: f64) -> bool {
        x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
    }
    eq(a.r, b.r)
        && eq(a.x, b.x)
        && eq(a.rw, b.rw)
        && eq(a.rq, b.rq)
        && eq(a.ry, b.ry)
        && eq(a.contention, b.contention)
        && a.ps == b.ps
        && a.iterations == b.iterations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn machine() -> Machine {
        Machine::new(32, 25.0, 200.0).with_c2(0.0)
    }

    fn sample_scenarios() -> Vec<Scenario> {
        vec![
            Scenario::AllToAll {
                machine: machine(),
                w: 1000.0,
            },
            Scenario::ClientServer {
                machine: machine(),
                w: 512.5,
                ps: Some(5),
            },
            Scenario::ClientServer {
                machine: machine(),
                w: 512.5,
                ps: None,
            },
            Scenario::ForkJoin {
                machine: machine(),
                w: 2000.0,
                k: 4,
            },
            Scenario::SharedMemory {
                machine: machine(),
                w: 800.0,
            },
            Scenario::General(GeneralModel::client_server(machine(), 700.0, 3)),
            Scenario::General(
                GeneralModel::multi_hop(machine(), 300.0, 2).with_protocol_processor(),
            ),
        ]
    }

    #[test]
    fn scenario_round_trip() {
        for s in sample_scenarios() {
            let doc = scenario_to_json(&s).to_compact();
            let back = scenario_from_json(&parse(&doc).unwrap()).unwrap();
            assert_eq!(back, s, "{doc}");
        }
    }

    #[test]
    fn prediction_round_trip_is_bit_identical() {
        for s in sample_scenarios() {
            let p = lopc_core::scenario::solve(&s).unwrap();
            let doc = prediction_to_json(&p).to_compact();
            let back = prediction_from_json(&parse(&doc).unwrap()).unwrap();
            assert!(predictions_identical(&p, &back), "{doc}");
        }
    }

    #[test]
    fn nan_components_encode_as_null() {
        let s = Scenario::General(GeneralModel::client_server(machine(), 700.0, 3));
        let doc = prediction_to_json(&lopc_core::scenario::solve(&s).unwrap()).to_compact();
        assert!(doc.contains("\"rw\":null"), "{doc}");
    }

    #[test]
    fn decode_rejects_malformed_scenarios() {
        for doc in [
            r#"{}"#,
            r#"{"kind": "nope", "machine": {"p":4,"st":1,"so":1,"c2":1}, "w": 1}"#,
            r#"{"kind": "all_to_all", "w": 1}"#,
            r#"{"kind": "all_to_all", "machine": {"p":4,"st":1,"so":1,"c2":1}}"#,
            r#"{"kind": "all_to_all", "machine": {"p":4.5,"st":1,"so":1,"c2":1}, "w": 1}"#,
            r#"{"kind": "all_to_all", "machine": {"p":-4,"st":1,"so":1,"c2":1}, "w": 1}"#,
            r#"{"kind": "fork_join", "machine": {"p":4,"st":1,"so":1,"c2":1}, "w": 1}"#,
            r#"{"kind": "client_server", "machine": {"p":4,"st":1,"so":1,"c2":1}, "w": 1, "ps": "x"}"#,
            r#"{"kind": "general", "machine": {"p":2,"st":1,"so":1,"c2":1}, "w": 1, "v": []}"#,
            r#"{"kind": "general", "machine": {"p":2,"st":1,"so":1,"c2":1}, "w": [1, "x"], "v": []}"#,
            r#"[1, 2]"#,
        ] {
            let v = parse(doc).unwrap();
            assert!(scenario_from_json(&v).is_err(), "{doc}");
        }
    }

    #[test]
    fn max_rel_err_decoding() {
        let doc = |s: &str| parse(s).unwrap();
        assert_eq!(max_rel_err_from_json(&doc("{}")), Ok(0.0));
        assert_eq!(
            max_rel_err_from_json(&doc(r#"{"max_rel_err":null}"#)),
            Ok(0.0)
        );
        assert_eq!(max_rel_err_from_json(&doc(r#"{"max_rel_err":0}"#)), Ok(0.0));
        assert_eq!(
            max_rel_err_from_json(&doc(r#"{"max_rel_err":0.001}"#)),
            Ok(0.001)
        );
        assert_eq!(max_rel_err_from_json(&doc(r#"{"max_rel_err":1}"#)), Ok(1.0));
        for bad in [
            r#"{"max_rel_err":-0.1}"#,
            r#"{"max_rel_err":1.5}"#,
            r#"{"max_rel_err":"x"}"#,
            r#"{"max_rel_err":true}"#,
        ] {
            assert!(max_rel_err_from_json(&doc(bad)).is_err(), "{bad}");
        }
    }

    #[test]
    fn ps_null_and_absent_both_mean_optimal() {
        let with_null = parse(
            r#"{"kind":"client_server","machine":{"p":8,"st":1,"so":1,"c2":1},"w":1,"ps":null}"#,
        )
        .unwrap();
        let s = scenario_from_json(&with_null).unwrap();
        assert_eq!(
            s,
            Scenario::ClientServer {
                machine: Machine::new(8, 1.0, 1.0),
                w: 1.0,
                ps: None
            }
        );
    }
}
