//! The workspace's shared hand-rolled JSON: value type, emitter, and a
//! recursive-descent parser.
//!
//! The build container has no serde, so JSON support is written out by hand.
//! It started life inside `lopc_bench::baseline` (the `BENCH_sim.json`
//! persistence layer) and moved here when the serving layer needed the same
//! machinery for its wire format; `lopc_bench::baseline` now re-uses this
//! module, so there is exactly one JSON implementation in the tree.
//!
//! Subset implemented: objects, arrays, strings, finite numbers, booleans,
//! `null`. Numbers are emitted with Rust's shortest-round-trip formatting,
//! so `parse(render(x)) == x` bit-for-bit for every finite `f64` — the
//! property that lets the service return *identical* numbers to a direct
//! library call (and that the proptest round-trip suite pins). Non-finite
//! numbers cannot be represented; the emitter writes `null` for them and
//! the scenario codec treats `null` as `NaN` where a component is
//! undefined.
//!
//! The parser never panics on malformed input — every error path returns
//! `Err` (the fuzz tests feed it mutated and truncated documents).

use std::fmt::Write as _;

/// JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Number (non-finite values render as `null`).
    Num(f64),
    /// String (only `"` and `\` and control characters are escaped).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Render as a pretty-printed document (two-space indentation).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out
    }

    /// Render compactly (no newlines) — the wire format of the service.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    /// Append the pretty form to `out` at the given indentation level.
    pub fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => render_num(out, *x),
            Json::Str(s) => render_str(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.render(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Object(kv) => {
                if kv.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in kv.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    render_str(out, k);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    out.push_str(if i + 1 < kv.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => render_num(out, *x),
            Json::Str(s) => render_str(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Object(kv) => {
                out.push('{');
                for (i, (k, v)) in kv.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(out, k);
                    out.push(':');
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; the codec layer maps null back to NaN.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x:?}");
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // RFC 8259: all other control characters must be \u-escaped or
            // the document is invalid JSON.
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (the subset emitted by this module).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Nesting bound: malformed input cannot recurse the parser off the stack.
const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(kv));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos, depth + 1)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos, depth + 1)?;
                kv.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(kv));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'/') => s.push('/'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                                // BMP scalars only — the emitter never
                                // writes surrogate pairs.
                                s.push(
                                    char::from_u32(code)
                                        .ok_or(format!("invalid \\u code point {code:#x}"))?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 passes through byte by byte; the
                        // input came from a &str so it is valid UTF-8.
                        let start = *pos;
                        let mut end = *pos + 1;
                        if c >= 0x80 {
                            while end < b.len() && b[end] & 0xC0 == 0x80 {
                                end += 1;
                            }
                        }
                        s.push_str(std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?);
                        *pos = end;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            if s.is_empty() {
                return Err(format!("unexpected byte at {start}"));
            }
            let x = s
                .parse::<f64>()
                .map_err(|e| format!("bad number {s:?}: {e}"))?;
            if !x.is_finite() {
                return Err(format!("non-finite number {s:?}"));
            }
            Ok(Json::Num(x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let v = Json::Object(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x \"y\" \\z \t \r \n \u{1} é".into())),
            (
                "c".into(),
                Json::Array(vec![Json::Bool(true), Json::Null, Json::Num(-3.0)]),
            ),
            ("d".into(), Json::Object(vec![])),
            ("e".into(), Json::Array(vec![])),
        ]);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("+").is_err());
        assert!(parse("1e999").is_err(), "overflow to inf must be rejected");
    }

    #[test]
    fn deep_nesting_is_bounded_not_fatal() {
        let doc = "[".repeat(100_000);
        assert!(parse(&doc).is_err());
    }

    #[test]
    fn numbers_round_trip_precisely() {
        for x in [0.0, 1.0, -1.0, 123456789.0, 1.25e-9, 6.02e23, 0.1 + 0.2] {
            let mut s = String::new();
            Json::Num(x).render(&mut s, 0);
            assert_eq!(parse(&s).unwrap().as_num().unwrap(), x, "{s}");
        }
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"s": "x", "b": true, "a": [1, 2], "n": null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("n").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_num(), None);
    }
}
