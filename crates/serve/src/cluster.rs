//! The cluster tier: consistent-hash sharding of the solution/
//! interpolation cache across N `lopc-serve` nodes (DESIGN.md §15).
//!
//! One node is both the throughput ceiling and a single point of failure.
//! This module removes both without weakening the exactness contract:
//!
//! * **Ring** — every node (and every routing client) builds the same
//!   [`HashRing`] over the member addresses: [`VNODES`] virtual points per
//!   node, placed by [`ring_hash`] over `"{addr}#{replica}"`. A request
//!   routes by the FNV-1a hash of its *quantized* cache key
//!   ([`CacheKey::hash64`](crate::cache::CacheKey::hash64)), so the same
//!   scenario lands on the same node from any client — cache locality
//!   without coordination.
//! * **Ownership is locality, not authority.** Every node can solve every
//!   scenario exactly; the ring only decides where cache and cell state
//!   *accumulates*. Killing a node therefore degrades capacity, never
//!   correctness: requests rehash to the survivors, which simply solve
//!   colder.
//! * **Cell shipping** — a node that owns a request but lacks the
//!   interpolation cell asks the peers for it (`GET /v1/cell/{key}`), and
//!   sweep-prefetched cells are pushed ahead (`POST /v1/cell/{key}`).
//!   Every shipped cell is re-verified against a locally solved spot-probe
//!   before admission ([`import_cell`](crate::interp::InterpCache::import_cell))
//!   — the sender is never trusted.
//! * **Peer health** — failure detection is lazy: the first failed
//!   node-to-node or client-to-node request marks the peer down for a
//!   cooldown, requests rehash to ring survivors, and once the cooldown
//!   elapses a **single** caller re-probes it (half-open: a CAS-guarded
//!   probe token admits exactly one in-flight probe; everyone else keeps
//!   routing to survivors until the probe succeeds), so recovery needs no
//!   operator action and a still-dead node never eats a whole wave.
//! * **Concurrent fan-out** — a routed batch partitions its lanes by
//!   owner and dispatches every per-owner sub-batch *simultaneously*
//!   (scoped threads over pooled per-node connections), reassembling the
//!   responses in request order. The LoPC lesson applied to ourselves: a
//!   serial router is a contended server, and the queueing delay it
//!   manufactures is pure self-inflicted FRC. Failover stays wave-
//!   synchronous — a sub-batch that dies re-partitions its lanes onto
//!   ring survivors only after the in-flight wave completes.
//!
//! Membership is static per process (the `--peer` flags); health is a
//! per-observer judgment, not gossip — two nodes may briefly disagree
//! about a flapping third, and that is fine because any node can serve
//! any key.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::CacheKey;
use crate::client::{
    batch_predictions_from_response, batch_request_body, AttemptError, Client, ClientConfig,
    ClientError, RetryPolicy,
};
use crate::codec::{cell_from_json, cell_to_json};
use crate::interp::{CellExport, CellSource};
use crate::json::Json;
use lopc_core::{Prediction, Scenario};

/// Virtual points per node on the ring. Enough that a 3–16 node ring
/// balances within a few percent; small enough that ring construction and
/// the per-request binary search stay trivial.
pub const VNODES: usize = 64;

/// How long a peer stays marked down before the next request is allowed
/// to re-probe it (half-open recovery).
pub const DEFAULT_COOLDOWN: Duration = Duration::from_secs(1);

/// Hash for ring point placement: FNV-1a over the bytes, finished with a
/// SplitMix64-style avalanche so vnode points spread uniformly even for
/// near-identical address strings.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring with virtual nodes. Construction is
/// deterministic in the member *set* (addresses are sorted and deduped),
/// so every node and client derives the identical ring from the identical
/// membership — the property the whole tier rests on.
#[derive(Clone, Debug)]
pub struct HashRing {
    nodes: Vec<String>,
    /// `(point, node index)`, sorted by point.
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

impl HashRing {
    /// Build the ring over `members` with `vnodes` virtual points each.
    pub fn new(mut members: Vec<String>, vnodes: usize) -> HashRing {
        members.sort();
        members.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for (idx, addr) in members.iter().enumerate() {
            for replica in 0..vnodes {
                points.push((
                    ring_hash(format!("{addr}#{replica}").as_bytes()),
                    idx as u32,
                ));
            }
        }
        points.sort_unstable();
        HashRing {
            nodes: members,
            points,
            vnodes,
        }
    }

    /// The member addresses, in ring (sorted) order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a ring with no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual points per node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Index (into [`HashRing::nodes`]) of the key's owner: the node of
    /// the first ring point clockwise of `key_hash`. One binary search —
    /// the batch router calls this per lane, so it must not pay the full
    /// [`HashRing::preference`] walk.
    pub fn owner(&self, key_hash: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(p, _)| p < key_hash);
        Some(self.points[start % self.points.len()].1 as usize)
    }

    /// All member indices in clockwise preference order from `key_hash`:
    /// the owner first, then each distinct successor. Callers that skip
    /// dead nodes walk this list — that *is* the "rehash to survivors"
    /// rule, and it is deterministic for a given key and liveness view.
    pub fn preference(&self, key_hash: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < key_hash);
        let mut seen = vec![false; self.nodes.len()];
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            if !seen[idx as usize] {
                seen[idx as usize] = true;
                order.push(idx as usize);
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

/// The routing hash of one scenario: FNV-1a of its quantized cache key.
/// Shared by servers and clients — both sides must agree where a scenario
/// lives.
pub fn scenario_hash(scenario: &Scenario) -> u64 {
    CacheKey::hash_of(scenario)
}

/// How a [`Health::claim`] admitted the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Claim {
    /// The target is believed healthy; any number of callers may use it.
    Up,
    /// The target is half-open and the caller won the probe token: it is
    /// the *only* in-flight probe, and its request's outcome (via
    /// [`Health::mark_up`] / [`Health::mark_down`]) releases the token.
    Probe,
}

/// Lazy liveness for one remote (peer or route target): down-for-a-
/// cooldown on transport failure, half-open re-probe admission after.
///
/// The half-open state is the part that needs care under concurrency:
/// the instant a cooldown elapses, *every* concurrent caller used to be
/// allowed to re-probe — with a concurrent fan-out, a whole wave could
/// pile onto a still-dead node and stall on its connect timeouts. The
/// probe token (a CAS on `probing`) admits exactly one caller; everyone
/// else keeps treating the target as down — routing to survivors — until
/// the probe's own request succeeds and clears `down_until`.
struct Health {
    /// `Some(t)` = considered down until `t` (then half-open).
    down_until: Mutex<Option<Instant>>,
    /// Set while one half-open probe is in flight.
    probing: AtomicBool,
}

impl Health {
    fn new() -> Health {
        Health {
            down_until: Mutex::new(None),
            probing: AtomicBool::new(false),
        }
    }

    /// Currently believed reachable (gauge for `/metrics`): a down target
    /// stays unhealthy until a probe actually succeeds, not merely until
    /// its cooldown elapses.
    fn is_up(&self) -> bool {
        self.down_until.lock().expect("health poisoned").is_none()
    }

    /// Could a request route here right now without stealing the probe
    /// token? (A side-effect-free peek for partitioning decisions; the
    /// actual admission happens in [`Health::claim`] at dispatch time.)
    fn selectable(&self, now: Instant) -> bool {
        match *self.down_until.lock().expect("health poisoned") {
            None => true,
            Some(t) => now >= t && !self.probing.load(Ordering::Acquire),
        }
    }

    /// Admit the caller for one request: `Up` for a healthy target,
    /// `Probe` for the single winner on a half-open one, `None` for a
    /// cooling-down target (or a half-open one whose token is taken). A
    /// claim is released by the request's outcome: every attempt must end
    /// in [`Health::mark_up`] or [`Health::mark_down`].
    fn claim(&self, now: Instant) -> Option<Claim> {
        match *self.down_until.lock().expect("health poisoned") {
            None => Some(Claim::Up),
            Some(t) if now >= t => self
                .probing
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
                .then_some(Claim::Probe),
            Some(_) => None,
        }
    }

    fn mark_up(&self) {
        *self.down_until.lock().expect("health poisoned") = None;
        self.probing.store(false, Ordering::Release);
    }

    fn mark_down(&self, cooldown: Duration) {
        *self.down_until.lock().expect("health poisoned") = Some(Instant::now() + cooldown);
        self.probing.store(false, Ordering::Release);
    }
}

/// Liveness + traffic counters for one peer, as judged by this process.
struct PeerState {
    addr: String,
    sock: Option<SocketAddr>,
    health: Health,
    /// Pooled keep-alive connection for pull-path requests.
    conn: Mutex<Option<Client>>,
    /// Requests this process sent to the peer (fetches + pushes).
    forwarded: AtomicU64,
    /// Those that failed at transport/protocol level.
    errors: AtomicU64,
}

impl PeerState {
    fn new(addr: String) -> PeerState {
        let sock = addr.parse().ok();
        PeerState {
            addr,
            sock,
            health: Health::new(),
            conn: Mutex::new(None),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }
}

/// Health/traffic snapshot of one peer for metrics exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerSnapshot {
    /// The peer's advertised address.
    pub addr: String,
    /// This process currently considers the peer reachable.
    pub healthy: bool,
    /// Node-to-node requests sent to the peer (cell fetches + pushes).
    pub forwarded: u64,
    /// Of those, transport/protocol failures.
    pub errors: u64,
}

/// Server-side cluster state: the ring, this node's identity, per-peer
/// health, and the cell-transfer counters. One per server process; also
/// the [`CellSource`] plugged into the [`InterpCache`](crate::InterpCache).
pub struct ClusterState {
    self_addr: String,
    ring: HashRing,
    /// Aligned with `ring.nodes()`: `Some(state)` for peers, `None` for
    /// this node itself.
    peers: Vec<Option<PeerState>>,
    cooldown: Duration,
    peer_config: ClientConfig,
    cells_shipped: AtomicU64,
}

impl ClusterState {
    /// Build the cluster state for a node advertising `self_addr`, peered
    /// with `peer_addrs`. With no peers this is a degenerate one-node
    /// cluster — the topology endpoint and metrics stay well-formed.
    pub fn new(self_addr: String, peer_addrs: &[String], vnodes: usize) -> ClusterState {
        let mut members: Vec<String> = peer_addrs.to_vec();
        members.push(self_addr.clone());
        let ring = HashRing::new(members, vnodes);
        let peers = ring
            .nodes()
            .iter()
            .map(|addr| (*addr != self_addr).then(|| PeerState::new(addr.clone())))
            .collect();
        ClusterState {
            self_addr,
            ring,
            peers,
            cooldown: DEFAULT_COOLDOWN,
            // Node-to-node calls: fail fast and let the ring walk
            // failover — the cluster layer is its own retry policy.
            peer_config: ClientConfig {
                connect_timeout: Duration::from_millis(500),
                read_timeout: Some(Duration::from_secs(5)),
                retry: RetryPolicy::none(),
            },
            cells_shipped: AtomicU64::new(0),
        }
    }

    /// The address this node advertises to peers and clients.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// The shared ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Cells this node shipped to peers (export hits + push deliveries).
    pub fn cells_shipped(&self) -> u64 {
        self.cells_shipped.load(Ordering::Relaxed)
    }

    /// Count one shipped cell (the server calls this when `GET /v1/cell`
    /// serves an export).
    pub fn count_shipped(&self) {
        self.cells_shipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-peer health/traffic snapshots, in ring order.
    pub fn peer_snapshots(&self) -> Vec<PeerSnapshot> {
        self.peers
            .iter()
            .flatten()
            .map(|p| PeerSnapshot {
                addr: p.addr.clone(),
                healthy: p.health.is_up(),
                forwarded: p.forwarded.load(Ordering::Relaxed),
                errors: p.errors.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The `GET /v1/cluster` topology document: identity, membership, and
    /// ring geometry (enough for a client to rebuild the exact ring), plus
    /// this node's health view of its peers.
    pub fn topology_json(&self) -> Json {
        Json::Object(vec![
            ("self".into(), Json::Str(self.self_addr.clone())),
            (
                "nodes".into(),
                Json::Array(
                    self.ring
                        .nodes()
                        .iter()
                        .map(|a| Json::Str(a.clone()))
                        .collect(),
                ),
            ),
            ("vnodes".into(), Json::Num(self.ring.vnodes() as f64)),
            (
                "peers".into(),
                Json::Array(
                    self.peer_snapshots()
                        .into_iter()
                        .map(|p| {
                            Json::Object(vec![
                                ("addr".into(), Json::Str(p.addr)),
                                ("healthy".into(), Json::Bool(p.healthy)),
                                ("forwarded".into(), Json::Num(p.forwarded as f64)),
                                ("errors".into(), Json::Num(p.errors as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// One request on the peer's pooled connection; transport failure
    /// tears the connection down and marks the peer down for the cooldown.
    /// Every call releases any probe token the caller's claim acquired: a
    /// success (or a status answer — the peer is alive) marks the peer up,
    /// a transport failure marks it down.
    fn peer_request(
        &self,
        peer: &PeerState,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        peer.forwarded.fetch_add(1, Ordering::Relaxed);
        let result = (|| {
            let Some(sock) = peer.sock else {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("peer address {:?} is not a socket address", peer.addr),
                )));
            };
            let mut conn = peer.conn.lock().expect("peer conn poisoned");
            let attempt = (|| {
                if conn.is_none() {
                    *conn = Some(Client::connect_with(sock, self.peer_config)?);
                }
                conn.as_mut()
                    .expect("just connected")
                    .request(method, path, body)
            })();
            if attempt.is_err() {
                *conn = None;
            }
            attempt
        })();
        match &result {
            // A non-2xx status is an *answer*; only transport-level
            // failures indict the peer.
            Ok(_) | Err(ClientError::Status(..)) => peer.health.mark_up(),
            Err(_) => {
                peer.errors.fetch_add(1, Ordering::Relaxed);
                peer.health.mark_down(self.cooldown);
            }
        }
        result
    }

    /// One `GET /v1/cell/{key}` against one peer; `Some` is decoded but
    /// unverified. 404 = the peer is healthy but has no cell.
    fn fetch_cell_from(&self, peer: &PeerState, path: &str) -> Option<CellExport> {
        let (status, body) = self.peer_request(peer, "GET", path, b"").ok()?;
        if status != 200 {
            return None;
        }
        let text = std::str::from_utf8(&body).ok()?;
        let doc = crate::json::parse(text).ok()?;
        cell_from_json(&doc).ok()
    }

    /// Ask the peers for a cell, in ring preference order of the cell's
    /// key hash (the cell's owner most likely warmed it; the walk visits
    /// everyone, so a cell warmed anywhere is found). `Some` is decoded
    /// but unverified. Down peers are skipped; a half-open peer admits a
    /// single probe.
    pub fn fetch_cell(&self, wire_key: &str, key_hash: u64) -> Option<CellExport> {
        let now = Instant::now();
        let path = format!("/v1/cell/{wire_key}");
        for idx in self.ring.preference(key_hash) {
            let Some(peer) = &self.peers[idx] else {
                continue; // self
            };
            if peer.health.claim(now).is_none() {
                continue;
            }
            if let Some(export) = self.fetch_cell_from(peer, &path) {
                return Some(export);
            }
        }
        None
    }

    /// [`ClusterState::fetch_cell`] as a concurrent wave: ask every
    /// claimable peer simultaneously and keep the first hit in preference
    /// order. The sweep prefetcher uses this — it cannot know which peer
    /// warmed ahead, and its pull runs inline in a serving request, so its
    /// latency must be one round trip, not a serial peer walk.
    pub fn fetch_cell_speculative(&self, wire_key: &str, key_hash: u64) -> Option<CellExport> {
        let now = Instant::now();
        let path = format!("/v1/cell/{wire_key}");
        let targets: Vec<&PeerState> = self
            .ring
            .preference(key_hash)
            .into_iter()
            .filter_map(|idx| self.peers[idx].as_ref())
            .filter(|peer| peer.health.claim(now).is_some())
            .collect();
        match targets.len() {
            0 => None,
            1 => self.fetch_cell_from(targets[0], &path),
            _ => std::thread::scope(|s| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|&peer| s.spawn(|| self.fetch_cell_from(peer, &path)))
                    .collect();
                handles
                    .into_iter()
                    .filter_map(|h| h.join().expect("cell fetch thread panicked"))
                    .next()
            }),
        }
    }

    /// Push a freshly built cell to every live peer — a concurrent wave
    /// from a detached background thread, so the sweep that built the cell
    /// never waits on the network and one slow peer never delays the rest.
    /// Best-effort: receivers re-verify, so a lost or corrupted push costs
    /// nothing but warmth.
    pub fn push_cell(self: &Arc<Self>, export: &CellExport) {
        let now = Instant::now();
        let live: Vec<usize> = (0..self.peers.len())
            .filter(|&i| {
                self.peers[i]
                    .as_ref()
                    .is_some_and(|p| p.health.claim(now).is_some())
            })
            .collect();
        if live.is_empty() {
            return;
        }
        let state = Arc::clone(self);
        let body = cell_to_json(export).to_compact();
        let path = format!("/v1/cell/{}", export.wire_key);
        std::thread::spawn(move || {
            let state = &state;
            let path = &path;
            let body = &body;
            std::thread::scope(|s| {
                for idx in live {
                    s.spawn(move || {
                        let Some(peer) = &state.peers[idx] else {
                            return;
                        };
                        if let Ok((status, _)) =
                            state.peer_request(peer, "POST", path, body.as_bytes())
                        {
                            if (200..300).contains(&status) {
                                state.count_shipped();
                            }
                        }
                    });
                }
            });
        });
    }
}

/// The [`CellSource`] the server plugs into its `InterpCache`: pull on
/// miss (preference-ordered walk — the owner almost always has it), pull
/// on sweep-prefetch (concurrent wave — whoever warmed ahead answers),
/// push on sweep-prefetch.
pub struct ClusterCellSource(pub Arc<ClusterState>);

impl CellSource for ClusterCellSource {
    fn fetch(&self, wire_key: &str, key_hash: u64) -> Option<CellExport> {
        self.0.fetch_cell(wire_key, key_hash)
    }

    fn fetch_speculative(&self, wire_key: &str, key_hash: u64) -> Option<CellExport> {
        self.0.fetch_cell_speculative(wire_key, key_hash)
    }

    fn offer(&self, export: &CellExport) {
        self.0.push_cell(export);
    }
}

/// The error for a batch (or single request) that found no live member.
fn no_reachable_node() -> ClientError {
    ClientError::Io(io::Error::new(
        io::ErrorKind::NotConnected,
        "no reachable cluster node",
    ))
}

/// One route target of a [`ClusterClient`]: a pooled keep-alive connection
/// (lazily dialed, torn down on transport error) plus the client's health
/// view of the node. Both live behind shared-state cells so one client can
/// fan a batch wave out across its nodes from scoped threads.
struct RouteNode {
    addr: String,
    sock: Option<SocketAddr>,
    conn: Mutex<Option<Client>>,
    health: Health,
}

/// A cluster-aware client: fetches the topology from a seed node, rebuilds
/// the ring, and routes every request (and every batch lane) to its
/// owner — fanning batches out per owner *concurrently* and reassembling
/// the responses in request order. Node failures are detected lazily (the
/// failing request reroutes to the ring survivors) and healed by a single
/// half-open probe after a cooldown. All routing methods take `&self`: the
/// client is shareable across threads, and one batch call dispatches its
/// per-owner sub-batches from a scoped-thread wave.
pub struct ClusterClient {
    nodes: Vec<RouteNode>,
    ring: HashRing,
    config: ClientConfig,
    cooldown: Duration,
}

impl ClusterClient {
    /// Connect to any cluster member and learn the topology from it.
    pub fn connect(seed: SocketAddr) -> Result<ClusterClient, ClientError> {
        Self::connect_with(seed, ClientConfig::default())
    }

    /// [`ClusterClient::connect`] with explicit per-connection tunables.
    pub fn connect_with(
        seed: SocketAddr,
        config: ClientConfig,
    ) -> Result<ClusterClient, ClientError> {
        let mut seed_client = Client::connect_with(seed, config)?;
        let doc = seed_client.request_json("GET", "/v1/cluster", b"")?;
        let members: Vec<String> = doc
            .get("nodes")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("topology missing \"nodes\"".into()))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| ClientError::Protocol("node entries must be strings".into()))
            })
            .collect::<Result<_, _>>()?;
        if members.is_empty() {
            return Err(ClientError::Protocol("topology has no nodes".into()));
        }
        let vnodes = doc
            .get("vnodes")
            .and_then(Json::as_num)
            .filter(|v| (1.0..=4096.0).contains(v))
            .ok_or_else(|| ClientError::Protocol("topology missing \"vnodes\"".into()))?
            as usize;
        let ring = HashRing::new(members, vnodes);
        let nodes = ring
            .nodes()
            .iter()
            .map(|addr| RouteNode {
                addr: addr.clone(),
                sock: addr.parse().ok(),
                conn: Mutex::new(None),
                health: Health::new(),
            })
            .collect();
        Ok(ClusterClient {
            nodes,
            ring,
            config,
            cooldown: DEFAULT_COOLDOWN,
        })
    }

    /// The cluster members, in ring order.
    pub fn members(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.addr.clone()).collect()
    }

    /// Shrink (or stretch) the down-node cooldown — a knob for tests that
    /// exercise the half-open probe path without waiting out the default.
    pub fn set_cooldown(&mut self, cooldown: Duration) {
        self.cooldown = cooldown;
    }

    /// The address that owns `scenario` under the client's current
    /// liveness view (tests use this to assert rerouting).
    pub fn owner_of(&self, scenario: &Scenario) -> Option<&str> {
        let now = Instant::now();
        let hash = scenario_hash(scenario);
        self.ring
            .preference(hash)
            .into_iter()
            .find(|&i| self.nodes[i].health.selectable(now))
            .or_else(|| self.ring.owner(hash))
            .map(|i| self.nodes[i].addr.as_str())
    }

    /// One attempt on one node over its pooled connection (dialed lazily,
    /// torn down on transport failure). Centralizes the health marks: a
    /// response — success *or* [`ClientError::Status`] — proves the node
    /// alive and releases any probe token; a transport-level failure marks
    /// it down for the cooldown.
    fn dispatch<T>(
        &self,
        idx: usize,
        op: impl FnOnce(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let node = &self.nodes[idx];
        let result = (|| {
            let Some(sock) = node.sock else {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("node address {:?} is not a socket address", node.addr),
                )));
            };
            let mut conn = node.conn.lock().expect("node conn poisoned");
            let attempt = (|| {
                if conn.is_none() {
                    *conn = Some(Client::connect_with(sock, self.config)?);
                }
                op(conn.as_mut().expect("just dialed"))
            })();
            // A transport failure poisons the pooled connection; a
            // `Status` is a complete response on a still-good one.
            if matches!(&attempt, Err(e) if !matches!(e, ClientError::Status(..))) {
                *conn = None;
            }
            attempt
        })();
        match &result {
            Ok(_) | Err(ClientError::Status(..)) => node.health.mark_up(),
            Err(_) => node.health.mark_down(self.cooldown),
        }
        result
    }

    /// Run `op` against the owner of `key_hash`, failing over clockwise on
    /// transport errors. A [`ClientError::Status`] is an answer and is
    /// returned as-is (the routing worked; the request was just bad). Down
    /// nodes are skipped and a half-open node admits one probe; if *no*
    /// member grants a claim, the full preference order is forced once, so
    /// a fully-partitioned client heals instead of erroring forever
    /// without ever re-dialing.
    fn with_owner<T>(
        &self,
        key_hash: u64,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut last: Option<ClientError> = None;
        let now = Instant::now();
        // Fast path: the ring owner (one binary search, no preference
        // walk) is claimable and answers — every request on a healthy
        // ring.
        let mut tried = None;
        if let Some(owner) = self.ring.owner(key_hash) {
            if self.nodes[owner].health.claim(now).is_some() {
                match self.dispatch(owner, &mut op) {
                    Ok(v) => return Ok(v),
                    Err(e @ ClientError::Status(..)) => return Err(e),
                    Err(e) => {
                        tried = Some(owner);
                        last = Some(e);
                    }
                }
            }
        }
        let preference = self.ring.preference(key_hash);
        let mut tried_any = tried.is_some();
        for &idx in &preference {
            if Some(idx) == tried || self.nodes[idx].health.claim(now).is_none() {
                continue; // just failed, down, or another caller probes
            }
            tried_any = true;
            match self.dispatch(idx, &mut op) {
                Ok(v) => return Ok(v),
                Err(e @ ClientError::Status(..)) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        if !tried_any {
            for &idx in &preference {
                match self.dispatch(idx, &mut op) {
                    Ok(v) => return Ok(v),
                    Err(e @ ClientError::Status(..)) => return Err(e),
                    Err(e) => last = Some(e),
                }
            }
        }
        Err(last.unwrap_or_else(no_reachable_node))
    }

    /// Route one exact-mode prediction to its owner.
    pub fn predict(&self, scenario: &Scenario) -> Result<Prediction, ClientError> {
        self.predict_within(scenario, 0.0)
    }

    /// Route one prediction (with tolerance) to its owner.
    pub fn predict_within(
        &self,
        scenario: &Scenario,
        max_rel_err: f64,
    ) -> Result<Prediction, ClientError> {
        self.with_owner(scenario_hash(scenario), |client| {
            client.predict_within(scenario, max_rel_err)
        })
    }

    /// Route a batch: lanes are partitioned by owner and every sub-batch
    /// flies **concurrently** — one scoped thread per owner (the caller's
    /// thread runs the first sub-batch itself), each on that owner's
    /// pooled connection, with the responses reassembled in request order
    /// by lane index. A sub-batch that dies on a failing node has its
    /// lanes re-partitioned onto the ring survivors *after* the in-flight
    /// wave completes; a [`ClientError::Status`] answer (bad request,
    /// unsolvable lane) aborts the whole batch, mirroring the single-node
    /// endpoint's semantics.
    pub fn predict_batch(&self, scenarios: &[Scenario]) -> Result<Vec<Prediction>, ClientError> {
        self.predict_batch_within(scenarios, 0.0)
    }

    /// [`ClusterClient::predict_batch`] with a tolerance applied to every
    /// lane.
    pub fn predict_batch_within(
        &self,
        scenarios: &[Scenario],
        max_rel_err: f64,
    ) -> Result<Vec<Prediction>, ClientError> {
        let n = scenarios.len();
        let mut out: Vec<Option<Prediction>> = vec![None; n];
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut last_err: Option<ClientError> = None;
        // Each full round either finishes or marks at least one node
        // down, so `members + 1` rounds always suffice.
        for _round in 0..=self.nodes.len() {
            if remaining.is_empty() {
                break;
            }
            // Partition the outstanding lanes by their current owner —
            // the first selectable node in each lane's preference order.
            // A lane with no selectable member falls back to its ring
            // owner as a forced probe (the client looks fully
            // partitioned; only re-dialing heals).
            let now = Instant::now();
            // One liveness snapshot per round, not per lane: a consistent
            // partition and three mutex reads instead of sixty-four.
            // `run_wave` re-checks each target via `claim` anyway, so a
            // node dying between snapshot and send is still caught.
            let selectable: Vec<bool> = self
                .nodes
                .iter()
                .map(|node| node.health.selectable(now))
                .collect();
            let mut groups: Vec<(usize, bool, Vec<usize>)> = Vec::new();
            for &lane in &remaining {
                let hash = scenario_hash(&scenarios[lane]);
                // Fast path: the ring owner (one binary search) is
                // selectable — true for every lane on a healthy ring. The
                // full preference walk only runs while failing over.
                let ring_owner = self.ring.owner(hash).ok_or_else(no_reachable_node)?;
                let (owner, forced) = if selectable[ring_owner] {
                    (ring_owner, false)
                } else {
                    match self
                        .ring
                        .preference(hash)
                        .into_iter()
                        .find(|&i| selectable[i])
                    {
                        Some(i) => (i, false),
                        None => (ring_owner, true),
                    }
                };
                match groups.iter_mut().find(|(idx, _, _)| *idx == owner) {
                    Some((_, f, lanes)) => {
                        *f |= forced;
                        lanes.push(lane);
                    }
                    None => groups.push((owner, forced, vec![lane])),
                }
            }
            let mut round_failed = false;
            for (owner, lanes, result) in self.run_wave(scenarios, groups, max_rel_err) {
                match result {
                    Ok(preds) => {
                        if preds.len() != lanes.len() {
                            return Err(ClientError::Protocol(format!(
                                "node {} answered {} predictions for {} lanes",
                                self.nodes[owner].addr,
                                preds.len(),
                                lanes.len()
                            )));
                        }
                        for (lane, p) in lanes.into_iter().zip(preds) {
                            if out[lane].replace(p).is_some() {
                                return Err(ClientError::Protocol(format!(
                                    "lane {lane} was answered twice"
                                )));
                            }
                        }
                    }
                    Err(e @ ClientError::Status(..)) => return Err(e),
                    Err(e) => {
                        round_failed = true;
                        last_err = Some(e);
                    }
                }
            }
            remaining.retain(|&i| out[i].is_none());
            if !remaining.is_empty() && !round_failed {
                // No sub-batch failed yet nothing progressed: impossible
                // by construction, but never loop silently.
                return Err(ClientError::Protocol(
                    "batch routing made no progress".into(),
                ));
            }
        }
        if !remaining.is_empty() {
            // Every replica of some lane's preference list stayed down
            // through every round: surface the transport error.
            return Err(last_err.unwrap_or_else(no_reachable_node));
        }
        Ok(out.into_iter().map(|p| p.expect("checked above")).collect())
    }

    /// One concurrent wave: every per-owner sub-batch in flight at once,
    /// pipelined over the pooled connections — phase one *sends* every
    /// sub-batch (each owner's request written back to back, no waiting),
    /// phase two *receives* them in the same order. The servers overlap
    /// their work the moment their request lands, while the client is
    /// still writing the rest of the wave; no threads are spawned, so the
    /// wave costs no scheduling on small hosts (a scoped-thread variant
    /// measured ~2x *slower* on a 1-core client from spawn + timeslice
    /// thrash, and sequential round trips pay the full ping-pong latency
    /// per owner — pipelining beat both). Sub-batches borrow their lanes:
    /// the wave clones zero scenarios.
    ///
    /// Failure contract, per connection: a send-side or
    /// pre-response-byte failure consumed nothing, so a retryable one is
    /// replayed synchronously on a fresh connection (the stale keep-alive
    /// race); once any response byte has been consumed the error surfaces
    /// — never replayed — and the lanes re-partition onto survivors in
    /// the next round, after the whole wave has landed.
    #[allow(clippy::type_complexity)]
    fn run_wave(
        &self,
        scenarios: &[Scenario],
        mut groups: Vec<(usize, bool, Vec<usize>)>,
        max_rel_err: f64,
    ) -> Vec<(usize, Vec<usize>, Result<Vec<Prediction>, ClientError>)> {
        // Ascending node order is the global connection-lock order:
        // concurrent batch callers acquire pool slots without deadlock.
        groups.sort_unstable_by_key(|&(owner, _, _)| owner);
        enum Sent {
            /// The request is on the wire (or at least fully buffered).
            Flying,
            /// Dialing the node failed: nothing to receive, no replay.
            DialFailed(ClientError),
            /// Writing failed on an existing connection: nothing of the
            /// response was consumed, so a retryable error may replay.
            SendFailed(ClientError),
            /// The half-open probe token went to another caller between
            /// partitioning and dispatch: retryable, no connection held.
            ClaimLost,
        }
        // Phase one: put every sub-batch in flight.
        let mut wave = Vec::with_capacity(groups.len());
        for (owner, forced, lanes) in groups {
            let node = &self.nodes[owner];
            let sub: Vec<&Scenario> = lanes.iter().map(|&i| &scenarios[i]).collect();
            let body = batch_request_body(&sub, max_rel_err);
            // Claim at dispatch time, not partition time: a half-open
            // node admits exactly one probe across all concurrent
            // callers (forced groups bypass the gate — every member is
            // down and only re-dialing heals).
            if !forced && node.health.claim(Instant::now()).is_none() {
                wave.push((owner, lanes, sub, None, Sent::ClaimLost));
                continue;
            }
            let mut guard = node.conn.lock().expect("node conn poisoned");
            let sent = (|| {
                let Some(sock) = node.sock else {
                    return Sent::DialFailed(ClientError::Io(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("node address {:?} is not a socket address", node.addr),
                    )));
                };
                if guard.is_none() {
                    match Client::connect_with(sock, self.config) {
                        Ok(client) => *guard = Some(client),
                        Err(e) => return Sent::DialFailed(e),
                    }
                }
                let client = guard.as_mut().expect("just dialed");
                match client.pipeline_send("POST", "/v1/predict/batch", body.as_bytes()) {
                    Ok(()) => Sent::Flying,
                    Err(e) => Sent::SendFailed(e),
                }
            })();
            wave.push((owner, lanes, sub, Some(guard), sent));
        }
        // Phase two: collect the responses, applying the per-connection
        // replay gate, and settle each node's health from its outcome.
        wave.into_iter()
            .map(|(owner, lanes, sub, guard, sent)| {
                let node = &self.nodes[owner];
                // A lost claim never touched the node: no connection, no
                // health verdict (marking down here would clobber the
                // *winning* prober's token). The error is retryable, so
                // the lanes re-partition next round.
                if guard.is_none() {
                    return (
                        owner,
                        lanes,
                        Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::WouldBlock,
                            "node went down (or its probe was taken) mid-partition",
                        ))),
                    );
                }
                let result = match (guard, sent) {
                    (None, _) => unreachable!("handled above"),
                    (Some(_), Sent::DialFailed(e)) => Err(e),
                    (Some(mut guard), Sent::SendFailed(e)) => {
                        let client = guard.as_mut().expect("send implies a client");
                        if e.is_retryable() {
                            client.predict_batch_refs(&sub, max_rel_err)
                        } else {
                            Err(e)
                        }
                    }
                    (Some(mut guard), Sent::Flying) => {
                        let client = guard.as_mut().expect("in flight implies a client");
                        match client.pipeline_recv() {
                            Ok((status, body)) => batch_predictions_from_response(status, body),
                            Err(AttemptError::BeforeResponse(e)) if e.is_retryable() => {
                                // Stale keep-alive race: the server idle-
                                // closed under the send; no response byte
                                // was consumed, so replay on a fresh
                                // connection.
                                client.predict_batch_refs(&sub, max_rel_err)
                            }
                            Err(
                                AttemptError::BeforeResponse(e) | AttemptError::AfterResponse(e),
                            ) => Err(e),
                        }
                    }
                    (Some(_), Sent::ClaimLost) => unreachable!("claim-lost holds no lock"),
                };
                match &result {
                    Ok(_) | Err(ClientError::Status(..)) => node.health.mark_up(),
                    Err(_) => node.health.mark_down(self.cooldown),
                }
                (owner, lanes, result)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{}:7070", i + 1)).collect()
    }

    #[test]
    fn ring_is_deterministic_in_the_member_set() {
        let a = HashRing::new(addrs(3), VNODES);
        let mut shuffled = addrs(3);
        shuffled.reverse();
        let b = HashRing::new(shuffled, VNODES);
        assert_eq!(a.nodes(), b.nodes());
        for h in [0u64, 1, u64::MAX, 0xdeadbeef, 1 << 63] {
            assert_eq!(a.preference(h), b.preference(h));
        }
        // Duplicate members collapse.
        let mut dup = addrs(3);
        dup.extend(addrs(3));
        assert_eq!(HashRing::new(dup, VNODES).len(), 3);
    }

    #[test]
    fn ring_balances_within_reason() {
        let ring = HashRing::new(addrs(3), VNODES);
        let mut counts = [0usize; 3];
        for i in 0..30_000u64 {
            counts[ring.owner(ring_hash(&i.to_le_bytes())).unwrap()] += 1;
        }
        for &c in &counts {
            // Perfect balance is 10_000; vnode placement keeps every node
            // within a 2x band of it.
            assert!((5_000..20_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn preference_lists_every_node_exactly_once() {
        let ring = HashRing::new(addrs(5), VNODES);
        for h in [0u64, 42, u64::MAX / 2, u64::MAX] {
            let pref = ring.preference(h);
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "preference {pref:?} at {h}");
        }
    }

    #[test]
    fn preference_is_stable_under_member_removal() {
        // Consistent hashing's point: removing one node only moves the
        // keys it owned. Simulate removal by skipping it in the walk and
        // compare against a ring built without it.
        let with = HashRing::new(addrs(4), VNODES);
        let without = HashRing::new(addrs(3), VNODES); // 10.0.0.4 gone
        let dead = with
            .nodes()
            .iter()
            .position(|a| a == "10.0.0.4:7070")
            .unwrap();
        for i in 0..2_000u64 {
            let h = ring_hash(&i.to_le_bytes());
            let survivor = with
                .preference(h)
                .into_iter()
                .find(|&idx| idx != dead)
                .map(|idx| with.nodes()[idx].clone())
                .unwrap();
            let fresh = without.nodes()[without.owner(h).unwrap()].clone();
            assert_eq!(survivor, fresh, "key {i} rehashes differently");
        }
    }

    #[test]
    fn scenario_hash_matches_per_quantized_key() {
        use lopc_core::Machine;
        let s = |w: f64| Scenario::AllToAll {
            machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
            w,
        };
        // Quantization (6 significant digits) collapses float noise into
        // one routing hash; distinct scenarios route independently.
        assert_eq!(scenario_hash(&s(1000.0)), scenario_hash(&s(1000.0000001)));
        assert_ne!(scenario_hash(&s(1000.0)), scenario_hash(&s(1001.0)));
    }

    #[test]
    fn topology_document_shape() {
        let state = ClusterState::new(
            "10.0.0.1:7070".into(),
            &["10.0.0.2:7070".into(), "10.0.0.3:7070".into()],
            VNODES,
        );
        let doc = state.topology_json();
        assert_eq!(
            doc.get("self").and_then(Json::as_str),
            Some("10.0.0.1:7070")
        );
        assert_eq!(doc.get("nodes").and_then(Json::as_array).unwrap().len(), 3);
        assert_eq!(
            doc.get("vnodes").and_then(Json::as_num),
            Some(VNODES as f64)
        );
        let peers = doc.get("peers").and_then(Json::as_array).unwrap();
        assert_eq!(peers.len(), 2, "self is not its own peer");
        for p in peers {
            assert_eq!(p.get("healthy").and_then(Json::as_bool), Some(true));
            assert_eq!(p.get("forwarded").and_then(Json::as_num), Some(0.0));
        }
    }

    #[test]
    fn single_node_cluster_is_degenerate_but_well_formed() {
        let state = ClusterState::new("10.0.0.1:7070".into(), &[], VNODES);
        assert_eq!(state.ring().len(), 1);
        assert!(state.peer_snapshots().is_empty());
        // No peers: every fetch is a miss, every push a no-op.
        assert!(state.fetch_cell("0-20", 12345).is_none());
    }

    #[test]
    fn peer_health_cooldown_and_reprobe() {
        let peer = PeerState::new("10.0.0.9:7070".into());
        assert!(peer.health.is_up());
        peer.health.mark_down(Duration::from_secs(3600));
        assert!(!peer.health.is_up());
        // Inside the cooldown nothing may touch the peer.
        assert!(!peer.health.selectable(Instant::now()));
        assert!(peer.health.claim(Instant::now()).is_none());
        // A re-probe is due once the cooldown has elapsed.
        let later = Instant::now() + Duration::from_secs(3601);
        assert!(peer.health.selectable(later));
        assert_eq!(peer.health.claim(later), Some(Claim::Probe));
        peer.health.mark_up();
        assert!(peer.health.is_up());
        assert_eq!(peer.health.claim(Instant::now()), Some(Claim::Up));
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let health = Health::new();
        health.mark_down(Duration::ZERO);
        let due = Instant::now() + Duration::from_millis(1);
        // First claimant wins the probe token; everyone else must keep
        // routing to survivors (no thundering herd onto a dead node).
        assert_eq!(health.claim(due), Some(Claim::Probe));
        assert_eq!(health.claim(due), None);
        assert!(!health.selectable(due), "a probed node is not selectable");
        // A failed probe re-arms the cooldown and frees the token for the
        // next half-open window.
        health.mark_down(Duration::ZERO);
        let again = due + Duration::from_millis(1);
        assert_eq!(health.claim(again), Some(Claim::Probe));
        // A successful probe reopens the node to everyone, up-claims are
        // unlimited.
        health.mark_up();
        assert_eq!(health.claim(again), Some(Claim::Up));
        assert_eq!(health.claim(again), Some(Claim::Up));
        assert!(health.selectable(again));
    }

    #[test]
    fn probe_token_survives_concurrent_claimants() {
        let health = Arc::new(Health::new());
        health.mark_down(Duration::ZERO);
        let due = Instant::now() + Duration::from_millis(1);
        let won: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let health = Arc::clone(&health);
                    s.spawn(move || health.claim(due).is_some() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("claimant panicked"))
                .sum()
        });
        assert_eq!(won, 1, "exactly one of 8 racing claimants may probe");
    }
}
