//! The cluster tier: consistent-hash sharding of the solution/
//! interpolation cache across N `lopc-serve` nodes (DESIGN.md §15).
//!
//! One node is both the throughput ceiling and a single point of failure.
//! This module removes both without weakening the exactness contract:
//!
//! * **Ring** — every node (and every routing client) builds the same
//!   [`HashRing`] over the member addresses: [`VNODES`] virtual points per
//!   node, placed by [`ring_hash`] over `"{addr}#{replica}"`. A request
//!   routes by the FNV-1a hash of its *quantized* cache key
//!   ([`CacheKey::hash64`](crate::cache::CacheKey::hash64)), so the same
//!   scenario lands on the same node from any client — cache locality
//!   without coordination.
//! * **Ownership is locality, not authority.** Every node can solve every
//!   scenario exactly; the ring only decides where cache and cell state
//!   *accumulates*. Killing a node therefore degrades capacity, never
//!   correctness: requests rehash to the survivors, which simply solve
//!   colder.
//! * **Cell shipping** — a node that owns a request but lacks the
//!   interpolation cell asks the peers for it (`GET /v1/cell/{key}`), and
//!   sweep-prefetched cells are pushed ahead (`POST /v1/cell/{key}`).
//!   Every shipped cell is re-verified against a locally solved spot-probe
//!   before admission ([`import_cell`](crate::interp::InterpCache::import_cell))
//!   — the sender is never trusted.
//! * **Peer health** — failure detection is lazy: the first failed
//!   node-to-node or client-to-node request marks the peer down for a
//!   cooldown, requests rehash to ring survivors, and the peer is
//!   re-probed after the cooldown elapses (half-open) so recovery needs no
//!   operator action.
//!
//! Membership is static per process (the `--peer` flags); health is a
//! per-observer judgment, not gossip — two nodes may briefly disagree
//! about a flapping third, and that is fine because any node can serve
//! any key.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::CacheKey;
use crate::client::{Client, ClientConfig, ClientError, RetryPolicy};
use crate::codec::{cell_from_json, cell_to_json};
use crate::interp::{CellExport, CellSource};
use crate::json::Json;
use lopc_core::{Prediction, Scenario};

/// Virtual points per node on the ring. Enough that a 3–16 node ring
/// balances within a few percent; small enough that ring construction and
/// the per-request binary search stay trivial.
pub const VNODES: usize = 64;

/// How long a peer stays marked down before the next request is allowed
/// to re-probe it (half-open recovery).
pub const DEFAULT_COOLDOWN: Duration = Duration::from_secs(1);

/// Hash for ring point placement: FNV-1a over the bytes, finished with a
/// SplitMix64-style avalanche so vnode points spread uniformly even for
/// near-identical address strings.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring with virtual nodes. Construction is
/// deterministic in the member *set* (addresses are sorted and deduped),
/// so every node and client derives the identical ring from the identical
/// membership — the property the whole tier rests on.
#[derive(Clone, Debug)]
pub struct HashRing {
    nodes: Vec<String>,
    /// `(point, node index)`, sorted by point.
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

impl HashRing {
    /// Build the ring over `members` with `vnodes` virtual points each.
    pub fn new(mut members: Vec<String>, vnodes: usize) -> HashRing {
        members.sort();
        members.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for (idx, addr) in members.iter().enumerate() {
            for replica in 0..vnodes {
                points.push((
                    ring_hash(format!("{addr}#{replica}").as_bytes()),
                    idx as u32,
                ));
            }
        }
        points.sort_unstable();
        HashRing {
            nodes: members,
            points,
            vnodes,
        }
    }

    /// The member addresses, in ring (sorted) order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a ring with no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual points per node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Index (into [`HashRing::nodes`]) of the key's owner: the node of
    /// the first ring point clockwise of `key_hash`.
    pub fn owner(&self, key_hash: u64) -> Option<usize> {
        self.preference(key_hash).into_iter().next()
    }

    /// All member indices in clockwise preference order from `key_hash`:
    /// the owner first, then each distinct successor. Callers that skip
    /// dead nodes walk this list — that *is* the "rehash to survivors"
    /// rule, and it is deterministic for a given key and liveness view.
    pub fn preference(&self, key_hash: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < key_hash);
        let mut seen = vec![false; self.nodes.len()];
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            if !seen[idx as usize] {
                seen[idx as usize] = true;
                order.push(idx as usize);
                if order.len() == self.nodes.len() {
                    break;
                }
            }
        }
        order
    }
}

/// The routing hash of one scenario: FNV-1a of its quantized cache key.
/// Shared by servers and clients — both sides must agree where a scenario
/// lives.
pub fn scenario_hash(scenario: &Scenario) -> u64 {
    CacheKey::of(scenario).hash64()
}

/// Liveness + traffic counters for one peer, as judged by this process.
struct PeerState {
    addr: String,
    sock: Option<SocketAddr>,
    /// `Some(t)` = considered down until `t` (then half-open).
    down_until: Mutex<Option<Instant>>,
    /// Pooled keep-alive connection for pull-path requests.
    conn: Mutex<Option<Client>>,
    /// Requests this process sent to the peer (fetches + pushes).
    forwarded: AtomicU64,
    /// Those that failed at transport/protocol level.
    errors: AtomicU64,
}

impl PeerState {
    fn new(addr: String) -> PeerState {
        let sock = addr.parse().ok();
        PeerState {
            addr,
            sock,
            down_until: Mutex::new(None),
            conn: Mutex::new(None),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Healthy, or down long enough that a re-probe is due.
    fn available(&self, cooldown_elapsed_at: Instant) -> bool {
        self.down_until
            .lock()
            .expect("peer state poisoned")
            .is_none_or(|t| cooldown_elapsed_at >= t)
    }

    /// Currently considered healthy (gauge for `/metrics`).
    fn healthy(&self) -> bool {
        self.available(Instant::now())
    }

    fn mark_down(&self, cooldown: Duration) {
        *self.down_until.lock().expect("peer state poisoned") = Some(Instant::now() + cooldown);
    }

    fn mark_up(&self) {
        *self.down_until.lock().expect("peer state poisoned") = None;
    }
}

/// Health/traffic snapshot of one peer for metrics exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerSnapshot {
    /// The peer's advertised address.
    pub addr: String,
    /// This process currently considers the peer reachable.
    pub healthy: bool,
    /// Node-to-node requests sent to the peer (cell fetches + pushes).
    pub forwarded: u64,
    /// Of those, transport/protocol failures.
    pub errors: u64,
}

/// Server-side cluster state: the ring, this node's identity, per-peer
/// health, and the cell-transfer counters. One per server process; also
/// the [`CellSource`] plugged into the [`InterpCache`](crate::InterpCache).
pub struct ClusterState {
    self_addr: String,
    ring: HashRing,
    /// Aligned with `ring.nodes()`: `Some(state)` for peers, `None` for
    /// this node itself.
    peers: Vec<Option<PeerState>>,
    cooldown: Duration,
    peer_config: ClientConfig,
    cells_shipped: AtomicU64,
}

impl ClusterState {
    /// Build the cluster state for a node advertising `self_addr`, peered
    /// with `peer_addrs`. With no peers this is a degenerate one-node
    /// cluster — the topology endpoint and metrics stay well-formed.
    pub fn new(self_addr: String, peer_addrs: &[String], vnodes: usize) -> ClusterState {
        let mut members: Vec<String> = peer_addrs.to_vec();
        members.push(self_addr.clone());
        let ring = HashRing::new(members, vnodes);
        let peers = ring
            .nodes()
            .iter()
            .map(|addr| (*addr != self_addr).then(|| PeerState::new(addr.clone())))
            .collect();
        ClusterState {
            self_addr,
            ring,
            peers,
            cooldown: DEFAULT_COOLDOWN,
            // Node-to-node calls: fail fast and let the ring walk
            // failover — the cluster layer is its own retry policy.
            peer_config: ClientConfig {
                connect_timeout: Duration::from_millis(500),
                read_timeout: Some(Duration::from_secs(5)),
                retry: RetryPolicy::none(),
            },
            cells_shipped: AtomicU64::new(0),
        }
    }

    /// The address this node advertises to peers and clients.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// The shared ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Cells this node shipped to peers (export hits + push deliveries).
    pub fn cells_shipped(&self) -> u64 {
        self.cells_shipped.load(Ordering::Relaxed)
    }

    /// Count one shipped cell (the server calls this when `GET /v1/cell`
    /// serves an export).
    pub fn count_shipped(&self) {
        self.cells_shipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-peer health/traffic snapshots, in ring order.
    pub fn peer_snapshots(&self) -> Vec<PeerSnapshot> {
        self.peers
            .iter()
            .flatten()
            .map(|p| PeerSnapshot {
                addr: p.addr.clone(),
                healthy: p.healthy(),
                forwarded: p.forwarded.load(Ordering::Relaxed),
                errors: p.errors.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The `GET /v1/cluster` topology document: identity, membership, and
    /// ring geometry (enough for a client to rebuild the exact ring), plus
    /// this node's health view of its peers.
    pub fn topology_json(&self) -> Json {
        Json::Object(vec![
            ("self".into(), Json::Str(self.self_addr.clone())),
            (
                "nodes".into(),
                Json::Array(
                    self.ring
                        .nodes()
                        .iter()
                        .map(|a| Json::Str(a.clone()))
                        .collect(),
                ),
            ),
            ("vnodes".into(), Json::Num(self.ring.vnodes() as f64)),
            (
                "peers".into(),
                Json::Array(
                    self.peer_snapshots()
                        .into_iter()
                        .map(|p| {
                            Json::Object(vec![
                                ("addr".into(), Json::Str(p.addr)),
                                ("healthy".into(), Json::Bool(p.healthy)),
                                ("forwarded".into(), Json::Num(p.forwarded as f64)),
                                ("errors".into(), Json::Num(p.errors as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// One request on the peer's pooled connection; transport failure
    /// tears the connection down and marks the peer down for the cooldown.
    fn peer_request(
        &self,
        peer: &PeerState,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let Some(sock) = peer.sock else {
            return Err(ClientError::Protocol(format!(
                "peer address {:?} is not a socket address",
                peer.addr
            )));
        };
        peer.forwarded.fetch_add(1, Ordering::Relaxed);
        let mut conn = peer.conn.lock().expect("peer conn poisoned");
        let result = (|| {
            if conn.is_none() {
                *conn = Some(Client::connect_with(sock, self.peer_config)?);
            }
            conn.as_mut()
                .expect("just connected")
                .request(method, path, body)
        })();
        match &result {
            Ok(_) => peer.mark_up(),
            Err(e) => {
                peer.errors.fetch_add(1, Ordering::Relaxed);
                *conn = None;
                // A non-2xx status is an *answer*; only transport-level
                // failures indict the peer.
                if !matches!(e, ClientError::Status(..)) {
                    peer.mark_down(self.cooldown);
                }
            }
        }
        result
    }

    /// Ask the peers for a cell, in ring preference order of the cell's
    /// key hash (the cell's owner most likely warmed it; the walk visits
    /// everyone, so a cell warmed anywhere is found). `Some` is decoded
    /// but unverified.
    pub fn fetch_cell(&self, wire_key: &str, key_hash: u64) -> Option<CellExport> {
        let now = Instant::now();
        let path = format!("/v1/cell/{wire_key}");
        for idx in self.ring.preference(key_hash) {
            let Some(peer) = &self.peers[idx] else {
                continue; // self
            };
            if !peer.available(now) {
                continue;
            }
            // 404 = peer is healthy but has no cell; any other non-200 =
            // move on (the peer was marked down if it was transport).
            if let Ok((200, body)) = self.peer_request(peer, "GET", &path, b"") {
                let Ok(text) = std::str::from_utf8(&body).map(str::to_owned) else {
                    continue;
                };
                let Ok(doc) = crate::json::parse(&text) else {
                    continue;
                };
                if let Ok(export) = cell_from_json(&doc) {
                    return Some(export);
                }
            }
        }
        None
    }

    /// Push a freshly built cell to every live peer, from a detached
    /// background thread — the sweep that built the cell must not wait on
    /// the network. Best-effort: receivers re-verify, so a lost or
    /// corrupted push costs nothing but warmth.
    pub fn push_cell(self: &Arc<Self>, export: &CellExport) {
        let live: Vec<usize> = (0..self.peers.len())
            .filter(|&i| {
                self.peers[i]
                    .as_ref()
                    .is_some_and(|p| p.available(Instant::now()))
            })
            .collect();
        if live.is_empty() {
            return;
        }
        let state = Arc::clone(self);
        let body = cell_to_json(export).to_compact();
        let path = format!("/v1/cell/{}", export.wire_key);
        std::thread::spawn(move || {
            for idx in live {
                let Some(peer) = &state.peers[idx] else {
                    continue;
                };
                if let Ok((status, _)) = state.peer_request(peer, "POST", &path, body.as_bytes()) {
                    if (200..300).contains(&status) {
                        state.count_shipped();
                    }
                }
            }
        });
    }
}

/// The [`CellSource`] the server plugs into its `InterpCache`: pull on
/// miss, push on sweep-prefetch.
pub struct ClusterCellSource(pub Arc<ClusterState>);

impl CellSource for ClusterCellSource {
    fn fetch(&self, wire_key: &str, key_hash: u64) -> Option<CellExport> {
        self.0.fetch_cell(wire_key, key_hash)
    }

    fn offer(&self, export: &CellExport) {
        self.0.push_cell(export);
    }
}

/// One route target of a [`ClusterClient`].
struct RouteNode {
    addr: String,
    sock: Option<SocketAddr>,
    client: Option<Client>,
    down_until: Option<Instant>,
}

/// A cluster-aware client: fetches the topology from a seed node, rebuilds
/// the ring, and routes every request (and every batch lane) to its
/// owner — fanning batches out per owner and reassembling the responses in
/// request order. Node failures are detected lazily (the failing request
/// reroutes to the ring survivors) and healed by re-probe after a
/// cooldown.
pub struct ClusterClient {
    nodes: Vec<RouteNode>,
    ring: HashRing,
    config: ClientConfig,
    cooldown: Duration,
}

impl ClusterClient {
    /// Connect to any cluster member and learn the topology from it.
    pub fn connect(seed: SocketAddr) -> Result<ClusterClient, ClientError> {
        Self::connect_with(seed, ClientConfig::default())
    }

    /// [`ClusterClient::connect`] with explicit per-connection tunables.
    pub fn connect_with(
        seed: SocketAddr,
        config: ClientConfig,
    ) -> Result<ClusterClient, ClientError> {
        let mut seed_client = Client::connect_with(seed, config)?;
        let doc = seed_client.request_json("GET", "/v1/cluster", b"")?;
        let members: Vec<String> = doc
            .get("nodes")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("topology missing \"nodes\"".into()))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| ClientError::Protocol("node entries must be strings".into()))
            })
            .collect::<Result<_, _>>()?;
        if members.is_empty() {
            return Err(ClientError::Protocol("topology has no nodes".into()));
        }
        let vnodes = doc
            .get("vnodes")
            .and_then(Json::as_num)
            .filter(|v| (1.0..=4096.0).contains(v))
            .ok_or_else(|| ClientError::Protocol("topology missing \"vnodes\"".into()))?
            as usize;
        let ring = HashRing::new(members, vnodes);
        let nodes = ring
            .nodes()
            .iter()
            .map(|addr| RouteNode {
                addr: addr.clone(),
                sock: addr.parse().ok(),
                client: None,
                down_until: None,
            })
            .collect();
        Ok(ClusterClient {
            nodes,
            ring,
            config,
            cooldown: DEFAULT_COOLDOWN,
        })
    }

    /// The cluster members, in ring order.
    pub fn members(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.addr.clone()).collect()
    }

    /// The address that owns `scenario` under the client's current
    /// liveness view (tests use this to assert rerouting).
    pub fn owner_of(&self, scenario: &Scenario) -> Option<&str> {
        let now = Instant::now();
        self.ring
            .preference(scenario_hash(scenario))
            .into_iter()
            .find(|&i| self.node_available(i, now))
            .or_else(|| self.ring.owner(scenario_hash(scenario)))
            .map(|i| self.nodes[i].addr.as_str())
    }

    fn node_available(&self, idx: usize, now: Instant) -> bool {
        self.nodes[idx].down_until.is_none_or(|t| now >= t)
    }

    fn mark_down(&mut self, idx: usize) {
        self.nodes[idx].down_until = Some(Instant::now() + self.cooldown);
        self.nodes[idx].client = None;
    }

    fn mark_up(&mut self, idx: usize) {
        self.nodes[idx].down_until = None;
    }

    /// The routing order for one key under the current liveness view:
    /// live candidates first (ring preference order), then — in case every
    /// member looks down — the full preference order again as a forced
    /// re-probe, so a fully-partitioned client heals itself.
    fn candidates(&self, key_hash: u64) -> Vec<usize> {
        let now = Instant::now();
        let preference = self.ring.preference(key_hash);
        let mut order: Vec<usize> = preference
            .iter()
            .copied()
            .filter(|&i| self.node_available(i, now))
            .collect();
        if order.is_empty() {
            order = preference;
        }
        order
    }

    /// Run `op` against the owner of `key_hash`, failing over clockwise on
    /// transport errors. A [`ClientError::Status`] is an answer and is
    /// returned as-is (the routing worked; the request was just bad).
    fn with_owner<T>(
        &mut self,
        key_hash: u64,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut last: Option<ClientError> = None;
        for idx in self.candidates(key_hash) {
            match self.try_on_node(idx, &mut op) {
                Ok(v) => return Ok(v),
                Err(e @ ClientError::Status(..)) => return Err(e),
                Err(e) => {
                    self.mark_down(idx);
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "no reachable cluster node",
            ))
        }))
    }

    /// One attempt on one node (dialing its connection as needed).
    fn try_on_node<T>(
        &mut self,
        idx: usize,
        op: &mut impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let node = &mut self.nodes[idx];
        let Some(sock) = node.sock else {
            return Err(ClientError::Protocol(format!(
                "node address {:?} is not a socket address",
                node.addr
            )));
        };
        if node.client.is_none() {
            node.client = Some(Client::connect_with(sock, self.config)?);
        }
        let result = op(node.client.as_mut().expect("just connected"));
        match &result {
            Ok(_) | Err(ClientError::Status(..)) => self.mark_up(idx),
            Err(_) => {} // caller marks down
        }
        result
    }

    /// Route one exact-mode prediction to its owner.
    pub fn predict(&mut self, scenario: &Scenario) -> Result<Prediction, ClientError> {
        self.predict_within(scenario, 0.0)
    }

    /// Route one prediction (with tolerance) to its owner.
    pub fn predict_within(
        &mut self,
        scenario: &Scenario,
        max_rel_err: f64,
    ) -> Result<Prediction, ClientError> {
        self.with_owner(scenario_hash(scenario), |client| {
            client.predict_within(scenario, max_rel_err)
        })
    }

    /// Route a batch: lanes are partitioned by owner, one sub-batch flies
    /// per owner, and the responses are reassembled in request order. A
    /// sub-batch that fails on a dying node is re-partitioned onto the
    /// survivors and retried; a [`ClientError::Status`] answer (bad
    /// request, unsolvable lane) aborts the whole batch, mirroring the
    /// single-node endpoint's semantics.
    pub fn predict_batch(
        &mut self,
        scenarios: &[Scenario],
    ) -> Result<Vec<Prediction>, ClientError> {
        self.predict_batch_within(scenarios, 0.0)
    }

    /// [`ClusterClient::predict_batch`] with a tolerance applied to every
    /// lane.
    pub fn predict_batch_within(
        &mut self,
        scenarios: &[Scenario],
        max_rel_err: f64,
    ) -> Result<Vec<Prediction>, ClientError> {
        let n = scenarios.len();
        let mut out: Vec<Option<Prediction>> = vec![None; n];
        let mut remaining: Vec<usize> = (0..n).collect();
        // Each full round either finishes or shrinks the live set by at
        // least one node, so `members + 1` rounds always suffice.
        for _round in 0..=self.nodes.len() {
            if remaining.is_empty() {
                break;
            }
            // Partition the outstanding lanes by their current owner.
            let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
            for &lane in &remaining {
                let owner = self
                    .candidates(scenario_hash(&scenarios[lane]))
                    .into_iter()
                    .next()
                    .ok_or_else(|| {
                        ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::NotConnected,
                            "no reachable cluster node",
                        ))
                    })?;
                match groups.iter_mut().find(|(idx, _)| *idx == owner) {
                    Some((_, lanes)) => lanes.push(lane),
                    None => groups.push((owner, vec![lane])),
                }
            }
            let mut last_err: Option<ClientError> = None;
            for (owner, lanes) in groups {
                let sub: Vec<Scenario> = lanes.iter().map(|&i| scenarios[i].clone()).collect();
                match self.try_on_node(owner, &mut |client: &mut Client| {
                    client.predict_batch_within(&sub, max_rel_err)
                }) {
                    Ok(preds) => {
                        if preds.len() != lanes.len() {
                            return Err(ClientError::Protocol(format!(
                                "node {} answered {} predictions for {} lanes",
                                self.nodes[owner].addr,
                                preds.len(),
                                lanes.len()
                            )));
                        }
                        for (lane, p) in lanes.iter().zip(preds) {
                            out[*lane] = Some(p);
                        }
                    }
                    Err(e @ ClientError::Status(..)) => return Err(e),
                    Err(e) => {
                        self.mark_down(owner);
                        last_err = Some(e);
                    }
                }
            }
            remaining.retain(|&i| out[i].is_none());
            if !remaining.is_empty() && last_err.is_none() {
                // No node failed yet nothing progressed: impossible by
                // construction, but never loop silently.
                return Err(ClientError::Protocol(
                    "batch routing made no progress".into(),
                ));
            }
        }
        if let Some(i) = out.iter().position(Option::is_none) {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                format!("lane {i} could not be routed: no reachable cluster node"),
            )));
        }
        Ok(out.into_iter().map(|p| p.expect("checked above")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{}:7070", i + 1)).collect()
    }

    #[test]
    fn ring_is_deterministic_in_the_member_set() {
        let a = HashRing::new(addrs(3), VNODES);
        let mut shuffled = addrs(3);
        shuffled.reverse();
        let b = HashRing::new(shuffled, VNODES);
        assert_eq!(a.nodes(), b.nodes());
        for h in [0u64, 1, u64::MAX, 0xdeadbeef, 1 << 63] {
            assert_eq!(a.preference(h), b.preference(h));
        }
        // Duplicate members collapse.
        let mut dup = addrs(3);
        dup.extend(addrs(3));
        assert_eq!(HashRing::new(dup, VNODES).len(), 3);
    }

    #[test]
    fn ring_balances_within_reason() {
        let ring = HashRing::new(addrs(3), VNODES);
        let mut counts = [0usize; 3];
        for i in 0..30_000u64 {
            counts[ring.owner(ring_hash(&i.to_le_bytes())).unwrap()] += 1;
        }
        for &c in &counts {
            // Perfect balance is 10_000; vnode placement keeps every node
            // within a 2x band of it.
            assert!((5_000..20_000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn preference_lists_every_node_exactly_once() {
        let ring = HashRing::new(addrs(5), VNODES);
        for h in [0u64, 42, u64::MAX / 2, u64::MAX] {
            let pref = ring.preference(h);
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "preference {pref:?} at {h}");
        }
    }

    #[test]
    fn preference_is_stable_under_member_removal() {
        // Consistent hashing's point: removing one node only moves the
        // keys it owned. Simulate removal by skipping it in the walk and
        // compare against a ring built without it.
        let with = HashRing::new(addrs(4), VNODES);
        let without = HashRing::new(addrs(3), VNODES); // 10.0.0.4 gone
        let dead = with
            .nodes()
            .iter()
            .position(|a| a == "10.0.0.4:7070")
            .unwrap();
        for i in 0..2_000u64 {
            let h = ring_hash(&i.to_le_bytes());
            let survivor = with
                .preference(h)
                .into_iter()
                .find(|&idx| idx != dead)
                .map(|idx| with.nodes()[idx].clone())
                .unwrap();
            let fresh = without.nodes()[without.owner(h).unwrap()].clone();
            assert_eq!(survivor, fresh, "key {i} rehashes differently");
        }
    }

    #[test]
    fn scenario_hash_matches_per_quantized_key() {
        use lopc_core::Machine;
        let s = |w: f64| Scenario::AllToAll {
            machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
            w,
        };
        // Quantization (6 significant digits) collapses float noise into
        // one routing hash; distinct scenarios route independently.
        assert_eq!(scenario_hash(&s(1000.0)), scenario_hash(&s(1000.0000001)));
        assert_ne!(scenario_hash(&s(1000.0)), scenario_hash(&s(1001.0)));
    }

    #[test]
    fn topology_document_shape() {
        let state = ClusterState::new(
            "10.0.0.1:7070".into(),
            &["10.0.0.2:7070".into(), "10.0.0.3:7070".into()],
            VNODES,
        );
        let doc = state.topology_json();
        assert_eq!(
            doc.get("self").and_then(Json::as_str),
            Some("10.0.0.1:7070")
        );
        assert_eq!(doc.get("nodes").and_then(Json::as_array).unwrap().len(), 3);
        assert_eq!(
            doc.get("vnodes").and_then(Json::as_num),
            Some(VNODES as f64)
        );
        let peers = doc.get("peers").and_then(Json::as_array).unwrap();
        assert_eq!(peers.len(), 2, "self is not its own peer");
        for p in peers {
            assert_eq!(p.get("healthy").and_then(Json::as_bool), Some(true));
            assert_eq!(p.get("forwarded").and_then(Json::as_num), Some(0.0));
        }
    }

    #[test]
    fn single_node_cluster_is_degenerate_but_well_formed() {
        let state = ClusterState::new("10.0.0.1:7070".into(), &[], VNODES);
        assert_eq!(state.ring().len(), 1);
        assert!(state.peer_snapshots().is_empty());
        // No peers: every fetch is a miss, every push a no-op.
        assert!(state.fetch_cell("0-20", 12345).is_none());
    }

    #[test]
    fn peer_health_cooldown_and_reprobe() {
        let peer = PeerState::new("10.0.0.9:7070".into());
        assert!(peer.healthy());
        peer.mark_down(Duration::from_secs(3600));
        assert!(!peer.healthy());
        // A re-probe is due once the cooldown has elapsed.
        assert!(peer.available(Instant::now() + Duration::from_secs(3601)));
        peer.mark_up();
        assert!(peer.healthy());
    }
}
