//! The readiness-driven connection core: one reactor thread multiplexing
//! every connection over epoll, handing complete parsed requests to the
//! worker pool.
//!
//! Division of labour (see DESIGN.md §11):
//!
//! * the **reactor** owns all connection state — non-blocking sockets, the
//!   per-connection [`RequestParser`] state machine (reading → parsing →
//!   dispatched → writing), the idle-timeout timer wheel, accept and
//!   teardown. Cheap requests (single predict, metrics, health) it answers
//!   **inline** — one thread wakeup per request, exactly the hand-off
//!   count of the old thread-per-connection core (see [`offload`]).
//! * **workers** block only on the [`JobQueue`] condvar and receive the
//!   solver-heavy jobs (large or tolerant batch predictions), so an
//!   unbounded scenario sweep never stalls the event loop. The worker writes the response bytes
//!   straight to the (non-blocking) socket — keeping the reactor off the
//!   response latency path — and posts a [`Completion`] back through the
//!   [`EventFd`] doorbell so the reactor re-arms the connection (or
//!   finishes a partial write via `EPOLLOUT`).
//! * **shutdown is an event**: flag + doorbell. The reactor closes the
//!   listener and idle connections immediately, drains in-flight
//!   completions, and exits — no polling, no sleeps.
//!
//! Connections are identified by a 64-bit token (slab index + generation)
//! carried in the epoll event payload; stale tokens from a recycled slot
//! fail the generation check and are ignored, so late completions or timer
//! entries can never touch the wrong connection. The worker's direct write
//! cannot race a teardown either: the socket is shared as an
//! `Arc<TcpStream>`, and the reactor never drops its reference while a
//! request is dispatched.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, HttpError, Request, RequestParser};
use crate::json::Json;
use crate::server::Service;
use crate::sys::{
    Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Epoll tag for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Epoll tag for the wake-up eventfd.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Events fetched per `epoll_wait`.
const EVENT_BATCH: usize = 1024;

/// Reactor-side read chunk.
const READ_CHUNK: usize = 16 * 1024;

/// Stop reading from a busy connection (request in flight or response
/// pending) whose parser has buffered this much — flow control against a
/// peer that pumps pipelined data faster than responses drain; reading
/// resumes when the in-flight response completes or the write buffer
/// empties.
const BUSY_BUFFER_CAP: usize = 64 * 1024;

/// Most bytes one [`Reactor::pump`] call reads before yielding. Without a
/// cap, a peer that delivers data as fast as the reactor can read it
/// (localhost, fast LAN) keeps its socket perpetually readable and starves
/// every other connection. A capped pump parks the connection on the
/// re-pump list instead and resumes on the next loop iteration — after the
/// rest of the event batch has been served.
const PUMP_BUDGET: usize = 256 * 1024;

/// One complete parsed request, on its way to a worker.
pub(crate) struct Job {
    pub token: u64,
    pub stream: Arc<TcpStream>,
    pub request: Request,
}

/// Batch bodies at or under this size may run inline on the reactor
/// (see [`offload`]). ~3 KB is roughly 30 closed-form lanes — a couple
/// hundred microseconds even when every lane is a cold solve, comparable
/// to serving a handful of inline singles. The routed sub-batches a
/// [`ClusterClient`](crate::cluster::ClusterClient) fans out land well
/// under this; saving their hand-offs is what keeps a pipelined
/// multi-node wave competitive with one big single-node batch.
const INLINE_BATCH_MAX_BODY: usize = 3 * 1024;

/// Should this request travel to the worker pool instead of running
/// inline on the reactor? Requests whose handler cost is unbounded:
///
/// * batch predictions that are *large* (over [`INLINE_BATCH_MAX_BODY`]:
///   a full scenario sweep of cold solves), *tolerant* (a cell miss may
///   fetch from a peer over the network), or contain a *general* model
///   (an arbitrarily sized Appendix-A AMVA). Small exact closed-form
///   batches are bounded — each lane is a microseconds fixed-point
///   solve — and run inline;
/// * tolerant single predictions (`max_rel_err` in the body) — a cell
///   miss may *fetch from a peer over the network* and re-verify with a
///   local solve (DESIGN.md §15);
/// * cell transfer (`/v1/cell/...`) — an import runs a spot-probe solve,
///   and an export can race a slot still being built.
///
/// Stalling the reactor for milliseconds would add that stall to every
/// other connection's latency. Everything else — exact single predict,
/// metrics, topology — is microseconds even on a cache miss, and
/// answering it inline saves two thread hand-offs per request.
fn offload(request: &Request) -> bool {
    if request.path == "/v1/predict/batch" {
        return request.body.len() > INLINE_BATCH_MAX_BODY
            || batch_body_forces_offload(&request.body);
    }
    request.path.starts_with("/v1/cell/")
        || (request.path == "/v1/predict" && memmem(&request.body, b"max_rel_err"))
}

/// Does a small batch body carry a token that forces worker offload —
/// `max_rel_err` (tolerant lanes can fetch cells over the network) or
/// `general` (an Appendix-A model of arbitrary size)? One pass with
/// first-byte dispatch: this runs on the reactor for every batch under
/// the inline cap, and two naive [`memmem`] passes over a few KB would
/// cost a measurable slice of the hand-off they avoid. A false positive
/// (the token in some future free-form field) merely offloads; misses
/// are impossible because the wire keys are literal.
fn batch_body_forces_offload(body: &[u8]) -> bool {
    let mut rest = body;
    while let Some(&byte) = rest.first() {
        match byte {
            b'm' if rest.starts_with(b"max_rel_err") => return true,
            b'g' if rest.starts_with(b"general") => return true,
            _ => {}
        }
        rest = &rest[1..];
    }
    false
}

/// Naive substring search (the bodies are small and the needle is fixed;
/// anything fancier is not worth the code).
fn memmem(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|window| window == needle)
}

/// How a worker finished its job.
pub(crate) enum Done {
    /// Response fully written by the worker itself.
    Written { keep_alive: bool },
    /// The socket buffer filled mid-response; the reactor finishes `rest`
    /// under `EPOLLOUT`.
    Partial { rest: Vec<u8>, keep_alive: bool },
    /// The write failed (or the handler panicked); tear the connection
    /// down.
    Failed,
}

/// Worker → reactor notification for one completed job.
pub(crate) struct Completion {
    pub token: u64,
    pub done: Done,
}

/// The request hand-off queue between reactor and workers. Deliberately
/// boring — mutex, deque, condvar. Workers park immediately when the queue
/// is empty: only solver-heavy batch jobs travel through here, so the
/// futex round trip is noise against the job itself, and an idle worker
/// must never burn a core the solver threads (or the reactor, on small
/// machines) could be using.
pub(crate) struct JobQueue {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl JobQueue {
    pub fn new() -> JobQueue {
        JobQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    pub fn push(&self, job: Job) {
        self.queue
            .lock()
            .expect("job queue poisoned")
            .push_back(job);
        self.ready.notify_one();
    }

    /// Next job, or `None` once shutdown is flagged and the queue is
    /// drained.
    pub fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut q = self.queue.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = self.ready.wait(q).expect("job queue poisoned");
        }
    }

    /// Wake every parked worker (shutdown). Holds the queue lock so a
    /// worker between its shutdown check and its wait cannot miss the
    /// notification (the classic lost-wakeup window).
    pub fn wake_all(&self) {
        let _guard = self.queue.lock().expect("job queue poisoned");
        self.ready.notify_all();
    }

    /// Take every queued job without blocking. Shutdown only: workers exit
    /// the moment they see the flag over an empty queue, so jobs the
    /// reactor dispatched while handling its final event batch can be
    /// stranded here with nobody left to run them.
    pub fn take_all(&self) -> Vec<Job> {
        self.queue
            .lock()
            .expect("job queue poisoned")
            .drain(..)
            .collect()
    }
}

/// State shared between the reactor, the workers, and the server handle.
pub(crate) struct Shared {
    pub jobs: JobQueue,
    pub completions: Mutex<Vec<Completion>>,
    pub wake: EventFd,
    pub shutdown: AtomicBool,
}

impl Shared {
    pub fn new() -> std::io::Result<Shared> {
        Ok(Shared {
            jobs: JobQueue::new(),
            completions: Mutex::new(Vec::new()),
            wake: EventFd::new()?,
            shutdown: AtomicBool::new(false),
        })
    }

    /// Post a completion and ring the reactor's doorbell.
    pub fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completion queue poisoned")
            .push(completion);
        self.wake.signal();
    }
}

// -- timer wheel -----------------------------------------------------------

/// Wheel slots; with `tick = idle_timeout / 32` every deadline lands
/// within one lap.
const WHEEL_SLOTS: usize = 64;

/// A hashed timing wheel over connection tokens. Deadlines are quantized
/// to ticks of `idle_timeout / 32` (never finer than 1 ms, never coarser
/// than 1 s); each slot holds the entries whose deadline hashes there.
/// Expiry is *lazy*: the wheel only nominates candidates, and the reactor
/// re-checks the connection's actual `last_activity` before closing —
/// active connections are simply re-scheduled, so refreshing a timer on
/// every read costs nothing.
struct TimerWheel {
    slots: Vec<Vec<(u64, u64)>>,
    tick: Duration,
    /// Next tick index to process.
    cursor: u64,
    epoch: Instant,
    len: usize,
}

impl TimerWheel {
    fn new(idle_timeout: Duration, epoch: Instant) -> TimerWheel {
        let tick = (idle_timeout / 32)
            .max(Duration::from_millis(1))
            .min(Duration::from_secs(1));
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            tick,
            cursor: 1,
            epoch,
            len: 0,
        }
    }

    fn tick_of(&self, deadline: Instant) -> u64 {
        let since = deadline.saturating_duration_since(self.epoch);
        // Round up so an entry never fires before its deadline.
        (since.as_nanos() / self.tick.as_nanos()) as u64 + 1
    }

    fn schedule(&mut self, token: u64, deadline: Instant) {
        let tick = self.tick_of(deadline).max(self.cursor);
        self.slots[(tick % WHEEL_SLOTS as u64) as usize].push((token, tick));
        self.len += 1;
    }

    /// How long until the next scheduled tick, if anything is scheduled.
    fn next_wait(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        // u64 nanosecond math: a u32 tick count wraps after ~2^32 ticks
        // (under 50 days of uptime at the 1 ms minimum tick), which would
        // put the deadline in the past and wake the reactor every tick.
        let next = self.epoch
            + Duration::from_nanos((self.tick.as_nanos() as u64).saturating_mul(self.cursor));
        Some(next.saturating_duration_since(now))
    }

    /// Advance through every tick that is now due, collecting candidate
    /// tokens. Entries scheduled for a later lap of the wheel stay put.
    fn expired(&mut self, now: Instant) -> Vec<u64> {
        let now_tick =
            (now.saturating_duration_since(self.epoch).as_nanos() / self.tick.as_nanos()) as u64;
        let mut due = Vec::new();
        while self.cursor <= now_tick {
            let slot = &mut self.slots[(self.cursor % WHEEL_SLOTS as u64) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].1 <= self.cursor {
                    due.push(slot.swap_remove(i).0);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
            self.cursor += 1;
        }
        due
    }
}

// -- connection state ------------------------------------------------------

struct Conn {
    stream: Arc<TcpStream>,
    generation: u32,
    parser: RequestParser,
    /// Pending response bytes the reactor owns (partial worker write, or a
    /// reactor-generated 400), plus the write cursor into them.
    wbuf: Vec<u8>,
    wpos: usize,
    /// A request is in flight with a worker.
    dispatched: bool,
    /// Close once `wbuf` drains (response said `Connection: close`, or a
    /// framing error was answered).
    close_after_write: bool,
    /// Peer closed its write half; close once in-flight work drains.
    peer_eof: bool,
    /// `EPOLLOUT` currently armed.
    epollout: bool,
    /// Timer-wheel entry outstanding for this connection.
    timer_armed: bool,
    last_activity: Instant,
}

enum CloseReason {
    Normal,
    IdleTimeout,
}

/// Why the reactor stopped serving a connection event.
enum ConnFate {
    Alive,
    Closed,
}

/// How long the listener stays deregistered after the process runs out of
/// file descriptors (`EMFILE`/`ENFILE`). The pending connection keeps a
/// level-triggered listener readable, so accepting again immediately would
/// busy-spin the reactor at 100% CPU until fds free up.
const LISTENER_PAUSE: Duration = Duration::from_millis(100);

pub(crate) struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    service: Arc<Service>,
    shared: Arc<Shared>,
    idle_timeout: Duration,
    slots: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
    wheel: TimerWheel,
    /// Requests currently dispatched to workers.
    in_flight: usize,
    /// Connections whose pump hit [`PUMP_BUDGET`] with data likely still
    /// queued; re-pumped each loop iteration (edge-triggered epoll will
    /// not re-announce bytes that were already readable).
    repump: Vec<u64>,
    /// When set, the listener is deregistered after fd exhaustion and
    /// re-armed once this instant passes.
    listener_resume: Option<Instant>,
}

fn token_of(index: usize, generation: u32) -> u64 {
    ((index as u64) << 32) | generation as u64
}

fn split_token(token: u64) -> (usize, u32) {
    ((token >> 32) as usize, token as u32)
}

fn would_block(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::WouldBlock
}

impl Reactor {
    pub fn new(
        listener: TcpListener,
        service: Arc<Service>,
        shared: Arc<Shared>,
        idle_timeout: Duration,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(shared.wake.raw_fd(), EPOLLIN, TOKEN_WAKE)?;
        Ok(Reactor {
            epoll,
            listener,
            service,
            shared,
            idle_timeout,
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            wheel: TimerWheel::new(idle_timeout, Instant::now()),
            in_flight: 0,
            repump: Vec::new(),
            listener_resume: None,
        })
    }

    /// The event loop. Runs until shutdown is flagged, then drains
    /// in-flight requests and tears everything down.
    pub fn run(mut self) {
        let mut events = vec![EpollEvent::default(); EVENT_BATCH];
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let now = Instant::now();
            self.maybe_resume_listener(now);
            let mut wait = self.wheel.next_wait(now);
            if let Some(at) = self.listener_resume {
                let until = at.saturating_duration_since(now);
                wait = Some(wait.map_or(until, |w| w.min(until)));
            }
            let timeout_ms = if !self.repump.is_empty() {
                0
            } else {
                match wait {
                    None => -1,
                    Some(d) => d.as_millis().min(i32::MAX as u128) as i32 + 1,
                }
            };
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(_) => break,
            };
            self.service.metrics().reactor_wakeup(n as u64);
            for ev in &events[..n] {
                // Copy out of the (packed) event before matching.
                let (data, ready) = (ev.data, ev.events);
                match data {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => {
                        self.shared.wake.drain();
                        self.process_completions();
                    }
                    token => self.conn_event(token, ready),
                }
            }
            // Budget-capped connections get their next read slice now that
            // the whole event batch has been served once.
            for token in std::mem::take(&mut self.repump) {
                if let Some(index) = self.lookup(token) {
                    self.pump(index);
                }
            }
            self.expire_idle(Instant::now());
        }
        self.drain_and_exit(&mut events);
    }

    /// Shutdown path: stop accepting, close idle connections immediately,
    /// then wait for the workers' in-flight completions before closing the
    /// rest. Workers always post a completion (even for failed writes), so
    /// this drains in bounded time with no polling.
    fn drain_and_exit(mut self, events: &mut [EpollEvent]) {
        let _ = self.epoll.del(self.listener.as_raw_fd());
        for index in 0..self.slots.len() {
            let close_now = matches!(&self.slots[index], Some(c) if !c.dispatched);
            if close_now {
                self.close(index, CloseReason::Normal);
            }
        }
        // Jobs pushed during the final event batch may have nobody to run
        // them: workers exit as soon as they observe the shutdown flag over
        // an empty queue, and that can happen before this reactor pushed
        // its last job. Run any stragglers here — the queue is mutex-owned,
        // so each job goes to exactly one executor — and post their
        // completions so the in-flight count below always reaches zero.
        for job in self.shared.jobs.take_all() {
            let done = crate::server::execute(&self.service, &job.stream, &job.request);
            self.shared.complete(Completion {
                token: job.token,
                done,
            });
        }
        while self.in_flight > 0 {
            match self.epoll.wait(events, 1000) {
                Ok(_) => {}
                Err(_) => break,
            }
            self.shared.wake.drain();
            let completions = std::mem::take(
                &mut *self
                    .shared
                    .completions
                    .lock()
                    .expect("completion queue poisoned"),
            );
            for completion in completions {
                self.in_flight -= 1;
                self.service.metrics().conn_undispatched();
                if let Some(index) = self.lookup(completion.token) {
                    self.slots[index].as_mut().expect("live slot").dispatched = false;
                    self.close(index, CloseReason::Normal);
                }
            }
        }
    }

    fn lookup(&self, token: u64) -> Option<usize> {
        let (index, generation) = split_token(token);
        match self.slots.get(index) {
            Some(Some(conn)) if conn.generation == generation => Some(index),
            _ => None,
        }
    }

    // -- accept ------------------------------------------------------------

    fn accept_ready(&mut self) {
        /// `ENFILE`: the system file table is full.
        const ENFILE: i32 = 23;
        /// `EMFILE`: the per-process fd limit is hit.
        const EMFILE: i32 = 24;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.register(stream),
                Err(e) if would_block(&e) => return,
                Err(e) if matches!(e.raw_os_error(), Some(EMFILE) | Some(ENFILE)) => {
                    // Out of fds. The undrained connection keeps the
                    // (level-triggered) listener readable, so returning
                    // here would make every subsequent epoll_wait fire
                    // instantly — a 100% CPU spin for as long as fds stay
                    // exhausted. Deregister and re-arm after a pause;
                    // pending connections simply wait in the accept queue.
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                    self.listener_resume = Some(Instant::now() + LISTENER_PAUSE);
                    return;
                }
                // Transient accept errors (ECONNABORTED...) consume the
                // failed attempt: drop it, keep serving.
                Err(_) => return,
            }
        }
    }

    /// Re-register a paused listener once its back-off deadline passes.
    fn maybe_resume_listener(&mut self, now: Instant) {
        let Some(at) = self.listener_resume else {
            return;
        };
        if now < at {
            return;
        }
        if self
            .epoll
            .add(self.listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
            .is_ok()
        {
            self.listener_resume = None;
        } else {
            self.listener_resume = Some(now + LISTENER_PAUSE);
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Nagle + delayed ACK stalls multi-segment JSON bodies by ~40 ms
        // per round trip; a request/response service always wants NODELAY.
        let _ = stream.set_nodelay(true);
        let now = Instant::now();
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        let generation = self.generations[index];
        let token = token_of(index, generation);
        let conn = Conn {
            stream: Arc::new(stream),
            generation,
            parser: RequestParser::new(),
            wbuf: Vec::new(),
            wpos: 0,
            dispatched: false,
            close_after_write: false,
            peer_eof: false,
            epollout: false,
            timer_armed: false,
            last_activity: now,
        };
        if self
            .epoll
            .add(
                conn.stream.as_raw_fd(),
                EPOLLIN | EPOLLRDHUP | EPOLLET,
                token,
            )
            .is_err()
        {
            self.free.push(index);
            return;
        }
        self.slots[index] = Some(conn);
        self.service.metrics().conn_opened();
        self.arm_timer(index, now);
        // The socket may already hold a full request (connect + write
        // races the accept); with edge-triggered delivery that edge
        // happened before registration, so pump once now.
        self.pump(index);
    }

    fn arm_timer(&mut self, index: usize, now: Instant) {
        let conn = match &mut self.slots[index] {
            Some(c) => c,
            None => return,
        };
        if conn.timer_armed {
            return;
        }
        conn.timer_armed = true;
        let token = token_of(index, conn.generation);
        self.wheel.schedule(token, now + self.idle_timeout);
    }

    // -- teardown ----------------------------------------------------------

    fn close(&mut self, index: usize, reason: CloseReason) {
        let conn = match self.slots[index].take() {
            Some(c) => c,
            None => return,
        };
        let _ = self.epoll.del(conn.stream.as_raw_fd());
        // Dropping the reactor's Arc closes the fd once any worker still
        // holding a clone finishes; stale completions then miss the
        // generation check.
        self.generations[index] = self.generations[index].wrapping_add(1);
        self.free.push(index);
        self.service
            .metrics()
            .conn_closed(matches!(reason, CloseReason::IdleTimeout));
    }

    // -- timers ------------------------------------------------------------

    fn expire_idle(&mut self, now: Instant) {
        for token in self.wheel.expired(now) {
            let Some(index) = self.lookup(token) else {
                continue;
            };
            let conn = self.slots[index].as_mut().expect("live slot");
            conn.timer_armed = false;
            let idle_for = now.saturating_duration_since(conn.last_activity);
            let busy = conn.dispatched || conn.wpos < conn.wbuf.len();
            if !busy && idle_for >= self.idle_timeout {
                // Genuinely idle past the deadline: close. The FIN gives
                // the peer a clean EOF on its next read.
                self.close(index, CloseReason::IdleTimeout);
            } else {
                // Saw activity since scheduling (or mid-request): push the
                // deadline out from the *actual* last activity.
                let deadline = conn.last_activity.max(now) + self.idle_timeout;
                conn.timer_armed = true;
                self.wheel.schedule(token, deadline);
            }
        }
    }

    // -- I/O state machine ---------------------------------------------------

    fn conn_event(&mut self, token: u64, events: u32) {
        let Some(index) = self.lookup(token) else {
            return;
        };
        if events & (EPOLLERR | EPOLLHUP) != 0 {
            let dispatched = self.slots[index].as_ref().expect("live slot").dispatched;
            if dispatched {
                // Let the in-flight completion find the error; closing now
                // would recycle the slot under it.
                self.slots[index].as_mut().expect("live slot").peer_eof = true;
            } else {
                self.close(index, CloseReason::Normal);
            }
            return;
        }
        if events & EPOLLOUT != 0 && matches!(self.flush(index), ConnFate::Closed) {
            return;
        }
        if events & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.pump(index);
        }
    }

    /// Read everything available, advance the parser, dispatch at most one
    /// request, and handle EOF — the per-connection state machine's main
    /// transition.
    fn pump(&mut self, index: usize) {
        let mut chunk = [0u8; READ_CHUNK];
        let mut budget = PUMP_BUDGET;
        loop {
            let conn = match &mut self.slots[index] {
                Some(c) => c,
                None => return,
            };
            let busy = conn.dispatched || conn.wpos < conn.wbuf.len();
            if busy && conn.parser.buffered() > BUSY_BUFFER_CAP {
                // Flow control: leave the rest in the kernel buffer (TCP
                // backpressure); the completion/flush path resumes reading.
                // (An idle connection is never capped here — its buffered
                // bytes are an incomplete request that needs more data to
                // progress, and the parser's own header/body limits bound
                // how large it can grow.)
                break;
            }
            if budget == 0 {
                // Fairness: this pump has read its fill. The socket may
                // still hold data, and edge-triggered epoll will not
                // re-announce it, so park the connection for an explicit
                // re-pump after the rest of the event batch is served.
                self.repump.push(token_of(index, conn.generation));
                break;
            }
            match (&*conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    budget = budget.saturating_sub(n);
                    conn.parser.push(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if would_block(&e) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    if !conn.dispatched {
                        self.close(index, CloseReason::Normal);
                    }
                    return;
                }
            }
        }
        self.advance(index);
    }

    /// Try to turn buffered bytes into a dispatched request, then apply
    /// EOF if the connection is fully drained.
    fn advance(&mut self, index: usize) {
        loop {
            let conn = match &mut self.slots[index] {
                Some(c) => c,
                None => return,
            };
            if conn.dispatched || conn.wpos < conn.wbuf.len() || conn.close_after_write {
                return; // busy: next transition comes from a completion/flush
            }
            match conn.parser.poll() {
                Ok(Some(request)) => {
                    if offload(&request) {
                        // Solver-heavy: hand to the worker pool so a long
                        // batch never stalls the other connections.
                        conn.dispatched = true;
                        let job = Job {
                            token: token_of(index, conn.generation),
                            stream: Arc::clone(&conn.stream),
                            request,
                        };
                        self.in_flight += 1;
                        self.service.metrics().conn_dispatched();
                        self.shared.jobs.push(job);
                        return;
                    }
                    // Inline fast path: cheap requests (single predict,
                    // metrics, health) are answered on the reactor thread
                    // itself — one thread wakeup per request, no hand-off,
                    // no completion doorbell. This is what keeps warm
                    // single-request latency at thread-per-connection
                    // levels while idle connections scale past C10K.
                    let stream = Arc::clone(&conn.stream);
                    match crate::server::execute(&self.service, &stream, &request) {
                        Done::Written { keep_alive: true } => {
                            let conn = self.slots[index].as_mut().expect("live slot");
                            conn.last_activity = Instant::now();
                            continue; // next pipelined request, if buffered
                        }
                        Done::Written { keep_alive: false } | Done::Failed => {
                            self.close(index, CloseReason::Normal);
                            return;
                        }
                        Done::Partial { rest, keep_alive } => {
                            let conn = self.slots[index].as_mut().expect("live slot");
                            conn.wbuf = rest;
                            conn.wpos = 0;
                            conn.close_after_write = !keep_alive;
                            self.flush(index);
                            return;
                        }
                    }
                }
                Ok(None) => break,
                Err(HttpError::Bad(msg)) => {
                    // Protocol violations get one best-effort 400, then
                    // close — framing is unreliable after a parse failure.
                    self.queue_error_close(index, &msg);
                    return;
                }
                Err(HttpError::Io(_)) => {
                    self.close(index, CloseReason::Normal);
                    return;
                }
            }
        }
        let conn = self.slots[index].as_ref().expect("live slot");
        if conn.peer_eof && !conn.dispatched && conn.wpos >= conn.wbuf.len() {
            self.close(index, CloseReason::Normal);
        }
    }

    /// Queue a reactor-generated 400 and close once it drains.
    fn queue_error_close(&mut self, index: usize, msg: &str) {
        let body = Json::Object(vec![("error".into(), Json::Str(msg.to_string()))]).to_compact();
        let mut bytes = Vec::with_capacity(128 + body.len());
        http::write_response(&mut bytes, 400, "application/json", &body, false)
            .expect("in-memory write");
        let conn = self.slots[index].as_mut().expect("live slot");
        conn.wbuf = bytes;
        conn.wpos = 0;
        conn.close_after_write = true;
        self.flush(index);
    }

    /// Push pending bytes out; arm/disarm `EPOLLOUT` as needed.
    fn flush(&mut self, index: usize) -> ConnFate {
        let conn = match &mut self.slots[index] {
            Some(c) => c,
            None => return ConnFate::Closed,
        };
        while conn.wpos < conn.wbuf.len() {
            match (&*conn.stream).write(&conn.wbuf[conn.wpos..]) {
                Ok(n) => conn.wpos += n,
                Err(e) if would_block(&e) => {
                    if !conn.epollout {
                        conn.epollout = true;
                        let token = token_of(index, conn.generation);
                        let _ = self.epoll.modify(
                            conn.stream.as_raw_fd(),
                            EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET,
                            token,
                        );
                    }
                    return ConnFate::Alive;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(index, CloseReason::Normal);
                    return ConnFate::Closed;
                }
            }
        }
        conn.wbuf.clear();
        conn.wpos = 0;
        conn.last_activity = Instant::now();
        if conn.epollout {
            conn.epollout = false;
            let token = token_of(index, conn.generation);
            let _ = self.epoll.modify(
                conn.stream.as_raw_fd(),
                EPOLLIN | EPOLLRDHUP | EPOLLET,
                token,
            );
        }
        if conn.close_after_write {
            self.close(index, CloseReason::Normal);
            return ConnFate::Closed;
        }
        // Response drained: the connection may already hold the next
        // pipelined request.
        self.pump(index);
        match self.slots[index] {
            Some(_) => ConnFate::Alive,
            None => ConnFate::Closed,
        }
    }

    // -- completions ---------------------------------------------------------

    fn process_completions(&mut self) {
        let completions = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .expect("completion queue poisoned"),
        );
        for Completion { token, done } in completions {
            self.in_flight -= 1;
            self.service.metrics().conn_undispatched();
            let Some(index) = self.lookup(token) else {
                // Connection died while the worker computed; its Arc clone
                // already closed the socket on drop.
                continue;
            };
            {
                let conn = self.slots[index].as_mut().expect("live slot");
                conn.dispatched = false;
                conn.last_activity = Instant::now();
            }
            match done {
                Done::Failed => self.close(index, CloseReason::Normal),
                Done::Written { keep_alive: false } => self.close(index, CloseReason::Normal),
                Done::Written { keep_alive: true } => {
                    // Reading may have been flow-controlled off mid-flight;
                    // resume and look for the next request.
                    self.pump(index);
                }
                Done::Partial { rest, keep_alive } => {
                    let conn = self.slots[index].as_mut().expect("live slot");
                    conn.wbuf = rest;
                    conn.wpos = 0;
                    conn.close_after_write = !keep_alive;
                    self.flush(index);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_executes_jobs_stranded_after_workers_exit() {
        // Deterministic reconstruction of the shutdown race: the reactor
        // can dispatch a job while processing the event batch that
        // delivered the shutdown doorbell, after the last worker — seeing
        // the flag over a then-empty queue — has already exited. Build
        // that end state directly: one job queued, nobody to pop it, one
        // dispatch counted in flight. drain_and_exit must execute the
        // stranded job itself; if it only waited for a completion, it
        // would spin on the in-flight count forever.
        let service = Arc::new(Service::new(1, 16));
        let shared = Arc::new(Shared::new().expect("shared"));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut reactor = Reactor::new(
            listener,
            Arc::clone(&service),
            Arc::clone(&shared),
            Duration::from_secs(30),
        )
        .expect("reactor");

        // A real socket pair so the stranded job has somewhere to write.
        let aux = TcpListener::bind("127.0.0.1:0").expect("bind aux");
        let client = TcpStream::connect(aux.local_addr().expect("addr")).expect("connect");
        let (server_side, _) = aux.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");

        let mut parser = RequestParser::new();
        parser.push(b"GET /metrics HTTP/1.1\r\n\r\n");
        let request = parser.poll().expect("parse").expect("complete request");

        reactor.in_flight = 1;
        shared.jobs.push(Job {
            token: token_of(0, 0),
            stream: Arc::new(server_side),
            request,
        });
        shared.shutdown.store(true, Ordering::Release);
        shared.wake.signal();

        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            reactor.run();
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(5))
            .expect("drain hung on the stranded job");

        // Executed, not dropped: the peer receives the response.
        use std::io::Read;
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut status = [0u8; 12];
        (&client).read_exact(&mut status).expect("read response");
        assert_eq!(&status, b"HTTP/1.1 200");
    }

    #[test]
    fn timer_wheel_next_wait_survives_u32_tick_counts() {
        let epoch = Instant::now();
        // idle_timeout of 32 ms gives the minimum 1 ms tick.
        let mut wheel = TimerWheel::new(Duration::from_millis(32), epoch);
        assert_eq!(wheel.tick, Duration::from_millis(1));
        // Past 2^32 ticks (~49.7 days of 1 ms ticks) the old u32 deadline
        // math wrapped to an instant in the past, waking the reactor every
        // tick forever.
        wheel.cursor = (1u64 << 32) + 5;
        wheel.len = 1;
        let wait = wheel.next_wait(epoch).expect("entry scheduled");
        assert!(
            wait > Duration::from_secs(40 * 24 * 3600),
            "next_wait truncated the cursor: {wait:?}"
        );
    }
}
