//! End-to-end smoke over a real socket: start the server on an ephemeral
//! port, exercise every endpoint through the in-repo [`Client`], and pin
//! the response schemas. The CI smoke job runs exactly this suite, so
//! non-2xx answers and schema drift fail there, not in production.

use lopc_core::{GeneralModel, Machine, Scenario};
use lopc_serve::codec::PREDICTION_FIELDS;
use lopc_serve::json::{parse, Json};
use lopc_serve::server::{start, ServerConfig};
use lopc_serve::Client;

fn machine() -> Machine {
    Machine::new(32, 25.0, 200.0).with_c2(0.0)
}

fn start_server() -> lopc_serve::ServerHandle {
    start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Keys of an object, in order.
fn keys(v: &Json) -> Vec<&str> {
    match v {
        Json::Object(kv) => kv.iter().map(|(k, _)| k.as_str()).collect(),
        _ => panic!("expected an object, got {v:?}"),
    }
}

#[test]
fn all_endpoints_round_trip_over_a_socket() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    // Single predict, all five scenario kinds.
    let scenarios = vec![
        Scenario::AllToAll {
            machine: machine(),
            w: 1000.0,
        },
        Scenario::ClientServer {
            machine: machine(),
            w: 1000.0,
            ps: None,
        },
        Scenario::ForkJoin {
            machine: machine(),
            w: 2000.0,
            k: 4,
        },
        Scenario::SharedMemory {
            machine: machine(),
            w: 800.0,
        },
        Scenario::General(GeneralModel::client_server(machine(), 700.0, 3)),
    ];
    for s in &scenarios {
        let p = client
            .predict(s)
            .unwrap_or_else(|e| panic!("{}: {e}", s.kind()));
        let direct = lopc_core::scenario::solve(s).unwrap();
        assert!(
            lopc_serve::predictions_identical(&p, &direct),
            "{}: served {p:?} != library {direct:?}",
            s.kind()
        );
    }

    // Batch returns one prediction per scenario, in order.
    let batch = client.predict_batch(&scenarios).expect("batch");
    assert_eq!(batch.len(), scenarios.len());
    for (s, p) in scenarios.iter().zip(&batch) {
        let direct = lopc_core::scenario::solve(s).unwrap();
        assert!(
            lopc_serve::predictions_identical(p, &direct),
            "{}",
            s.kind()
        );
    }

    // Cluster topology is served even by a peerless single node.
    let topo = client
        .request_json("GET", "/v1/cluster", b"")
        .expect("cluster topology");
    let self_addr = server.addr().to_string();
    assert_eq!(topo.get("self").unwrap().as_str(), Some(self_addr.as_str()));
    assert_eq!(topo.get("nodes").unwrap().as_array().unwrap().len(), 1);
    assert!(topo.get("peers").unwrap().as_array().unwrap().is_empty());

    // Metrics reflect the traffic this test generated.
    let metrics = client.metrics().expect("metrics");
    let requests = metrics.get("requests").expect("requests");
    assert_eq!(requests.get("predict").unwrap().as_num(), Some(5.0));
    assert_eq!(requests.get("predict_batch").unwrap().as_num(), Some(1.0));
    let cache = metrics.get("cache").expect("cache");
    // The batch repeated all five scenarios: every one was a hit.
    assert_eq!(cache.get("hits").unwrap().as_num(), Some(5.0));
    assert_eq!(cache.get("misses").unwrap().as_num(), Some(5.0));

    server.shutdown();
}

#[test]
fn response_schemas_do_not_drift() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    // Prediction schema: exactly the documented fields, in order.
    let body = r#"{"kind":"all_to_all","machine":{"p":32,"st":25,"so":200,"c2":0},"w":1000}"#;
    let doc = client
        .request_json("POST", "/v1/predict", body.as_bytes())
        .expect("predict");
    assert_eq!(keys(&doc), PREDICTION_FIELDS.to_vec());

    // Batch schema: {"predictions": [prediction...]}.
    let batch_body = format!(r#"{{"scenarios":[{body}]}}"#);
    let doc = client
        .request_json("POST", "/v1/predict/batch", batch_body.as_bytes())
        .expect("batch");
    assert_eq!(keys(&doc), vec!["predictions"]);
    let preds = doc.get("predictions").unwrap().as_array().unwrap();
    assert_eq!(keys(&preds[0]), PREDICTION_FIELDS.to_vec());

    // Metrics schema: stable top-level sections and their key fields.
    let doc = client.metrics().expect("metrics");
    assert_eq!(
        keys(&doc),
        vec![
            "requests",
            "responses",
            "scenarios_solved",
            "cache",
            "interp",
            "connections",
            "reactor",
            "cluster",
            "latency_ns"
        ]
    );
    assert_eq!(
        keys(doc.get("requests").unwrap()),
        vec!["predict", "predict_batch", "metrics", "other", "total"]
    );
    assert_eq!(
        keys(doc.get("responses").unwrap()),
        vec!["ok_2xx", "client_error_4xx", "server_error_5xx"]
    );
    assert_eq!(
        keys(doc.get("cache").unwrap()),
        vec!["hits", "misses", "hit_rate"]
    );
    assert_eq!(
        keys(doc.get("interp").unwrap()),
        vec!["hits", "fallbacks", "cells_built", "cells_prefetched"]
    );
    assert_eq!(
        keys(doc.get("connections").unwrap()),
        vec![
            "open",
            "idle",
            "opened_total",
            "closed_total",
            "idle_timeouts_total"
        ]
    );
    assert_eq!(
        keys(doc.get("reactor").unwrap()),
        vec!["wakeups_total", "events_total"]
    );
    assert_eq!(
        keys(doc.get("cluster").unwrap()),
        vec![
            "nodes",
            "vnodes",
            "cells_shipped",
            "cells_received",
            "cells_rejected",
            "peers"
        ]
    );
    assert_eq!(keys(doc.get("latency_ns").unwrap()), vec!["p50", "p99"]);
    // The client's own connection is open (and mid-request, so not idle).
    let conns = doc.get("connections").unwrap();
    assert!(conns.get("open").unwrap().as_num().unwrap() >= 1.0);

    server.shutdown();
}

/// The Prometheus text exposition: reachable via both the query knob and
/// content negotiation, and its family names must not drift (a scraper
/// config references them by exact name).
#[test]
fn prometheus_exposition_schema_does_not_drift() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    // Generate a little traffic so counters are non-trivial.
    let body = r#"{"kind":"all_to_all","machine":{"p":32,"st":25,"so":200,"c2":0},"w":1000}"#;
    client
        .request_json("POST", "/v1/predict", body.as_bytes())
        .expect("predict");

    let text = client.metrics_prometheus().expect("prom metrics");
    let families: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    assert_eq!(
        families,
        vec![
            "lopc_requests_total",
            "lopc_responses_total",
            "lopc_scenarios_solved_total",
            "lopc_cache_hits_total",
            "lopc_cache_misses_total",
            "lopc_cache_hit_rate",
            "lopc_interp_hits_total",
            "lopc_interp_fallbacks_total",
            "lopc_interp_cells_built_total",
            "lopc_interp_cells_prefetched_total",
            "lopc_open_connections",
            "lopc_idle_connections",
            "lopc_connections_opened_total",
            "lopc_connections_closed_total",
            "lopc_idle_timeouts_total",
            "lopc_reactor_wakeups_total",
            "lopc_reactor_events_total",
            "lopc_cluster_ring_nodes",
            "lopc_cluster_cells_shipped_total",
            "lopc_cluster_cells_received_total",
            "lopc_cluster_cells_rejected_total",
            "lopc_cluster_peer_up",
            "lopc_cluster_peer_forwarded_total",
            "lopc_cluster_peer_errors_total",
            "lopc_request_latency_ns",
        ]
    );
    assert!(text.contains("lopc_requests_total{endpoint=\"predict\"} 1"));

    // Content negotiation: Accept: text/plain reaches the same renderer.
    let (status, body) = {
        use std::io::Write;
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut writer = std::io::BufWriter::new(stream.try_clone().unwrap());
        write!(
            writer,
            "GET /metrics HTTP/1.1\r\nhost: x\r\naccept: text/plain\r\n\r\n"
        )
        .unwrap();
        writer.flush().unwrap();
        let resp = lopc_serve::http::read_response(&mut std::io::BufReader::new(stream)).unwrap();
        (resp.status, String::from_utf8(resp.body).unwrap())
    };
    assert_eq!(status, 200);
    assert!(body.starts_with("# HELP lopc_requests_total"), "{body}");

    // The JSON document stays the default.
    let doc = client.metrics().expect("json metrics");
    assert!(doc.get("requests").is_some());

    server.shutdown();
}

/// Interpolation enabled over a real socket: `max_rel_err` reaches the
/// interp layer, answers stay within tolerance, the interp counters move,
/// and a bad tolerance is rejected with 400.
#[test]
fn interpolated_requests_over_a_socket() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    // A small off-grid W sweep with a 1e-3 budget.
    let scenarios: Vec<Scenario> = (0..40)
        .map(|i| Scenario::AllToAll {
            machine: machine(),
            w: 701.3 + 7.0 * i as f64,
        })
        .collect();
    let served = client
        .predict_batch_within(&scenarios, 1e-3)
        .expect("batch");
    for (s, p) in scenarios.iter().zip(&served) {
        let exact = lopc_core::scenario::solve(s).unwrap();
        let resid = lopc_serve::interp::rel_resid(p, &exact);
        assert!(resid <= 1e-3, "{}: residual {resid}", s.kind());
    }
    let svc = server.service();
    assert!(svc.interp().interp_hits() > 0, "sweep must interpolate");
    assert!(
        svc.cache().misses() < scenarios.len() as u64,
        "sweep must cost fewer solves than points"
    );

    // Single requests accept the field too.
    let single = client
        .predict_within(&scenarios[0], 1e-3)
        .expect("single predict");
    let exact = lopc_core::scenario::solve(&scenarios[0]).unwrap();
    assert!(lopc_serve::interp::rel_resid(&single, &exact) <= 1e-3);

    // Metrics surface the interp counters.
    let metrics = client.metrics().expect("metrics");
    let interp = metrics.get("interp").expect("interp section");
    assert!(interp.get("hits").unwrap().as_num().unwrap() > 0.0);

    // Malformed tolerances are a 400, not a silent exact solve.
    let bad = r#"{"kind":"all_to_all","machine":{"p":32,"st":25,"so":200,"c2":0},"w":1000,"max_rel_err":-0.5}"#;
    let (status, _) = client
        .request("POST", "/v1/predict", bad.as_bytes())
        .unwrap();
    assert_eq!(status, 400);
    let bad = r#"{"scenarios":[],"max_rel_err":2.0}"#;
    let (status, _) = client
        .request("POST", "/v1/predict/batch", bad.as_bytes())
        .unwrap();
    assert_eq!(status, 400);

    server.shutdown();
}

#[test]
fn http_errors_are_clean_json_not_hangs() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");

    let (status, body) = client.request("GET", "/nope", b"").unwrap();
    assert_eq!(status, 404);
    assert!(parse(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get("error")
        .is_some());

    let (status, _) = client.request("POST", "/v1/predict", b"{oops").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.request("GET", "/v1/predict", b"").unwrap();
    assert_eq!(status, 405);

    // Unsolvable scenario -> 422 with an error body; connection stays
    // usable afterwards (keep-alive survives application errors).
    let bad = r#"{"kind":"all_to_all","machine":{"p":1,"st":1,"so":1,"c2":1},"w":1}"#;
    let (status, _) = client
        .request("POST", "/v1/predict", bad.as_bytes())
        .unwrap();
    assert_eq!(status, 422);
    let metrics = client.metrics().expect("connection still alive");
    assert!(metrics.get("responses").is_some());

    // Query strings route to the path's endpoint, not 404.
    let (status, _) = client.request("GET", "/metrics?pretty=1", b"").unwrap();
    assert_eq!(status, 200);

    // Unexpected methods on known paths are 405, and HEAD responses carry
    // no body — the connection stays in sync afterwards.
    let (status, body) = client.request("HEAD", "/v1/predict", b"").unwrap();
    assert_eq!(status, 405);
    assert!(body.is_empty(), "HEAD response must have no body");
    let (status, _) = client.request("PUT", "/metrics", b"").unwrap();
    assert_eq!(status, 405);
    assert!(client.metrics().is_ok(), "framing survived HEAD and PUT");

    server.shutdown();
}

#[test]
fn concurrent_clients_are_served_in_parallel_workers() {
    let server = start_server();
    let addr = server.addr();
    let ws: Vec<f64> = (0..8).map(|i| 100.0 + 37.0 * i as f64).collect();
    std::thread::scope(|s| {
        for t in 0..4usize {
            let ws = &ws;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (i, &w) in ws.iter().enumerate() {
                    let scenario = Scenario::AllToAll {
                        machine: machine(),
                        w: w + (((t + i) % 2) as f64) * 0.5,
                    };
                    let p = client.predict(&scenario).expect("predict");
                    let direct = lopc_core::scenario::solve(&scenario).unwrap();
                    assert!(lopc_serve::predictions_identical(&p, &direct));
                }
            });
        }
    });
    let svc = server.service();
    assert_eq!(svc.metrics().requests_total(), 32);
    assert!(svc.cache().hits() > 0, "repeated scenarios must hit");
    server.shutdown();
}
