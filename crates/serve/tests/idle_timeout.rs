//! The keep-alive idle timeout: a connection with no request for
//! `idle_timeout` is closed by the reactor's timer wheel, and the peer
//! sees a clean EOF — not a reset, not a hang. Without this, every client
//! that forgets to close (or dies mid-keep-alive) parks a connection in
//! the reactor forever.

use std::time::{Duration, Instant};

use lopc_core::{Machine, Scenario};
use lopc_serve::server::{start, ServerConfig};
use lopc_serve::Client;

fn scenario() -> Scenario {
    Scenario::AllToAll {
        machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
        w: 1000.0,
    }
}

#[test]
fn idle_connection_is_closed_with_clean_eof() {
    let idle_timeout = Duration::from_millis(150);
    let server = start(ServerConfig {
        workers: 2,
        idle_timeout,
        ..ServerConfig::default()
    })
    .expect("bind");

    let mut client = Client::connect(server.addr()).expect("connect");
    client.predict(&scenario()).expect("predict");

    // Go idle. The reactor must close us once the timeout elapses; the
    // close arrives as EOF at a response boundary.
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let t0 = Instant::now();
    let eof = client.wait_for_eof().expect("read until close");
    let waited = t0.elapsed();
    assert!(eof, "expected clean EOF, got stray bytes");
    assert!(
        waited >= idle_timeout.mul_div(3, 4),
        "closed after only {waited:?}, before the {idle_timeout:?} timeout"
    );
    assert!(
        waited < Duration::from_secs(5),
        "idle close took {waited:?}, timer wheel never fired"
    );
    assert_eq!(server.service().metrics().idle_timeouts(), 1);
    assert_eq!(server.service().metrics().open_connections(), 0);

    server.shutdown();
}

#[test]
fn active_connection_outlives_the_idle_timeout() {
    let idle_timeout = Duration::from_millis(200);
    let server = start(ServerConfig {
        workers: 2,
        idle_timeout,
        ..ServerConfig::default()
    })
    .expect("bind");

    // Keep issuing requests across several timeout windows: activity
    // resets the deadline, so the connection must survive throughout.
    let mut client = Client::connect(server.addr()).expect("connect");
    let t0 = Instant::now();
    while t0.elapsed() < idle_timeout * 4 {
        client.predict(&scenario()).expect("keep-alive request");
        std::thread::sleep(idle_timeout / 4);
    }
    assert_eq!(server.service().metrics().idle_timeouts(), 0);

    server.shutdown();
}

#[test]
fn only_the_idle_connection_is_reaped() {
    let idle_timeout = Duration::from_millis(200);
    let server = start(ServerConfig {
        workers: 2,
        idle_timeout,
        ..ServerConfig::default()
    })
    .expect("bind");

    let mut idle = Client::connect(server.addr()).expect("connect idle");
    idle.predict(&scenario()).expect("predict");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let mut active = Client::connect(server.addr()).expect("connect active");
    let t0 = Instant::now();
    while t0.elapsed() < idle_timeout * 3 {
        active.predict(&scenario()).expect("active request");
        std::thread::sleep(idle_timeout / 5);
    }

    // The idle peer was reaped...
    assert!(idle.wait_for_eof().expect("idle sees close"));
    assert_eq!(server.service().metrics().idle_timeouts(), 1);
    // ...and the active one still works.
    active.predict(&scenario()).expect("still serving");

    server.shutdown();
}

/// `Duration::mul_div` does not exist on stable; tiny helper for the
/// fraction-of-timeout assertion.
trait MulDiv {
    fn mul_div(self, num: u32, den: u32) -> Duration;
}

impl MulDiv for Duration {
    fn mul_div(self, num: u32, den: u32) -> Duration {
        self * num / den
    }
}
