//! Cell-transfer wire-format hardening: the `CellExport` JSON codec and
//! the import gate behind `POST /v1/cell/{key}`.
//!
//! Three claims, each load-bearing for a subsystem that accepts cache
//! state from the network:
//!
//! 1. **Round-trip**: every export a real cache produces survives
//!    `cell_to_json` → text → `parse` → `cell_from_json` field-for-field,
//!    bit-exact `f64`s included — and wire keys survive
//!    `from_wire(to_wire(k))`. Shipping must not perturb what it ships.
//! 2. **No panics**: arbitrary corruptions of valid cell documents (and
//!    pure byte soup) make the decoder *and* the import path return an
//!    error, never panic. `/v1/cell` is an internet-facing endpoint.
//! 3. **Tampering is rejected**: a decoded cell whose certificate or
//!    corner data has been forged fails the importer's spot-probe
//!    re-verification, and the rejection is permanent for that key.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

use lopc_core::{Machine, Scenario};
use lopc_serve::json::parse;
use lopc_serve::{
    cell_from_json, cell_to_json, CellExport, CellKey, ImportOutcome, InterpCache, SolutionCache,
};

fn fresh_cache() -> InterpCache {
    InterpCache::new(SolutionCache::new(8, 256), 8, 64)
}

/// Warm a cache across all four interpolation-eligible variants and export
/// every resident cell. Built once — cell builds cost real solves.
fn export_corpus() -> &'static Vec<CellExport> {
    static CORPUS: OnceLock<Vec<CellExport>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let cache = fresh_cache();
        let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
        let scenarios = |w: f64| {
            [
                Scenario::AllToAll { machine, w },
                Scenario::SharedMemory { machine, w },
                Scenario::ClientServer {
                    machine,
                    w,
                    ps: Some(3),
                },
                Scenario::ForkJoin { machine, w, k: 4 },
            ]
        };
        for i in 0..40 {
            for scenario in scenarios(700.0 + 12.0 * i as f64) {
                cache
                    .predict(&scenario, 5e-2)
                    .expect("warm predict must solve");
            }
        }
        let exports: Vec<CellExport> = cache
            .resident_cell_keys()
            .iter()
            .filter_map(|key| cache.export_cell(key))
            .collect();
        assert!(
            exports.len() >= 4,
            "warm-up produced only {} exportable cells",
            exports.len()
        );
        exports
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Export → JSON text → export, exactly (both renderers).
    #[test]
    fn cell_export_round_trip(seed in 0u64..1_000_000) {
        let corpus = export_corpus();
        let export = &corpus[(seed as usize) % corpus.len()];
        for text in [
            cell_to_json(export).to_compact(),
            cell_to_json(export).to_pretty(),
        ] {
            let doc = parse(&text);
            prop_assert!(doc.is_ok(), "emitted cell does not parse: {text}");
            let back = cell_from_json(&doc.unwrap());
            prop_assert!(back.is_ok(), "emitted cell does not decode: {text}");
            prop_assert_eq!(back.unwrap(), export.clone());
        }
    }

    /// Wire key → string → wire key, exactly — and the round-tripped key
    /// hashes (routes) identically.
    #[test]
    fn wire_key_round_trip(seed in 0u64..1_000_000) {
        let corpus = export_corpus();
        let wire = &corpus[(seed as usize) % corpus.len()].wire_key;
        let key = CellKey::from_wire(wire);
        prop_assert!(key.is_some(), "exported key does not parse: {wire}");
        let key = key.unwrap();
        prop_assert_eq!(&key.to_wire(), wire);
        let again = CellKey::from_wire(&key.to_wire()).unwrap();
        prop_assert_eq!(again.hash64(), key.hash64());
    }

    /// A round-tripped export is still *admissible*: decode the wire form
    /// into a fresh node and the verifier accepts it.
    #[test]
    fn round_tripped_exports_still_verify(seed in 0u64..64) {
        let corpus = export_corpus();
        let export = &corpus[(seed as usize) % corpus.len()];
        let doc = parse(&cell_to_json(export).to_compact()).unwrap();
        let shipped = cell_from_json(&doc).unwrap();
        let importer = fresh_cache();
        prop_assert_eq!(importer.import_cell(&shipped), ImportOutcome::Admitted);
        prop_assert_eq!(importer.cells_rejected(), 0);
    }
}

/// Run a decoder on hostile input, converting panics into test failures.
fn assert_no_panic<T>(input: &[u8], what: &str, f: impl Fn(&[u8]) -> T + std::panic::UnwindSafe) {
    let owned = input.to_vec();
    let result = std::panic::catch_unwind(move || {
        f(&owned);
    });
    assert!(
        result.is_ok(),
        "{what} panicked on {:?}",
        String::from_utf8_lossy(input)
    );
}

fn corrupt(base: &[u8], rng: &mut SmallRng) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.random_range(0..3usize) {
        0 if !bytes.is_empty() => {
            let i = rng.random_range(0..bytes.len());
            bytes[i] = rng.random_range(0..256usize) as u8;
        }
        1 => {
            let keep = rng.random_range(0..bytes.len().max(1));
            bytes.truncate(keep);
        }
        _ => {
            let i = rng.random_range(0..bytes.len() + 1);
            bytes.insert(i, rng.random_range(0..256usize) as u8);
        }
    }
    bytes
}

/// Corrupted cell documents (and pure garbage) never panic the decoder —
/// and whatever still *decodes* never panics the import path either: the
/// verifier classifies it as admitted or rejected, both defined outcomes.
#[test]
fn cell_decoder_and_import_fuzz_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xce11);
    let corpus = export_corpus();
    let seeds: Vec<Vec<u8>> = corpus
        .iter()
        .map(|e| cell_to_json(e).to_compact().into_bytes())
        .collect();
    let importer = fresh_cache();
    for round in 0..1500 {
        let mutated = if round % 10 == 0 {
            (0..rng.random_range(0..96usize))
                .map(|_| rng.random_range(0..256usize) as u8)
                .collect()
        } else {
            corrupt(&seeds[round % seeds.len()], &mut rng)
        };
        // `AssertUnwindSafe`: the importer is shared across rounds on
        // purpose — a poisoned key from one round must not break later
        // rounds either.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Ok(text) = std::str::from_utf8(&mutated) {
                if let Ok(doc) = parse(text) {
                    if let Ok(export) = cell_from_json(&doc) {
                        let _ = importer.import_cell(&export);
                    }
                }
            }
        }));
        assert!(
            result.is_ok(),
            "cell decoder/import panicked on {:?}",
            String::from_utf8_lossy(&mutated)
        );
    }
}

/// Corrupted wire keys never panic `from_wire`; whatever still parses
/// round-trips through `to_wire` to an identical key.
#[test]
fn wire_key_fuzz_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x4e7);
    let corpus = export_corpus();
    let seeds: Vec<Vec<u8>> = corpus
        .iter()
        .map(|e| e.wire_key.clone().into_bytes())
        .collect();
    for round in 0..2000 {
        let mutated = if round % 10 == 0 {
            (0..rng.random_range(0..256usize))
                .map(|_| rng.random_range(0..256usize) as u8)
                .collect()
        } else {
            corrupt(&seeds[round % seeds.len()], &mut rng)
        };
        assert_no_panic(&mutated, "CellKey::from_wire", |bytes| {
            if let Ok(text) = std::str::from_utf8(bytes) {
                if let Some(key) = CellKey::from_wire(text) {
                    let wire = key.to_wire();
                    assert_eq!(
                        CellKey::from_wire(&wire).map(|k| k.to_wire()),
                        Some(wire),
                        "parsed key does not round-trip"
                    );
                }
            }
        });
    }
}

/// Certificate/corner forgery arriving over the *wire format* (decode →
/// import) is rejected by spot-probe re-verification, and the key is
/// pinned exact afterwards: re-shipping the honest cell cannot displace
/// the distrust verdict.
#[test]
fn tampered_wire_cells_are_rejected() {
    let corpus = export_corpus();
    let honest = &corpus[0];
    let reship = |export: &CellExport| {
        let doc = parse(&cell_to_json(export).to_compact()).unwrap();
        cell_from_json(&doc).unwrap()
    };

    // Forged certificate: claim far more precision than the probes support.
    {
        let importer = fresh_cache();
        let mut forged = honest.clone();
        forged.cert = 1e-12;
        let outcome = importer.import_cell(&reship(&forged));
        assert!(
            matches!(outcome, ImportOutcome::Rejected(_)),
            "forged cert must be rejected, got {outcome:?}"
        );
        assert_eq!(importer.cells_rejected(), 1);
        // The key is now poisoned: even the honest cell bounces off it.
        let honest_again = importer.import_cell(&reship(honest));
        assert_eq!(honest_again, ImportOutcome::AlreadyResident);
        assert_eq!(
            importer.cells_received(),
            0,
            "nothing may be admitted for a poisoned key"
        );
    }

    // Forged corners: scaled solutions no longer match the local solver at
    // the spot-probe, regardless of the (honest) certificate.
    {
        let importer = fresh_cache();
        let mut forged = honest.clone();
        for corner in &mut forged.corners {
            corner.r *= 1.5;
        }
        let outcome = importer.import_cell(&reship(&forged));
        assert!(
            matches!(outcome, ImportOutcome::Rejected(_)),
            "forged corners must be rejected, got {outcome:?}"
        );
    }

    // Key swap: the body re-keyed onto a different (also valid) key fails
    // the identity recomputation — a cell cannot be replayed onto another
    // slot.
    {
        let importer = fresh_cache();
        let donor = corpus
            .iter()
            .find(|e| e.wire_key != honest.wire_key)
            .expect("corpus has at least two distinct keys");
        let mut forged = honest.clone();
        forged.wire_key = donor.wire_key.clone();
        let outcome = importer.import_cell(&reship(&forged));
        assert!(
            matches!(outcome, ImportOutcome::Rejected(_)),
            "re-keyed cell must be rejected, got {outcome:?}"
        );
    }
}
