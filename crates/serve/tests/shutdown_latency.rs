//! Regression gate on server shutdown latency.
//!
//! Shutdown is an *event*: the flag plus an eventfd doorbell wake the
//! reactor out of `epoll_wait`, it closes the listener and every idle
//! connection immediately, waits only for requests already dispatched to
//! workers, and joins. There is no poll interval anywhere on the path, so
//! shutdown must complete — every thread joined — well inside 50 ms even
//! with a thousand idle keep-alive connections parked in the reactor. If
//! this assert starts failing, something on the shutdown path has regressed
//! into waiting on a timeout; fix that rather than loosening the bound —
//! slow shutdown breaks test suites and rolling restarts alike.

use std::time::{Duration, Instant};

use lopc_core::{Machine, Scenario};
use lopc_serve::server::{start, ServerConfig};
use lopc_serve::Client;

const BOUND: Duration = Duration::from_millis(50);

fn config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn idle_server_shuts_down_quickly() {
    let server = start(config()).expect("bind");
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "idle shutdown took {took:?} (bound {BOUND:?})"
    );
}

#[test]
fn shutdown_with_idle_keepalive_connections() {
    let server = start(config()).expect("bind");
    // Connections mid-keep-alive: they cost the reactor a slab slot each,
    // never a worker thread, and shutdown closes them without waiting.
    let scenario = Scenario::AllToAll {
        machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
        w: 1000.0,
    };
    let mut clients = Vec::new();
    for _ in 0..2 {
        let mut c = Client::connect(server.addr()).expect("connect");
        c.predict(&scenario).expect("predict");
        clients.push(c); // keep the connection open and idle
    }
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "shutdown with idle keep-alive connections took {took:?} (bound {BOUND:?})"
    );
    drop(clients);
}

#[test]
fn shutdown_with_a_thousand_idle_connections() {
    let server = start(config()).expect("bind");
    let addr = server.addr();
    // A C10K-style population: 1000 established, idle, keep-alive
    // connections. Event-driven teardown closes them all inside the bound;
    // under the old thread-per-connection core this many idle peers was
    // structurally impossible to even hold with 2 workers.
    let conns: Vec<std::net::TcpStream> = (0..1000)
        .map(|i| std::net::TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}")))
        .collect();
    // Let the reactor finish accepting the tail of the burst.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.service().metrics().open_connections() < 1000 {
        assert!(
            Instant::now() < deadline,
            "reactor never accepted 1000 conns"
        );
        std::thread::yield_now();
    }
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "shutdown with 1000 idle connections took {took:?} (bound {BOUND:?})"
    );
    // Every peer sees the close as a clean EOF, not a hang.
    for (i, conn) in conns.into_iter().enumerate() {
        use std::io::Read;
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        let n = (&conn)
            .read(&mut buf)
            .unwrap_or_else(|e| panic!("conn #{i}: {e}"));
        assert_eq!(n, 0, "conn #{i}: expected EOF, got a byte");
    }
}

#[test]
fn shutdown_after_traffic_bursts() {
    let server = start(config()).expect("bind");
    let addr = server.addr();
    // A burst of short-lived connections that have already closed: stale
    // slab slots and queued completions must not delay shutdown.
    for _ in 0..8 {
        let mut c = Client::connect(addr).expect("connect");
        let _ = c.metrics().expect("metrics");
    }
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "post-burst shutdown took {took:?} (bound {BOUND:?})"
    );
}
