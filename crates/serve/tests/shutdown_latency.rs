//! Regression gate on server shutdown latency.
//!
//! Shutdown is an *event*: the flag plus an eventfd doorbell wake the
//! reactor out of `epoll_wait`, it closes the listener and every idle
//! connection immediately, waits only for requests already dispatched to
//! workers, and joins. There is no poll interval anywhere on the path, so
//! shutdown must complete — every thread joined — well inside 50 ms even
//! with a thousand idle keep-alive connections parked in the reactor. If
//! this assert starts failing, something on the shutdown path has regressed
//! into waiting on a timeout; fix that rather than loosening the bound —
//! slow shutdown breaks test suites and rolling restarts alike.

use std::time::{Duration, Instant};

use lopc_core::{Machine, Scenario};
use lopc_serve::server::{start, ServerConfig};
use lopc_serve::Client;

const BOUND: Duration = Duration::from_millis(50);

fn config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn idle_server_shuts_down_quickly() {
    let server = start(config()).expect("bind");
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "idle shutdown took {took:?} (bound {BOUND:?})"
    );
}

#[test]
fn shutdown_with_idle_keepalive_connections() {
    let server = start(config()).expect("bind");
    // Connections mid-keep-alive: they cost the reactor a slab slot each,
    // never a worker thread, and shutdown closes them without waiting.
    let scenario = Scenario::AllToAll {
        machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
        w: 1000.0,
    };
    let mut clients = Vec::new();
    for _ in 0..2 {
        let mut c = Client::connect(server.addr()).expect("connect");
        c.predict(&scenario).expect("predict");
        clients.push(c); // keep the connection open and idle
    }
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "shutdown with idle keep-alive connections took {took:?} (bound {BOUND:?})"
    );
    drop(clients);
}

#[test]
fn shutdown_with_a_thousand_idle_connections() {
    let server = start(config()).expect("bind");
    let addr = server.addr();
    // A C10K-style population: 1000 established, idle, keep-alive
    // connections. Event-driven teardown closes them all inside the bound;
    // under the old thread-per-connection core this many idle peers was
    // structurally impossible to even hold with 2 workers.
    let conns: Vec<std::net::TcpStream> = (0..1000)
        .map(|i| std::net::TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e}")))
        .collect();
    // Let the reactor finish accepting the tail of the burst.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.service().metrics().open_connections() < 1000 {
        assert!(
            Instant::now() < deadline,
            "reactor never accepted 1000 conns"
        );
        std::thread::yield_now();
    }
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "shutdown with 1000 idle connections took {took:?} (bound {BOUND:?})"
    );
    // Every peer sees the close as a clean EOF, not a hang.
    for (i, conn) in conns.into_iter().enumerate() {
        use std::io::Read;
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        let n = (&conn)
            .read(&mut buf)
            .unwrap_or_else(|e| panic!("conn #{i}: {e}"));
        assert_eq!(n, 0, "conn #{i}: expected EOF, got a byte");
    }
}

#[test]
fn shutdown_races_batch_dispatch_without_hanging() {
    // Regression: a batch job the reactor dispatches while handling the
    // very event batch that delivered the shutdown doorbell can land in
    // the queue after the last worker — seeing the flag over an empty
    // queue — has already exited. The reactor must execute such stranded
    // jobs itself during its drain; before it did, shutdown joined a
    // reactor spinning on an in-flight count that could never reach zero.
    // The window is microseconds wide, so hammer the interleaving.
    use std::io::Write;
    // Enough lanes to exceed the reactor's inline-batch cap: the race under
    // test only exists for batches that travel to the worker pool.
    let lanes: Vec<String> = (0..64)
        .map(|i| {
            format!(
                r#"{{"kind":"all_to_all","machine":{{"p":32,"st":25.0,"so":200.0,"c2":0.0}},"w":{}.0}}"#,
                77 + i
            )
        })
        .collect();
    let body = format!(r#"{{"scenarios":[{}]}}"#, lanes.join(","));
    let request = format!(
        "POST /v1/predict/batch HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    for round in 0..40 {
        let server = start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .expect("bind");
        let mut conn = std::net::TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(request.as_bytes()).expect("write");
        // Deliberately no synchronisation: the request's readability and
        // the shutdown doorbell race into the same epoll batch.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            server.shutdown();
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(10))
            .unwrap_or_else(|_| panic!("round {round}: shutdown hung on a stranded batch job"));
        drop(conn);
    }
}

#[test]
fn shutdown_after_traffic_bursts() {
    let server = start(config()).expect("bind");
    let addr = server.addr();
    // A burst of short-lived connections that have already closed: stale
    // slab slots and queued completions must not delay shutdown.
    for _ in 0..8 {
        let mut c = Client::connect(addr).expect("connect");
        let _ = c.metrics().expect("metrics");
    }
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "post-burst shutdown took {took:?} (bound {BOUND:?})"
    );
}
