//! Regression gate on server shutdown latency.
//!
//! Worker threads poll the shutdown flag between requests through a 50 ms
//! read-timeout `fill_buf` (see `server::IDLE_POLL`), and the accept loop
//! is unblocked by a throwaway connection. Shutdown must therefore
//! complete — every thread joined — well inside 200 ms even with idle
//! keep-alive connections pinning every worker. If this assert starts
//! failing, tighten the poll interval (or replace the poll with a real
//! readiness mechanism) rather than loosening the bound: slow shutdown
//! breaks test suites and rolling restarts alike.

use std::time::{Duration, Instant};

use lopc_core::{Machine, Scenario};
use lopc_serve::server::{start, ServerConfig};
use lopc_serve::Client;

const BOUND: Duration = Duration::from_millis(200);

fn config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn idle_server_shuts_down_quickly() {
    let server = start(config()).expect("bind");
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "idle shutdown took {took:?} (bound {BOUND:?})"
    );
}

#[test]
fn shutdown_with_idle_keepalive_connections_pinning_every_worker() {
    let server = start(config()).expect("bind");
    // Two workers, two connections mid-keep-alive: both workers sit in the
    // between-requests poll loop when shutdown arrives.
    let scenario = Scenario::AllToAll {
        machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
        w: 1000.0,
    };
    let mut clients = Vec::new();
    for _ in 0..2 {
        let mut c = Client::connect(server.addr()).expect("connect");
        c.predict(&scenario).expect("predict");
        clients.push(c); // keep the connection open and idle
    }
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "shutdown with idle keep-alive connections took {took:?} (bound {BOUND:?})"
    );
    drop(clients);
}

#[test]
fn shutdown_after_traffic_bursts() {
    let server = start(config()).expect("bind");
    let addr = server.addr();
    // A burst of short-lived connections that have already closed: the
    // conn queue may still hold drained entries; shutdown must not wait on
    // them beyond the poll interval.
    for _ in 0..8 {
        let mut c = Client::connect(addr).expect("connect");
        let _ = c.metrics().expect("metrics");
    }
    let t0 = Instant::now();
    server.shutdown();
    let took = t0.elapsed();
    assert!(
        took < BOUND,
        "post-burst shutdown took {took:?} (bound {BOUND:?})"
    );
}
