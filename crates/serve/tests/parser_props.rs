//! Parser hardening: property round-trips and malformed-input fuzz for the
//! serving layer's decoders.
//!
//! Two claims, each load-bearing for an internet-facing parser:
//!
//! 1. **Round-trip**: for any JSON value the emitter can produce,
//!    `parse(render(v)) == v` — including bit-exact `f64`s — and for any
//!    scenario, `decode(encode(s)) == s`. This is what makes served
//!    predictions identical to library calls.
//! 2. **No panics**: arbitrary byte soup — random garbage, truncations, and
//!    single-byte corruptions of *valid* documents — makes every decoder
//!    (JSON, scenario codec, HTTP request parser) return an error or a
//!    different valid parse, never panic. Each fuzz case runs the decoder
//!    inside `catch_unwind` so a panic fails the test with the offending
//!    input attached.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::BufReader;

use lopc_core::{GeneralModel, Machine, Scenario};
use lopc_serve::http::{read_request, read_response, HttpError, Request, RequestParser};
use lopc_serve::json::{parse, Json};
use lopc_serve::{scenario_from_json, scenario_to_json};

/// A random JSON value: depth-bounded, with finite numbers drawn across
/// magnitudes (including exact integers, the emitter's special case).
fn random_json(rng: &mut SmallRng, depth: usize) -> Json {
    let choice = if depth == 0 {
        rng.random_range(0..4usize) // leaves only
    } else {
        rng.random_range(0..6usize)
    };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(rng.random::<f64>() < 0.5),
        2 => {
            let mag = rng.random_range(-12.0..15.0f64);
            let x = (rng.random::<f64>() - 0.5) * 10f64.powf(mag);
            // Mix in exact integers half the time.
            Json::Num(if rng.random::<f64>() < 0.5 {
                x.trunc()
            } else {
                x
            })
        }
        3 => {
            let len = rng.random_range(0..12usize);
            Json::Str(
                (0..len)
                    .map(|_| {
                        // Printable ASCII, escapes, a control char, and a
                        // multi-byte char.
                        match rng.random_range(0..8usize) {
                            0 => '"',
                            1 => '\\',
                            2 => '\n',
                            3 => '\u{1}',
                            4 => 'é',
                            _ => (b'a' + rng.random_range(0..26usize) as u8) as char,
                        }
                    })
                    .collect(),
            )
        }
        4 => {
            let len = rng.random_range(0..5usize);
            Json::Array((0..len).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.random_range(0..5usize);
            Json::Object(
                (0..len)
                    .map(|i| (format!("k{i}"), random_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// A random valid scenario (parameters may be model-invalid — the codec
/// must round-trip them regardless; validation is the solver's job).
fn random_scenario(rng: &mut SmallRng) -> Scenario {
    let machine = Machine::new(
        rng.random_range(2..64usize),
        rng.random_range(0.0..500.0f64),
        rng.random_range(0.0..1000.0f64),
    )
    .with_c2(rng.random_range(0.0..4.0f64));
    let w = rng.random_range(0.0..5000.0f64);
    match rng.random_range(0..5usize) {
        0 => Scenario::AllToAll { machine, w },
        1 => Scenario::ClientServer {
            machine,
            w,
            ps: if rng.random::<f64>() < 0.5 {
                None
            } else {
                Some(rng.random_range(1..machine.p))
            },
        },
        2 => Scenario::ForkJoin {
            machine,
            w,
            k: rng.random_range(1..8u32),
        },
        3 => Scenario::SharedMemory { machine, w },
        _ => {
            let mut model = GeneralModel::homogeneous_all_to_all(machine, w);
            if rng.random::<f64>() < 0.3 {
                model = model.with_protocol_processor();
            }
            if rng.random::<f64>() < 0.5 {
                model.w[0] = None;
                for x in &mut model.v[0] {
                    *x = 0.0;
                }
            }
            Scenario::General(model)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Value → JSON text → value, both renderers.
    #[test]
    fn json_round_trip(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let v = random_json(&mut rng, 3);
        let pretty = parse(&v.to_pretty());
        prop_assert!(pretty.is_ok(), "pretty parse failed: {:?}", pretty);
        prop_assert_eq!(pretty.unwrap(), v.clone());
        let compact = parse(&v.to_compact());
        prop_assert!(compact.is_ok(), "compact parse failed: {:?}", compact);
        prop_assert_eq!(compact.unwrap(), v);
    }

    /// Scenario → wire object → scenario, exactly.
    #[test]
    fn scenario_round_trip(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let s = random_scenario(&mut rng);
        let doc = scenario_to_json(&s).to_compact();
        let parsed = parse(&doc);
        prop_assert!(parsed.is_ok(), "{}", doc);
        let back = scenario_from_json(&parsed.unwrap());
        prop_assert!(back.is_ok(), "{}", doc);
        prop_assert_eq!(back.unwrap(), s);
    }
}

/// Run a decoder on hostile input, converting panics into test failures.
fn assert_no_panic<T>(input: &[u8], what: &str, f: impl Fn(&[u8]) -> T + std::panic::UnwindSafe) {
    let owned = input.to_vec();
    let result = std::panic::catch_unwind(move || {
        f(&owned);
    });
    assert!(
        result.is_ok(),
        "{what} panicked on {:?}",
        String::from_utf8_lossy(input)
    );
}

fn corrupt(base: &[u8], rng: &mut SmallRng) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.random_range(0..3usize) {
        0 if !bytes.is_empty() => {
            // Flip one byte to an arbitrary value.
            let i = rng.random_range(0..bytes.len());
            bytes[i] = rng.random_range(0..256usize) as u8;
        }
        1 => {
            // Truncate.
            let keep = rng.random_range(0..bytes.len().max(1));
            bytes.truncate(keep);
        }
        _ => {
            // Insert a random byte.
            let i = rng.random_range(0..bytes.len() + 1);
            bytes.insert(i, rng.random_range(0..256usize) as u8);
        }
    }
    bytes
}

#[test]
fn json_and_codec_fuzz_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x10bc);
    let mut seeds: Vec<Vec<u8>> = (0..20)
        .map(|i| {
            let mut vr = SmallRng::seed_from_u64(i);
            let s = random_scenario(&mut vr);
            scenario_to_json(&s).to_compact().into_bytes()
        })
        .collect();
    seeds.push(
        br#"{"kind":"all_to_all","machine":{"p":32,"st":25,"so":200,"c2":0},"w":1000}"#.to_vec(),
    );
    for round in 0..2000 {
        let base = &seeds[round % seeds.len()];
        let mutated = if round % 10 == 0 {
            // Pure garbage rounds.
            (0..rng.random_range(0..64usize))
                .map(|_| rng.random_range(0..256usize) as u8)
                .collect()
        } else {
            corrupt(base, &mut rng)
        };
        assert_no_panic(&mutated, "json/scenario decoder", |bytes| {
            if let Ok(text) = std::str::from_utf8(bytes) {
                if let Ok(doc) = parse(text) {
                    let _ = scenario_from_json(&doc);
                }
            }
        });
    }
}

#[test]
fn http_parsers_fuzz_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0x477);
    let request =
        b"POST /v1/predict HTTP/1.1\r\nhost: x\r\ncontent-length: 13\r\n\r\n{\"kind\":\"x\"}!";
    let response =
        b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\n\r\n{}";
    for round in 0..2000 {
        let (base, is_request): (&[u8], bool) = if round % 2 == 0 {
            (request, true)
        } else {
            (response, false)
        };
        let mutated = if round % 10 == 0 {
            (0..rng.random_range(0..96usize))
                .map(|_| rng.random_range(0..256usize) as u8)
                .collect()
        } else {
            corrupt(base, &mut rng)
        };
        if is_request {
            assert_no_panic(&mutated, "http request parser", |bytes| {
                let _ = read_request(&mut BufReader::new(bytes));
            });
        } else {
            assert_no_panic(&mutated, "http response parser", |bytes| {
                let _ = read_response(&mut BufReader::new(bytes));
            });
        }
    }
}

// -- incremental vs one-shot parser ---------------------------------------
//
// The reactor parses requests with the resumable `RequestParser`, fed
// whatever fragments the socket delivers; `read_request` is the blocking
// reference. The two must agree *byte for byte* on every input and every
// split, or served behaviour would depend on TCP segmentation.

/// Reference result: the one-shot blocking parser over the whole input.
fn oneshot(input: &[u8]) -> Result<Option<Request>, HttpError> {
    read_request(&mut BufReader::new(input))
}

/// Feed `input` to the incremental parser in `chunk`-byte pieces, polling
/// after every piece; `Ok(None)` means the input ran out mid-request.
fn drip(input: &[u8], chunk: usize) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new();
    for piece in input.chunks(chunk.max(1)) {
        parser.push(piece);
        match parser.poll() {
            Ok(None) => continue,
            done => return done,
        }
    }
    Ok(None)
}

/// EOF-truncation errors only the blocking parser can see: it knows the
/// stream ended, while the incremental parser just reports "need more
/// bytes" (EOF is the reactor's signal, out of band from parsing). Every
/// other error must match word for word.
fn is_eof_truncation(e: &HttpError) -> bool {
    matches!(e, HttpError::Bad(m) if m == "truncated header line"
        || m == "connection closed inside headers"
        || m == "connection closed inside body")
}

/// Assert the incremental parse of `input` split into `chunk`-byte pieces
/// is byte-for-byte equivalent to the one-shot reference.
fn assert_parsers_agree(input: &[u8], chunk: usize) {
    let reference = oneshot(input);
    let incremental = drip(input, chunk);
    match (&reference, &incremental) {
        // Complete request: identical parse, field for field, byte for
        // byte (Request derives Eq).
        (Ok(Some(a)), Ok(Some(b))) => assert_eq!(
            a,
            b,
            "chunk={chunk}: parses differ on {:?}",
            String::from_utf8_lossy(input)
        ),
        // Clean empty input: both report "nothing yet".
        (Ok(None), Ok(None)) => {}
        // The stream died mid-request: the blocking parser reports the
        // truncation; the incremental one is still waiting for bytes that
        // will never come (the reactor turns that EOF into a close).
        (Err(e), Ok(None)) if is_eof_truncation(e) => {}
        // Any other error: same error, same wording.
        (Err(HttpError::Bad(a)), Err(HttpError::Bad(b))) => assert_eq!(
            a,
            b,
            "chunk={chunk}: error wording differs on {:?}",
            String::from_utf8_lossy(input)
        ),
        _ => panic!(
            "chunk={chunk}: one-shot {reference:?} vs incremental {incremental:?} on {:?}",
            String::from_utf8_lossy(input)
        ),
    }
}

fn valid_request_corpus() -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = (0..10u64)
        .map(|i| {
            let mut vr = SmallRng::seed_from_u64(i);
            let body = scenario_to_json(&random_scenario(&mut vr)).to_compact();
            format!(
                "POST /v1/predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            )
            .into_bytes()
        })
        .collect();
    corpus.push(b"GET /metrics HTTP/1.1\r\n\r\n".to_vec());
    corpus.push(
        b"GET /metrics?format=prom HTTP/1.1\r\naccept: text/plain\r\nconnection: close\r\n\r\n"
            .to_vec(),
    );
    corpus.push(b"GET / HTTP/1.1\nhost: x\n\n".to_vec()); // bare-LF lines
    corpus.push(b"HEAD /v1/predict? HTTP/1.1\r\nx: \xc3\xa9\r\n\r\n".to_vec());
    corpus
}

fn malformed_request_corpus() -> Vec<Vec<u8>> {
    [
        &b"GARBAGE\r\n\r\n"[..],
        b"GET /\r\n\r\n",
        b"GET / HTTP/2.0\r\n\r\n",
        b"GET / HTTP/1.1 extra\r\n\r\n",
        b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
        b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
        b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        b"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 50\r\n\r\nhello",
        b"GET / HTTP/1.1\r\ntrunc",
        b"\xff\xfe GET / HTTP/1.1\r\n\r\n",
        b"",
    ]
    .iter()
    .map(|b| b.to_vec())
    .collect()
}

/// Every corpus request, dripped one byte at a time — every byte boundary
/// is a resume point — plus a spread of other chunk sizes.
#[test]
fn incremental_parser_matches_oneshot_at_every_boundary() {
    let mut corpus = valid_request_corpus();
    corpus.extend(malformed_request_corpus());
    for input in &corpus {
        for chunk in [1, 2, 3, 7, input.len().max(1)] {
            assert_parsers_agree(input, chunk);
        }
    }
}

/// Two-piece splits at *every* position: the resume happens exactly once,
/// at each possible boundary (request line, header, separator, body).
#[test]
fn incremental_parser_matches_oneshot_for_every_two_piece_split() {
    for input in valid_request_corpus() {
        let reference = oneshot(&input)
            .expect("corpus is valid")
            .expect("non-empty");
        for split in 0..=input.len() {
            let mut parser = RequestParser::new();
            parser.push(&input[..split]);
            let early = parser.poll();
            let got = match early {
                Ok(Some(req)) => {
                    assert_eq!(split, input.len(), "request completed before all bytes");
                    req
                }
                Ok(None) => {
                    parser.push(&input[split..]);
                    parser
                        .poll()
                        .unwrap_or_else(|e| panic!("split {split}: {e}"))
                        .unwrap_or_else(|| panic!("split {split}: incomplete"))
                }
                Err(e) => panic!("split {split}: {e}"),
            };
            assert_eq!(got, reference, "split at byte {split}");
        }
    }
}

/// Random corruptions of valid requests, dripped at several chunk sizes:
/// the two parsers must classify every mutation identically.
#[test]
fn corrupted_requests_classify_identically_under_drip() {
    let mut rng = SmallRng::seed_from_u64(0xd21b);
    let corpus = valid_request_corpus();
    for round in 0..1500 {
        let mutated = corrupt(&corpus[round % corpus.len()], &mut rng);
        for chunk in [1, 3, 17] {
            assert_parsers_agree(&mutated, chunk);
        }
    }
}

/// Pipelined keep-alive traffic: several requests pushed through one
/// parser in 1-byte drips come out identical to sequential one-shot reads
/// of the same stream.
#[test]
fn pipelined_requests_drip_out_in_order() {
    let corpus = valid_request_corpus();
    let stream: Vec<u8> = corpus.iter().flatten().copied().collect();

    let mut reference = Vec::new();
    let mut reader = BufReader::new(&stream[..]);
    while let Some(req) = read_request(&mut reader).expect("valid stream") {
        reference.push(req);
    }
    assert_eq!(reference.len(), corpus.len());

    let mut parser = RequestParser::new();
    let mut incremental = Vec::new();
    for byte in &stream {
        parser.push(std::slice::from_ref(byte));
        while let Some(req) = parser.poll().expect("valid stream") {
            incremental.push(req);
        }
    }
    assert_eq!(incremental, reference);
    assert!(!parser.mid_request(), "stream must end at a boundary");
}

/// Corruptions of a *valid* scenario document must decode, or fail with an
/// error — and whenever they decode, re-encoding must round-trip (no
/// half-parsed state).
#[test]
fn corrupted_scenarios_decode_or_error_cleanly() {
    let mut rng = SmallRng::seed_from_u64(7);
    let base = br#"{"kind":"client_server","machine":{"p":16,"st":50.0,"so":131.0,"c2":0.0},"w":1000.0,"ps":3}"#;
    let mut decoded = 0u32;
    for _ in 0..3000 {
        let mutated = corrupt(base, &mut rng);
        if let Ok(text) = std::str::from_utf8(&mutated) {
            if let Ok(doc) = parse(text) {
                if let Ok(s) = scenario_from_json(&doc) {
                    decoded += 1;
                    let again =
                        scenario_from_json(&parse(&scenario_to_json(&s).to_compact()).unwrap());
                    assert_eq!(again.unwrap(), s);
                }
            }
        }
    }
    // Some corruptions (e.g. digit flips) still decode — that's fine, they
    // are different but valid requests. The point is nothing in between.
    assert!(
        decoded > 0,
        "corruption harness too aggressive to be useful"
    );
}
