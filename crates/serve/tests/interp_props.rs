//! Property tests for the certified interpolation layer — the contract the
//! serving API makes, checked over random scenarios and random populated
//! grids:
//!
//! 1. **Certificate soundness**: whenever a prediction is served by
//!    interpolation, its true residual against the exact solve is within
//!    the cell's certified bound (and the bound is within the caller's
//!    tolerance).
//! 2. **Exactness contract**: `max_rel_err = 0` requests are bit-identical
//!    to library `scenario::solve`, no matter what interpolation traffic
//!    populated the grid first.
//!
//! Nothing here depends on the event scheduler (interpolation is pure
//! model arithmetic), but the suite runs under the CI scheduler × seed
//! matrix (`LOPC_TEST_SCHEDULER` ∈ {calendar, heap}) like every other
//! tier-1 test, so both scheduler configurations exercise it.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lopc_core::scenario::solve;
use lopc_core::{Machine, Scenario};
use lopc_serve::cache::SolutionCache;
use lopc_serve::interp::{rel_resid, InterpCache, Served, CERT_FLOOR};

/// Draw one random interpolation-eligible scenario. Parameters cover the
/// paper's regimes (contention-bound through compute-bound) across all
/// four closed-form variants.
fn random_scenario(rng: &mut SmallRng) -> Scenario {
    let p = rng.random_range(4usize..64);
    let st = rng.random_range(0.0..300.0f64);
    let so = rng.random_range(10.0..400.0f64);
    let c2 = rng.random_range(0.0..2.5f64);
    let w = rng.random_range(1.0..8000.0f64);
    let machine = Machine::new(p, st, so).with_c2(c2);
    match rng.random_range(0..5usize) {
        0 => Scenario::AllToAll { machine, w },
        1 => Scenario::SharedMemory { machine, w },
        2 => Scenario::ClientServer {
            machine,
            w,
            ps: Some(rng.random_range(1..p)),
        },
        3 => Scenario::ClientServer {
            machine,
            w,
            ps: None,
        },
        _ => Scenario::ForkJoin {
            machine,
            w,
            k: rng.random_range(1u32..6),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Certificate soundness on a randomly populated grid: every
    /// interpolated answer is within its certificate, every fallback is
    /// bit-identical exact.
    #[test]
    fn interpolated_predictions_respect_the_certified_bound(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cache = InterpCache::new(SolutionCache::new(4, 512), 4, 128);
        // Populate the grid with random warm-up traffic: a short sweep
        // around a random anchor, so some later queries land in built
        // cells and others in fresh ones.
        let anchor = random_scenario(&mut rng);
        if let Some(axes) = anchor.interp_axes() {
            for i in 0..12 {
                let w = axes[0].value * (0.8 + 0.04 * i as f64);
                if let Some(s) = anchor.with_axis_values([w, axes[1].value, axes[2].value, axes[3].value]) {
                    let _ = cache.predict(&s, 1e-3);
                }
            }
        }
        // Now the probes: random scenarios at random tolerances.
        for _ in 0..6 {
            let scenario = random_scenario(&mut rng);
            let tol = 10f64.powf(rng.random_range(-5.0..-1.0f64));
            let served = cache.predict_traced(&scenario, tol);
            let exact = solve(&scenario);
            match (served, exact) {
                (Ok((p, Served::Interpolated { certified_rel_err })), Ok(e)) => {
                    prop_assert!(
                        certified_rel_err <= tol,
                        "served above tolerance: cert {certified_rel_err} > tol {tol}"
                    );
                    prop_assert!(
                        certified_rel_err >= CERT_FLOOR,
                        "certificate below floor: {certified_rel_err}"
                    );
                    let resid = rel_resid(&p, &e);
                    prop_assert!(
                        resid <= certified_rel_err,
                        "true residual {resid} exceeds certificate {certified_rel_err} for {scenario:?}"
                    );
                }
                (Ok((p, Served::Exact)), Ok(e)) => {
                    // Fallbacks and exact-cache hits are the library answer,
                    // bit for bit.
                    prop_assert!(
                        lopc_serve::predictions_identical(&p, &e),
                        "exact path drifted for {scenario:?}: {p:?} != {e:?}"
                    );
                }
                (Err(_), Err(_)) => {} // unsolvable either way
                (served, exact) => {
                    return Err(proptest::TestCaseError::fail(format!(
                        "served {served:?} disagrees with library {exact:?} for {scenario:?}"
                    )));
                }
            }
        }
    }

    /// The exactness contract: `max_rel_err = 0` is bit-identical to the
    /// library, even on a grid fully populated by interpolation traffic
    /// for the *same* scenarios.
    #[test]
    fn zero_tolerance_is_bit_identical_to_library_solve(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cache = InterpCache::new(SolutionCache::new(4, 512), 4, 128);
        for _ in 0..8 {
            let scenario = random_scenario(&mut rng);
            // Populate cells (and possibly serve interpolations) first.
            let _ = cache.predict(&scenario, 1e-2);
            let served = cache.predict_traced(&scenario, 0.0);
            let exact = solve(&scenario);
            match (served, exact) {
                (Ok((p, mode)), Ok(e)) => {
                    prop_assert_eq!(mode, Served::Exact);
                    prop_assert!(
                        lopc_serve::predictions_identical(&p, &e),
                        "{:?}: served {:?} != library {:?}",
                        &scenario, &p, &e
                    );
                }
                (Err(_), Err(_)) => {}
                (served, exact) => {
                    return Err(proptest::TestCaseError::fail(format!(
                        "served {served:?} disagrees with library {exact:?} for {scenario:?}"
                    )));
                }
            }
        }
    }
}
