//! Client hardening: the failure-mode contract of [`lopc_serve::Client`].
//!
//! The client is the building block of the cluster router, so its behaviour
//! against sick servers is load-bearing: dialing must fail in bounded time,
//! transient transport errors must retry within a bounded budget, the
//! stale keep-alive race must be replayed transparently — and nothing may
//! ever be replayed after a response byte has been consumed, because a
//! second application of the request could diverge from the first answer.
//!
//! Every fake server here is a plain `TcpListener` driven from a thread,
//! so each test controls exactly how far the HTTP exchange proceeds.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lopc_core::{Machine, Scenario};
use lopc_serve::server::{start, start_on, ServerConfig};
use lopc_serve::{Client, ClientConfig, ClientError, ClusterClient, RetryPolicy};

fn scenario() -> Scenario {
    Scenario::AllToAll {
        machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
        w: 1000.0,
    }
}

/// A port with nothing behind it: bind, read the address, drop the
/// listener. Dialing it must fail *fast* (connection refused), not block.
#[test]
fn connect_fails_fast_when_nothing_listens() {
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let started = Instant::now();
    let result = Client::connect(addr);
    let elapsed = started.elapsed();
    assert!(result.is_err(), "connect to a dead port must fail");
    assert!(
        elapsed < Duration::from_secs(1),
        "refused connect took {elapsed:?} — connect must not block"
    );
}

/// An unresponsive address (non-routable test network, RFC 5737) must
/// resolve within the configured connect timeout — this is the bound that
/// keeps a router thread from wedging on a black-holed peer for the
/// kernel's SYN-retry eternity. The *outcome* depends on the environment
/// (a true black hole times out; some sandboxes answer "unreachable"
/// instantly or even intercept the dial) — the contract under test is the
/// time bound, never blocking.
#[test]
fn connect_timeout_bounds_dialing_a_black_hole() {
    let addr: SocketAddr = "192.0.2.1:9".parse().expect("test-net address");
    let config = ClientConfig {
        connect_timeout: Duration::from_millis(250),
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };
    let started = Instant::now();
    let result = Client::connect_with(addr, config);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "dialing a black hole took {elapsed:?} with a 250ms connect timeout \
         (outcome was err={})",
        result.is_err()
    );
}

/// The stale keep-alive race: the server idle-closes our connection, and
/// the next request sees EOF before any response byte. That is the one
/// always-safe replay — the client must redial and succeed without the
/// caller noticing.
#[test]
fn stale_keepalive_connections_are_replayed_transparently() {
    let server = start(ServerConfig {
        idle_timeout: Duration::from_millis(100),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let first = client.predict(&scenario()).expect("first predict");
    // Outlive the server's idle timeout: the reactor reaps our connection.
    std::thread::sleep(Duration::from_millis(400));
    let second = client
        .predict(&scenario())
        .expect("predict after idle-close must replay on a fresh connection");
    assert_eq!(first.r.to_bits(), second.r.to_bits());
    server.shutdown();
}

/// A server that accepts and instantly hangs up: every attempt fails
/// before a response byte, so the retry budget is spent exactly — the
/// accept count equals `RetryPolicy::attempts`, and the surfaced error is
/// the retryable transport error, not a protocol mirage.
#[test]
fn transient_errors_retry_exactly_the_configured_budget() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accepts = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&accepts);
    std::thread::spawn(move || {
        // Slam the door on more connections than any budget below allows.
        for _ in 0..16 {
            match listener.accept() {
                Ok((stream, _)) => {
                    counter.fetch_add(1, Ordering::SeqCst);
                    drop(stream);
                }
                Err(_) => break,
            }
        }
    });

    let config = ClientConfig {
        retry: RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
        },
        ..ClientConfig::default()
    };
    // The dial itself is accept #1; the request then burns the budget.
    let mut client = Client::connect_with(addr, config).expect("dial succeeds via backlog");
    let err = client
        .request("POST", "/v1/predict", b"{}")
        .expect_err("a door-slamming server must exhaust the retry budget");
    assert!(
        err.is_retryable(),
        "budget exhaustion must surface the transport error, got: {err}"
    );
    // Wait for the server thread to have counted the last accept.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        accepts.load(Ordering::SeqCst),
        3,
        "3 attempts must dial exactly 3 times — no more, no fewer"
    );
}

/// The partial-response gate: the server sends response *headers* and two
/// body bytes, then goes silent. The subsequent read timeout is a
/// retryable error *kind*, but response bytes have been consumed — the
/// client must surface the failure immediately instead of replaying the
/// request (the accept count stays 1).
#[test]
fn never_retries_after_a_partial_response() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accepts = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&accepts);
    std::thread::spawn(move || {
        for _ in 0..4 {
            let Ok((mut stream, _)) = listener.accept() else {
                break;
            };
            counter.fetch_add(1, Ordering::SeqCst);
            // Consume the request header so the client's write succeeds.
            let mut sink = [0u8; 512];
            let _ = stream.read(&mut sink);
            // Promise 10 body bytes, deliver 2, then hold the socket open.
            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nhi");
            let _ = stream.flush();
            std::thread::sleep(Duration::from_secs(5));
        }
    });

    let config = ClientConfig {
        read_timeout: Some(Duration::from_millis(200)),
        retry: RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
        },
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(addr, config).expect("connect");
    let started = Instant::now();
    let err = client
        .request("POST", "/v1/predict", b"{}")
        .expect_err("a truncated response must fail");
    let elapsed = started.elapsed();
    match &err {
        ClientError::Io(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "expected a mid-response read timeout, got: {e}"
        ),
        other => panic!("expected an Io timeout, got: {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(2),
        "one timeout's worth of waiting, not a retry storm: {elapsed:?}"
    );
    assert_eq!(
        accepts.load(Ordering::SeqCst),
        1,
        "a partially consumed response must never be replayed"
    );
}

/// The router keeps one warm keep-alive connection per node: a burst of
/// routed batches must ride that pooled connection, never redial per
/// sub-batch. The server's accept counter is the witness — one accept for
/// the topology fetch, one for the pooled route connection, and not a
/// single one more across ten batches.
#[test]
fn routed_batches_reuse_the_pooled_connection() {
    let server = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let router = ClusterClient::connect(server.addr()).expect("router");
    let scenarios: Vec<Scenario> = (0..16)
        .map(|i| Scenario::AllToAll {
            machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
            w: 100.0 * (i + 1) as f64,
        })
        .collect();
    for _ in 0..10 {
        router.predict_batch(&scenarios).expect("routed batch");
    }
    let opened = server.service().metrics().opened_connections_total();
    assert_eq!(
        opened, 2,
        "ten routed batches opened {opened} connections — expected exactly \
         the topology fetch plus one pooled route connection"
    );
    server.shutdown();
}

/// Half-open re-probe is single-flight: when a dead member's cooldown
/// expires, exactly one request across every concurrent caller dials it;
/// the rest fail over to the survivors without waiting. A door-slamming
/// dead node counts its accepts — with four threads hammering the router
/// for many cooldown windows, the count stays at "one probe per window",
/// not "every in-flight request at every expiry" (the thundering herd this
/// test pins down).
#[test]
fn half_open_reprobe_is_single_flight_under_contention() {
    // The dead member: accepts and instantly hangs up, counting dials.
    let dead_listener = TcpListener::bind("127.0.0.1:0").expect("bind dead");
    let dead_addr = dead_listener.local_addr().expect("addr").to_string();
    let accepts = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&accepts);
    std::thread::spawn(move || {
        for _ in 0..4096 {
            match dead_listener.accept() {
                Ok((stream, _)) => {
                    counter.fetch_add(1, Ordering::SeqCst);
                    drop(stream);
                }
                Err(_) => break,
            }
        }
    });

    // Two live nodes whose topology includes the dead member.
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    let nodes: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let peers = vec![addrs[1 - i].clone(), dead_addr.clone()];
            start_on(
                listener,
                ServerConfig {
                    workers: 2,
                    peers,
                    advertise: Some(addrs[i].clone()),
                    ..ServerConfig::default()
                },
            )
            .expect("start node")
        })
        .collect();

    let config = ClientConfig {
        retry: RetryPolicy::none(),
        ..ClientConfig::default()
    };
    let seed = nodes[0].addr();
    let mut router = ClusterClient::connect_with(seed, config).expect("router");
    let cooldown = Duration::from_millis(50);
    router.set_cooldown(cooldown);
    let router = Arc::new(router);

    // Hammer from four threads across a parameter spread wide enough that
    // plenty of lanes are owned by the dead member.
    let deadline = Instant::now() + Duration::from_millis(400);
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                let mut served = 0u32;
                while Instant::now() < deadline {
                    for i in 0..8 {
                        let s = Scenario::AllToAll {
                            machine: Machine::new(32, 25.0, 200.0).with_c2(0.0),
                            w: 100.0 * (t * 8 + i + 1) as f64,
                        };
                        router
                            .predict(&s)
                            .expect("failover must absorb the dead member");
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();
    let served: u32 = workers.into_iter().map(|h| h.join().expect("worker")).sum();

    let dials = accepts.load(Ordering::SeqCst);
    // First contact may race every thread (the member starts out "up");
    // after that, each ~50ms window admits exactly one probe. 400ms of
    // hammering is ~8 windows — allow generous scheduling slop, but stay
    // far below the hundreds a per-request herd would produce.
    assert!(dials >= 1, "the dead member was never probed");
    assert!(
        dials <= 30,
        "{dials} dials of the dead member in ~8 cooldown windows — \
         half-open re-probe is stampeding instead of single-flight"
    );
    assert!(served > 0, "hammer threads never completed a request");
    for n in nodes {
        n.shutdown();
    }
}

/// Error statuses are answers, not failures: they must not be retried
/// (the server would see the request twice) and must decode into
/// [`ClientError::Status`] with the body attached.
#[test]
fn error_statuses_are_answers_not_retries() {
    let server = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client
        .request_json("POST", "/v1/predict", b"{\"kind\":\"nope\"}")
        .expect_err("an unknown kind must be a 4xx");
    match &err {
        ClientError::Status(code, body) => {
            assert_eq!(*code, 400, "body: {body}");
            assert!(!err.is_retryable(), "a status is an answer — never retry");
        }
        other => panic!("expected Status, got: {other}"),
    }
    server.shutdown();
}
