//! Canonical experiment parameters.
//!
//! The scanned thesis gives: P = 32 nodes throughout the evaluation, handler
//! time 200 cycles for Figures 5-2/5-3 (`C² = 0`), `W = 1000` for Figure 5-1,
//! handler time 131 cycles for Figure 6-2. It does not state `St` (Alewife
//! wire latency is tens of cycles) or the Figure 6-2 `W`; the values below
//! are documented substitutions (DESIGN.md §3) — the claims under test are
//! shape claims and the integration tests sweep these parameters to show
//! insensitivity.

use lopc_core::Machine;

/// Processor count used throughout the evaluation chapters.
pub const P: usize = 32;

/// Network (wire) latency `St`, in cycles — Alewife-scale.
pub const ST: f64 = 25.0;

/// Figure 5-2/5-3 handler occupancy.
pub const SO_FIG5: f64 = 200.0;

/// Figure 5-1 fixed work.
pub const W_FIG5_1: f64 = 1000.0;

/// Figure 5-1 handler occupancies.
pub const SO_FIG5_1: [f64; 4] = [128.0, 256.0, 512.0, 1024.0];

/// Figure 6-2 handler occupancy.
pub const SO_FIG6: f64 = 131.0;

/// Figure 6-2 work per chunk (substituted; see module docs).
pub const W_FIG6: f64 = 1000.0;

/// Figure 6-2 network latency (substituted).
pub const ST_FIG6: f64 = 50.0;

/// The W grid of Figures 5-2/5-3 (the paper's x axis runs 2..2048 in powers
/// of two).
pub const W_GRID: [f64; 11] = [
    2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
];

/// Machine for the §5 experiments (`C² = 0`, constant handlers).
pub fn fig5_machine() -> Machine {
    Machine::new(P, ST, SO_FIG5).with_c2(0.0)
}

/// Machine for the §6 experiments.
pub fn fig6_machine() -> Machine {
    Machine::new(P, ST_FIG6, SO_FIG6).with_c2(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_validate() {
        assert!(fig5_machine().validate().is_ok());
        assert!(fig6_machine().validate().is_ok());
        assert_eq!(fig5_machine().p, 32);
        assert_eq!(fig6_machine().s_o, 131.0);
    }

    #[test]
    fn w_grid_is_powers_of_two() {
        for (i, w) in W_GRID.iter().enumerate() {
            assert_eq!(*w, 2f64.powi(i as i32 + 1));
        }
    }
}
