//! Persistent, machine-readable bench baselines (`BENCH_sim.json`).
//!
//! `cargo bench` output used to be plain text that scrolled away; nothing
//! recorded a baseline to compare the next PR against. This module gives the
//! perf-tracking benches (`sim_perf`, `solver_perf`, `serve_perf`) a tiny
//! persistence layer: each bench writes its measurements as one *section* of
//! a single JSON document at the repository root, leaving other sections
//! untouched, so the file accumulates the full baseline of the perf
//! trajectory.
//!
//! The file format is documented in the repository README ("Bench baselines"
//! section). JSON support comes from the workspace's shared hand-rolled
//! implementation in [`lopc_serve::json`] (it originated here and moved
//! there when the serving layer needed the same machinery); [`Json`] and
//! [`parse`] are re-exported so existing baseline-reading code keeps
//! compiling unchanged.
//!
//! # Example
//!
//! ```no_run
//! use lopc_bench::baseline::{default_path, update, Section};
//!
//! let mut sec = Section::new("sim_perf");
//! sec.entry("sim_full/calendar_p128", 1.25e6, Some(61_000));
//! sec.derived("speedup_large_p", 1.8);
//! update(&default_path(), sec).unwrap();
//! ```

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

pub use lopc_serve::json::{parse, Json};

/// One measured benchmark in a section.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Fully-qualified bench name (`group/id`).
    pub name: String,
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Elements processed per iteration (events, solves, …), if known.
    pub elements_per_iter: Option<u64>,
}

impl Entry {
    /// Elements per second implied by the measurement, if known.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements_per_iter
            .filter(|_| self.ns_per_iter > 0.0)
            .map(|n| n as f64 / self.ns_per_iter * 1e9)
    }
}

/// One bench binary's contribution to the baseline file.
#[derive(Clone, Debug, Default)]
pub struct Section {
    /// Section key (the bench binary name, e.g. `"sim_perf"`).
    pub name: String,
    /// Measurements, in bench execution order.
    pub entries: Vec<Entry>,
    /// Derived headline metrics (speedups, ratios), keyed by name.
    pub derived: BTreeMap<String, f64>,
}

impl Section {
    /// New empty section.
    pub fn new(name: impl Into<String>) -> Self {
        Section {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Record one measurement.
    pub fn entry(&mut self, name: impl Into<String>, ns_per_iter: f64, elements: Option<u64>) {
        self.entries.push(Entry {
            name: name.into(),
            ns_per_iter,
            elements_per_iter: elements,
        });
    }

    /// Record a derived headline metric.
    pub fn derived(&mut self, name: impl Into<String>, value: f64) {
        self.derived.insert(name.into(), value);
    }
}

/// Default baseline location: `BENCH_sim.json` at the repository root
/// (overridable with the `LOPC_BENCH_BASELINE` environment variable).
pub fn default_path() -> PathBuf {
    if let Ok(p) = std::env::var("LOPC_BENCH_BASELINE") {
        return PathBuf::from(p);
    }
    // CARGO_MANIFEST_DIR = <repo>/crates/bench at compile time.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json")
}

/// Merge `section` into the baseline file at `path`, preserving every other
/// section, and rewrite it. Returns the canonicalized path written.
pub fn update(path: &Path, section: Section) -> io::Result<PathBuf> {
    let mut sections: BTreeMap<String, Json> = match std::fs::read_to_string(path) {
        Ok(text) => match parse(&text) {
            Ok(Json::Object(top)) => match top.into_iter().find(|(k, _)| k == "sections") {
                Some((_, Json::Object(secs))) => secs.into_iter().collect(),
                _ => BTreeMap::new(),
            },
            // Unparseable or non-object baselines are rebuilt from scratch
            // rather than erroring out a bench run.
            _ => BTreeMap::new(),
        },
        Err(_) => BTreeMap::new(),
    };

    let stamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut sec_obj: Vec<(String, Json)> = vec![("unix_time".into(), Json::Num(stamp as f64))];
    let entries: Vec<Json> = section
        .entries
        .iter()
        .map(|e| {
            let mut obj: Vec<(String, Json)> = vec![
                ("name".into(), Json::Str(e.name.clone())),
                ("ns_per_iter".into(), Json::Num(e.ns_per_iter)),
            ];
            if let Some(n) = e.elements_per_iter {
                obj.push(("elements_per_iter".into(), Json::Num(n as f64)));
            }
            if let Some(rate) = e.elements_per_sec() {
                obj.push(("elements_per_sec".into(), Json::Num(rate)));
            }
            Json::Object(obj)
        })
        .collect();
    sec_obj.push(("entries".into(), Json::Array(entries)));
    if !section.derived.is_empty() {
        sec_obj.push((
            "derived".into(),
            Json::Object(
                section
                    .derived
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
    }
    sections.insert(section.name.clone(), Json::Object(sec_obj));

    let top = Json::Object(vec![
        ("schema".into(), Json::Str("lopc-bench-baseline/1".into())),
        (
            "sections".into(),
            Json::Object(sections.into_iter().collect()),
        ),
    ]);
    let mut out = top.to_pretty();
    out.push('\n');
    std::fs::write(path, out)?;
    Ok(path.canonicalize().unwrap_or_else(|_| path.to_path_buf()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_merges_sections() {
        let dir = std::env::temp_dir().join("lopc_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("merge_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut a = Section::new("sim_perf");
        a.entry("g/one", 100.0, Some(1000));
        a.derived("speedup", 2.0);
        update(&path, a).unwrap();

        let mut b = Section::new("solver_perf");
        b.entry("g/two", 50.0, None);
        update(&path, b).unwrap();

        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str("lopc-bench-baseline/1".into()))
        );
        let sections = doc.get("sections").unwrap();
        let sim = sections.get("sim_perf").expect("first section preserved");
        let solver = sections.get("solver_perf").expect("second section added");
        assert_eq!(
            sim.get("derived").unwrap().get("speedup").unwrap().as_num(),
            Some(2.0)
        );
        match solver.get("entries").unwrap() {
            Json::Array(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("name"), Some(&Json::Str("g/two".into())),);
                assert!(items[0].get("elements_per_iter").is_none());
            }
            other => panic!("entries must be an array, got {other:?}"),
        }

        // Re-running a section replaces it rather than duplicating.
        let mut a2 = Section::new("sim_perf");
        a2.entry("g/one", 90.0, Some(1000));
        update(&path, a2).unwrap();
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let sim = doc.get("sections").unwrap().get("sim_perf").unwrap();
        match sim.get("entries").unwrap() {
            Json::Array(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("ns_per_iter").unwrap().as_num(), Some(90.0));
            }
            _ => unreachable!(),
        }
        assert!(doc.get("sections").unwrap().get("solver_perf").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entry_rate_math() {
        let e = Entry {
            name: "x".into(),
            ns_per_iter: 1000.0,
            elements_per_iter: Some(5),
        };
        assert_eq!(e.elements_per_sec(), Some(5e6));
        let none = Entry {
            name: "y".into(),
            ns_per_iter: 1000.0,
            elements_per_iter: None,
        };
        assert_eq!(none.elements_per_sec(), None);
    }

    #[test]
    fn corrupt_baseline_is_rebuilt() {
        let dir = std::env::temp_dir().join("lopc_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("corrupt_{}.json", std::process::id()));
        std::fs::write(&path, "not json at all {{{").unwrap();
        let mut s = Section::new("sim_perf");
        s.entry("g/x", 1.0, None);
        update(&path, s).unwrap();
        assert!(parse(&std::fs::read_to_string(&path).unwrap()).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
