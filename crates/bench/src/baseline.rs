//! Persistent, machine-readable bench baselines (`BENCH_sim.json`).
//!
//! `cargo bench` output used to be plain text that scrolled away; nothing
//! recorded a baseline to compare the next PR against. This module gives the
//! perf-tracking benches (`sim_perf`, `solver_perf`) a tiny persistence
//! layer: each bench writes its measurements as one *section* of a single
//! JSON document at the repository root, leaving other sections untouched,
//! so the file accumulates the full baseline of the perf trajectory.
//!
//! The file format is documented in the repository README ("Bench baselines"
//! section). Since the build container has no serde, the module carries its
//! own emitter and a minimal recursive-descent JSON parser for the subset it
//! emits (objects, arrays, strings, finite numbers, booleans, null).
//!
//! # Example
//!
//! ```no_run
//! use lopc_bench::baseline::{default_path, update, Section};
//!
//! let mut sec = Section::new("sim_perf");
//! sec.entry("sim_full/calendar_p128", 1.25e6, Some(61_000));
//! sec.derived("speedup_large_p", 1.8);
//! update(&default_path(), sec).unwrap();
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// One measured benchmark in a section.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Fully-qualified bench name (`group/id`).
    pub name: String,
    /// Best observed nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Elements processed per iteration (events, solves, …), if known.
    pub elements_per_iter: Option<u64>,
}

impl Entry {
    /// Elements per second implied by the measurement, if known.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements_per_iter
            .filter(|_| self.ns_per_iter > 0.0)
            .map(|n| n as f64 / self.ns_per_iter * 1e9)
    }
}

/// One bench binary's contribution to the baseline file.
#[derive(Clone, Debug, Default)]
pub struct Section {
    /// Section key (the bench binary name, e.g. `"sim_perf"`).
    pub name: String,
    /// Measurements, in bench execution order.
    pub entries: Vec<Entry>,
    /// Derived headline metrics (speedups, ratios), keyed by name.
    pub derived: BTreeMap<String, f64>,
}

impl Section {
    /// New empty section.
    pub fn new(name: impl Into<String>) -> Self {
        Section {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Record one measurement.
    pub fn entry(&mut self, name: impl Into<String>, ns_per_iter: f64, elements: Option<u64>) {
        self.entries.push(Entry {
            name: name.into(),
            ns_per_iter,
            elements_per_iter: elements,
        });
    }

    /// Record a derived headline metric.
    pub fn derived(&mut self, name: impl Into<String>, value: f64) {
        self.derived.insert(name.into(), value);
    }
}

/// Default baseline location: `BENCH_sim.json` at the repository root
/// (overridable with the `LOPC_BENCH_BASELINE` environment variable).
pub fn default_path() -> PathBuf {
    if let Ok(p) = std::env::var("LOPC_BENCH_BASELINE") {
        return PathBuf::from(p);
    }
    // CARGO_MANIFEST_DIR = <repo>/crates/bench at compile time.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sim.json")
}

/// Merge `section` into the baseline file at `path`, preserving every other
/// section, and rewrite it. Returns the canonicalized path written.
pub fn update(path: &Path, section: Section) -> io::Result<PathBuf> {
    let mut sections: BTreeMap<String, Json> = match std::fs::read_to_string(path) {
        Ok(text) => match parse(&text) {
            Ok(Json::Object(top)) => match top.into_iter().find(|(k, _)| k == "sections") {
                Some((_, Json::Object(secs))) => secs.into_iter().collect(),
                _ => BTreeMap::new(),
            },
            // Unparseable or non-object baselines are rebuilt from scratch
            // rather than erroring out a bench run.
            _ => BTreeMap::new(),
        },
        Err(_) => BTreeMap::new(),
    };

    let stamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut sec_obj: Vec<(String, Json)> = vec![("unix_time".into(), Json::Num(stamp as f64))];
    let entries: Vec<Json> = section
        .entries
        .iter()
        .map(|e| {
            let mut obj: Vec<(String, Json)> = vec![
                ("name".into(), Json::Str(e.name.clone())),
                ("ns_per_iter".into(), Json::Num(e.ns_per_iter)),
            ];
            if let Some(n) = e.elements_per_iter {
                obj.push(("elements_per_iter".into(), Json::Num(n as f64)));
            }
            if let Some(rate) = e.elements_per_sec() {
                obj.push(("elements_per_sec".into(), Json::Num(rate)));
            }
            Json::Object(obj)
        })
        .collect();
    sec_obj.push(("entries".into(), Json::Array(entries)));
    if !section.derived.is_empty() {
        sec_obj.push((
            "derived".into(),
            Json::Object(
                section
                    .derived
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
    }
    sections.insert(section.name.clone(), Json::Object(sec_obj));

    let top = Json::Object(vec![
        ("schema".into(), Json::Str("lopc-bench-baseline/1".into())),
        (
            "sections".into(),
            Json::Object(sections.into_iter().collect()),
        ),
    ]);
    let mut out = String::new();
    top.render(&mut out, 0);
    out.push('\n');
    std::fs::write(path, out)?;
    Ok(path.canonicalize().unwrap_or_else(|_| path.to_path_buf()))
}

// ---------------------------------------------------------------------------
// Minimal JSON value type, emitter, and parser
// ---------------------------------------------------------------------------

/// JSON value subset used by the baseline file.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Finite number (emitted with enough precision to round-trip).
    Num(f64),
    /// String (only `"` and `\` are escaped by the emitter).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        // RFC 8259: all other control characters must be
                        // \u-escaped or the document is invalid JSON.
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.render(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Object(kv) => {
                if kv.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in kv.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    Json::Str(k.clone()).render(out, indent + 1);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    out.push_str(if i + 1 < kv.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

/// Parse a JSON document (the subset emitted by this module).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut kv = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(kv));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                kv.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(kv));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(b'/') => s.push('/'),
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                                // BMP scalars only — the emitter never
                                // writes surrogate pairs.
                                s.push(
                                    char::from_u32(code)
                                        .ok_or(format!("invalid \\u code point {code:#x}"))?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 passes through byte by byte; the
                        // input came from a &str so it is valid UTF-8.
                        let start = *pos;
                        let mut end = *pos + 1;
                        if c >= 0x80 {
                            while end < b.len() && b[end] & 0xC0 == 0x80 {
                                end += 1;
                            }
                        }
                        s.push_str(std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?);
                        *pos = end;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {s:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let v = Json::Object(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x \"y\" \\z \t \r \n \u{1} é".into())),
            (
                "c".into(),
                Json::Array(vec![Json::Bool(true), Json::Null, Json::Num(-3.0)]),
            ),
            ("d".into(), Json::Object(vec![])),
            ("e".into(), Json::Array(vec![])),
        ]);
        let mut text = String::new();
        v.render(&mut text, 0);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn numbers_round_trip_precisely() {
        for x in [0.0, 1.0, -1.0, 123456789.0, 1.25e-9, 6.02e23, 0.1 + 0.2] {
            let mut s = String::new();
            Json::Num(x).render(&mut s, 0);
            assert_eq!(parse(&s).unwrap().as_num().unwrap(), x, "{s}");
        }
    }

    #[test]
    fn update_merges_sections() {
        let dir = std::env::temp_dir().join("lopc_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("merge_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut a = Section::new("sim_perf");
        a.entry("g/one", 100.0, Some(1000));
        a.derived("speedup", 2.0);
        update(&path, a).unwrap();

        let mut b = Section::new("solver_perf");
        b.entry("g/two", 50.0, None);
        update(&path, b).unwrap();

        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema"),
            Some(&Json::Str("lopc-bench-baseline/1".into()))
        );
        let sections = doc.get("sections").unwrap();
        let sim = sections.get("sim_perf").expect("first section preserved");
        let solver = sections.get("solver_perf").expect("second section added");
        assert_eq!(
            sim.get("derived").unwrap().get("speedup").unwrap().as_num(),
            Some(2.0)
        );
        match solver.get("entries").unwrap() {
            Json::Array(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("name"), Some(&Json::Str("g/two".into())),);
                assert!(items[0].get("elements_per_iter").is_none());
            }
            other => panic!("entries must be an array, got {other:?}"),
        }

        // Re-running a section replaces it rather than duplicating.
        let mut a2 = Section::new("sim_perf");
        a2.entry("g/one", 90.0, Some(1000));
        update(&path, a2).unwrap();
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let sim = doc.get("sections").unwrap().get("sim_perf").unwrap();
        match sim.get("entries").unwrap() {
            Json::Array(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("ns_per_iter").unwrap().as_num(), Some(90.0));
            }
            _ => unreachable!(),
        }
        assert!(doc.get("sections").unwrap().get("solver_perf").is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entry_rate_math() {
        let e = Entry {
            name: "x".into(),
            ns_per_iter: 1000.0,
            elements_per_iter: Some(5),
        };
        assert_eq!(e.elements_per_sec(), Some(5e6));
        let none = Entry {
            name: "y".into(),
            ns_per_iter: 1000.0,
            elements_per_iter: None,
        };
        assert_eq!(none.elements_per_sec(), None);
    }

    #[test]
    fn corrupt_baseline_is_rebuilt() {
        let dir = std::env::temp_dir().join("lopc_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("corrupt_{}.json", std::process::id()));
        std::fs::write(&path, "not json at all {{{").unwrap();
        let mut s = Section::new("sim_perf");
        s.entry("g/x", 1.0, None);
        update(&path, s).unwrap();
        assert!(parse(&std::fs::read_to_string(&path).unwrap()).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
