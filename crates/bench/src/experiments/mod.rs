//! One module per reproduced table/figure. See the crate docs and DESIGN.md
//! for the experiment index.

pub mod fig5_1;
pub mod fig5_2;
pub mod fig5_3;
pub mod fig6_2;
pub mod general;
pub mod matvec;
pub mod pipelining;
pub mod rule_of_thumb;
pub mod shared_mem;
pub mod tab5_err;

use lopc_workloads::Window;

/// Measurement window used by the experiments: generous in the real harness,
/// short for smoke tests.
pub fn window(quick: bool) -> Window {
    if quick {
        Window::quick()
    } else {
        Window {
            warmup_cycles: 400.0,
            measure_cycles: 4_000.0,
        }
    }
}

/// Replication count for simulator measurements.
pub fn reps(quick: bool) -> usize {
    if quick {
        1
    } else {
        4
    }
}
