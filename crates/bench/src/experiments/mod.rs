//! One module per reproduced table/figure. See the crate docs and DESIGN.md
//! for the experiment index.
//!
//! Simulator measurements run under the sequential stopping rule
//! ([`rule`]) — replications are added until the 95 % CI is tight enough or
//! the cap strikes — and every model-vs-sim comparison row records the CI
//! half-width through `ComparisonTable::push_ci`, so regenerated figures
//! carry error bars. Model curves dispatch through the unified
//! `lopc_core::scenario` API wherever the scenario enum can express them,
//! the same entry point `lopc-serve` answers from.

pub mod fig5_1;
pub mod fig5_2;
pub mod fig5_3;
pub mod fig6_2;
pub mod general;
pub mod matvec;
pub mod pipelining;
pub mod rule_of_thumb;
pub mod shared_mem;
pub mod tab5_err;

use lopc_sim::{run_until_precision, Replications, SimConfig};
use lopc_stats::{Confidence, StoppingRule, Summary};
use lopc_workloads::Window;

/// Measurement window used by the experiments: generous in the real harness,
/// short for smoke tests.
pub fn window(quick: bool) -> Window {
    if quick {
        Window::quick()
    } else {
        Window {
            warmup_cycles: 400.0,
            measure_cycles: 4_000.0,
        }
    }
}

/// Sequential stopping rule for simulator measurements: the default ±3 %
/// 95 % rule (5–16 replications) in the real harness; a 2–3 replication
/// ±5 % budget in quick mode, so debug-build tests still get an interval
/// (a single run has none) without simulating for minutes.
pub fn rule(quick: bool) -> StoppingRule {
    if quick {
        StoppingRule::default()
            .with_rel_precision(0.05)
            .with_reps(2, 3)
    } else {
        StoppingRule::default()
    }
}

/// Replicate `cfg` under [`rule`] for the statistic `stat` and return the
/// replication set — the shared measurement recipe of every experiment.
pub fn measure(
    cfg: &SimConfig,
    quick: bool,
    stat: impl Fn(&lopc_sim::SimReport) -> f64,
) -> Replications {
    run_until_precision(cfg, &rule(quick), stat).expect("valid config")
}

/// `(mean, 95 % half-width)` of a statistic over a replication set — the
/// pair `ComparisonTable::push_ci` wants.
pub fn mean_ci(reps: &Replications, stat: impl Fn(&lopc_sim::SimReport) -> f64) -> (f64, f64) {
    let s: Summary = reps.summary(stat);
    (s.mean, s.half_width(Confidence::P95))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_rule_is_bounded_and_real_rule_is_default() {
        let q = rule(true);
        assert!(q.min_reps >= 2, "quick mode still produces an interval");
        assert!(q.max_reps <= 3, "quick mode stays cheap");
        let r = rule(false);
        assert_eq!(r.min_reps, StoppingRule::default().min_reps);
        assert_eq!(r.max_reps, StoppingRule::default().max_reps);
    }
}
