//! §3 worked example end-to-end: matrix–vector multiply characterisation and
//! total-runtime prediction `n·R` against the simulated makespan.
//!
//! Includes both regimes of the Brewer–Kuszmaul synchronisation effect: the
//! perfectly deterministic schedule is a contention-free permutation sequence
//! (makespan = naive LogP), while realistic jitter decays it into the
//! random-arrival regime LoPC models (makespan = n·R).

use crate::ExpResult;
use lopc_core::Machine;
use lopc_report::{ComparisonTable, Figure, Series};
use lopc_sim::run as run_sim;
use lopc_solver::par_map;
use lopc_workloads::MatVec;

/// Problem instances swept: `(N, P)`.
pub const INSTANCES: [(usize, usize); 4] = [(256, 8), (512, 16), (512, 32), (1024, 32)];

/// Regenerate the table/figure.
pub fn run_exp(quick: bool) -> ExpResult {
    let mut result = ExpResult::new("matvec");
    let mut cmp = ComparisonTable::new("matvec total runtime: LoPC n*R vs simulated makespan");
    let mut logp_cmp =
        ComparisonTable::new("matvec total runtime: naive LogP vs simulated makespan");

    let rows: Vec<(String, f64, f64, f64)> = par_map(&INSTANCES, |&(n_dim, p)| {
        let n_dim = if quick { n_dim / 2 } else { n_dim };
        let machine = Machine::new(p, 25.0, 200.0).with_c2(0.0);
        let mv = MatVec::new(n_dim, machine, 4.0);
        let predicted = mv.predicted_runtime().unwrap();
        let makespan = run_sim(&mv.sim_config(77)).unwrap().makespan;
        (
            format!("N={n_dim} P={p}"),
            predicted,
            makespan,
            mv.logp_runtime(),
        )
    });
    for (label, predicted, makespan, logp) in &rows {
        cmp.push(label.clone(), *predicted, *makespan);
        logp_cmp.push(label.clone(), *logp, *makespan);
    }

    // The two synchronisation regimes at one instance.
    let machine = Machine::new(8, 25.0, 200.0).with_c2(0.0);
    let n_dim = if quick { 128 } else { 256 };
    let lockstep = MatVec::new(n_dim, machine, 4.0).with_jitter(0.0);
    let jittered = MatVec::new(n_dim, machine, 4.0).with_jitter(0.10);
    let lk = run_sim(&lockstep.sim_config(7)).unwrap().makespan;
    let jt = run_sim(&jittered.sim_config(7)).unwrap().makespan;
    result.note(format!(
        "Brewer-Kuszmaul effect: lockstep schedule makespan {:.0} = LogP bound {:.0}; \
         10% jitter decays it to {:.0} (LoPC predicts {:.0})",
        lk,
        lockstep.logp_runtime(),
        jt,
        jittered.predicted_runtime().unwrap()
    ));
    result.note(format!(
        "LoPC max |err| {:.1}% vs naive LogP max |err| {:.1}%",
        cmp.max_abs_err() * 100.0,
        logp_cmp.max_abs_err() * 100.0
    ));

    let fig = Figure::new(
        "Matvec (Section 3): predicted vs simulated total runtime",
        "instance index",
        "total runtime (cycles)",
    )
    .with_series(Series::new(
        "LoPC n*R",
        rows.iter()
            .enumerate()
            .map(|(i, r)| (i as f64, r.1))
            .collect(),
    ))
    .with_series(Series::new(
        "simulated makespan",
        rows.iter()
            .enumerate()
            .map(|(i, r)| (i as f64, r.2))
            .collect(),
    ))
    .with_series(Series::new(
        "naive LogP",
        rows.iter()
            .enumerate()
            .map(|(i, r)| (i as f64, r.3))
            .collect(),
    ));

    result.figures.push(fig);
    result.tables.push(cmp);
    result.tables.push(logp_cmp);
    result
}

/// Alias so the dispatcher naming stays uniform.
pub fn run(quick: bool) -> ExpResult {
    run_exp(quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lopc_beats_logp_on_every_instance() {
        let r = run_exp(true);
        let lopc = &r.tables[0];
        let logp = &r.tables[1];
        assert!(lopc.max_abs_err() < 0.10, "LoPC err {}", lopc.max_abs_err());
        assert!(
            logp.max_abs_err() > lopc.max_abs_err(),
            "LogP must be worse"
        );
        // LogP always under-predicts the desynchronised run.
        for row in &logp.rows {
            assert!(row.err() < 0.0);
        }
    }
}
