//! Figure 6-2: work-pile throughput on a 32-node machine with handler time
//! 131 cycles, versus the number of server nodes.
//!
//! Series: the LoPC throughput curve, the simulator measurements, the naive
//! LogP optimistic bounds (server saturation `Ps/So` and contention-free
//! clients `Pc/(W+2St+2So)`, shown dotted in the paper), and the eq. 6.8
//! closed-form optimum marker. Shape claims: unimodal curve, LoPC
//! conservative by ≤ ~3 %, the closed form lands on the simulated optimum.

use crate::experiments::{mean_ci, measure, window};
use crate::params::{fig6_machine, W_FIG6};
use crate::ExpResult;
use lopc_core::{scenario, ClientServer, Scenario};
use lopc_report::{ComparisonTable, Figure, Series};
use lopc_solver::par_map;
use lopc_workloads::Workpile;

/// One throughput curve: `(Ps, X)` points.
pub type Curve = Vec<(f64, f64)>;

/// 95 % half-widths alongside a simulated curve, by Ps.
pub type CurveCi = Vec<(f64, f64, f64)>;

/// Simulated (with half-widths) and modelled throughput at every server
/// count.
pub fn sweep_ci(quick: bool) -> (Curve, CurveCi) {
    let machine = fig6_machine();
    let ps_grid: Vec<usize> = (1..machine.p).collect();

    // Model curve through the unified scenario dispatch.
    let model_pts: Vec<(f64, f64)> = ps_grid
        .iter()
        .map(|&ps| {
            let x = scenario::solve(&Scenario::ClientServer {
                machine,
                w: W_FIG6,
                ps: Some(ps),
            })
            .unwrap()
            .x;
            (ps as f64, x)
        })
        .collect();

    let sim_pts: Vec<(f64, f64, f64)> = par_map(&ps_grid, |&ps| {
        let wl = Workpile::new(machine, W_FIG6, ps).with_window(window(quick));
        let reps = measure(&wl.sim_config(4000 + ps as u64), quick, |r| {
            r.aggregate.throughput
        });
        let (x, hw) = mean_ci(&reps, |r| r.aggregate.throughput);
        (ps as f64, x, hw)
    });
    (model_pts, sim_pts)
}

/// Simulated and modelled throughput curves (means only).
pub fn sweep(quick: bool) -> (Curve, Curve) {
    let (model_pts, sim_pts) = sweep_ci(quick);
    (
        model_pts,
        sim_pts.into_iter().map(|(ps, x, _)| (ps, x)).collect(),
    )
}

/// Regenerate the figure.
pub fn run(quick: bool) -> ExpResult {
    let mut result = ExpResult::new("fig6_2");
    let machine = fig6_machine();
    let model = ClientServer::new(machine, W_FIG6);
    let (model_pts, sim_ci) = sweep_ci(quick);
    let sim_pts: Curve = sim_ci.iter().map(|&(ps, x, _)| (ps, x)).collect();

    let ps_f: Vec<f64> = model_pts.iter().map(|&(x, _)| x).collect();
    let server_bound = Series::from_fn("LogP server bound Ps/So", &ps_f, |ps| {
        model.logp_server_bound(ps as usize)
    });
    let client_bound = Series::from_fn("LogP client bound Pc/(W+2St+2So)", &ps_f, |ps| {
        model.logp_client_bound(ps as usize)
    });

    let opt = model.optimal_servers().unwrap();
    let opt_x = model.throughput(opt).unwrap().x;
    let marker = Series::new("eq. 6.8 optimum", vec![(opt as f64, opt_x)]);

    let mut cmp = ComparisonTable::new("work-pile throughput X (LoPC vs simulator)");
    for (m, s) in model_pts.iter().zip(&sim_ci) {
        cmp.push_ci(format!("Ps={:.0}", m.0), m.1, s.1, s.2);
    }

    let sim_opt = sim_pts.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0 as usize;
    result.note(format!(
        "paper: LoPC conservative by <=3%; measured: worst under-prediction {:.1}%",
        -cmp.rows
            .iter()
            .map(|r| r.err())
            .fold(f64::INFINITY, f64::min)
            * 100.0
    ));
    result.note(format!(
        "paper: eq. 6.8 optimum maximises throughput; closed form Ps*={opt} \
         (continuous {:.2}), simulated argmax Ps={sim_opt}",
        model.optimal_servers_continuous()
    ));

    let fig = Figure::new(
        "Figure 6-2: Work-pile throughput on 32 nodes (So=131, C^2=0, W=1000)",
        "servers Ps",
        "throughput X (chunks/cycle)",
    )
    .with_series(Series::new("LoPC", model_pts))
    .with_series(Series::new("simulator", sim_pts))
    .with_series(server_bound)
    .with_series(client_bound)
    .with_series(marker);

    result.figures.push(fig);
    result.tables.push(cmp);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_matches_simulated_argmax_within_one() {
        let (_, sim_pts) = sweep(true);
        let machine = fig6_machine();
        let model = ClientServer::new(machine, W_FIG6);
        let opt = model.optimal_servers().unwrap() as i64;
        let sim_opt = sim_pts.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0 as i64;
        assert!(
            (opt - sim_opt).abs() <= 2,
            "closed form {opt} vs simulated argmax {sim_opt}"
        );
    }

    #[test]
    fn model_tracks_sim_and_is_roughly_conservative() {
        let (model_pts, sim_pts) = sweep(true);
        for ((ps, m), (_, s)) in model_pts.iter().zip(&sim_pts) {
            let err = (m - s) / s;
            assert!(
                err < 0.06 && err > -0.12,
                "Ps={ps}: model {m} vs sim {s} ({:+.1}%)",
                err * 100.0
            );
        }
    }

    #[test]
    fn bounds_envelope_the_measurements() {
        let (_, sim_pts) = sweep(true);
        let model = ClientServer::new(fig6_machine(), W_FIG6);
        for &(ps, x) in &sim_pts {
            let ps = ps as usize;
            assert!(
                x <= model.logp_server_bound(ps) * 1.02,
                "server bound at {ps}"
            );
            // Exponential chunk sampling lets short windows drift a few
            // percent above the mean-based bound.
            assert!(
                x <= model.logp_client_bound(ps) * 1.05,
                "client bound at {ps}"
            );
        }
    }
}
