//! Appendix A generality: multi-hop forwarding chains and hotspot traffic,
//! model vs simulator.
//!
//! These are the patterns the homogeneous §5 closed form cannot express —
//! exactly what the general per-node AMVA exists for. Multi-hop requests
//! appear in coherence protocols (requester → home → owner); hotspots appear
//! whenever a hash distributes work unevenly.

use crate::experiments::{mean_ci, measure, window};
use crate::params::{P, ST};
use crate::ExpResult;
use lopc_core::{scenario, Machine, Scenario};
use lopc_report::{ComparisonTable, Figure, Series};
use lopc_solver::par_map;
use lopc_workloads::{Forwarding, Hotspot};

/// Work between requests.
pub const W: f64 = 800.0;

/// Handler occupancy.
pub const SO: f64 = 150.0;

/// Regenerate the study.
pub fn run(quick: bool) -> ExpResult {
    let mut result = ExpResult::new("general");
    let machine = Machine::new(P, ST, SO).with_c2(0.0);

    // Multi-hop sweep; the model side goes through the unified scenario
    // dispatch (Scenario::General wraps the workload's routing matrix).
    let hops_grid = [1u32, 2, 3, 4];
    let hop_pts: Vec<(u32, f64, f64, f64)> = par_map(&hops_grid, |&hops| {
        let wl = Forwarding::new(machine, W, hops).with_window(window(quick));
        let model = scenario::solve(&Scenario::General(wl.model())).unwrap().r;
        let sim = measure(&wl.sim_config(7000 + hops as u64), quick, |r| {
            r.aggregate.mean_r
        });
        let (sim_r, sim_hw) = mean_ci(&sim, |r| r.aggregate.mean_r);
        (hops, model, sim_r, sim_hw)
    });

    let mut cmp_hops = ComparisonTable::new("multi-hop response R (general model vs simulator)");
    for &(hops, model, sim, hw) in &hop_pts {
        cmp_hops.push_ci(format!("hops={hops}"), model, sim, hw);
    }

    // Hotspot sweep (per-node asymmetric quantities need the raw
    // GeneralSolution, so this one keeps the direct solve).
    let hot_grid = [0.05f64, 0.1, 0.2];
    let hot_pts: Vec<(f64, f64, f64, f64, f64, f64)> = par_map(&hot_grid, |&hot| {
        let wl = Hotspot::new(machine, 2.0 * W, hot).with_window(window(quick));
        let sol = wl.model().solve().unwrap();
        let sim = measure(&wl.sim_config(8000 + (hot * 100.0) as u64), quick, |r| {
            r.aggregate.mean_r
        });
        // Thread-weighted mean response (the model averages per-thread R
        // equally; the pooled cycle mean would be harmonically weighted
        // toward fast threads).
        let thread_mean = |r: &lopc_sim::SimReport| {
            let rs: Vec<f64> = r
                .nodes
                .iter()
                .filter(|n| n.cycles > 0)
                .map(|n| n.mean_r)
                .collect();
            rs.iter().sum::<f64>() / rs.len() as f64
        };
        let (sim_r, sim_r_hw) = mean_ci(&sim, thread_mean);
        let sim_uq0 = sim.stat(|r| r.nodes[0].uq).mean;
        (hot, sol.mean_r(), sim_r, sol.uq[0], sim_uq0, sim_r_hw)
    });

    let mut cmp_hot = ComparisonTable::new("hotspot mean response R (general model vs simulator)");
    let mut cmp_hot_u = ComparisonTable::new("hotspot node-0 utilisation Uq (model vs simulator)");
    for &(hot, model_r, sim_r, model_u, sim_u, sim_r_hw) in &hot_pts {
        cmp_hot.push_ci(format!("hot={hot:.1}"), model_r, sim_r, sim_r_hw);
        cmp_hot_u.push(format!("hot={hot:.1}"), model_u, sim_u);
    }

    result.note(format!(
        "multi-hop: each hop adds ~(St+So); model max |err| {:.1}%",
        cmp_hops.max_abs_err() * 100.0
    ));
    result.note(format!(
        "hotspot: general model resolves per-node asymmetry; R max |err| {:.1}%, \
         node-0 Uq max |err| {:.1}%",
        cmp_hot.max_abs_err() * 100.0,
        cmp_hot_u.max_abs_err() * 100.0
    ));

    let fig = Figure::new(
        "Appendix A: multi-hop response time (W=800, So=150, C^2=0)",
        "handler visits per request (hops)",
        "response time R (cycles)",
    )
    .with_series(Series::new(
        "general model",
        hop_pts.iter().map(|&(h, m, _, _)| (h as f64, m)).collect(),
    ))
    .with_series(Series::new(
        "simulator",
        hop_pts.iter().map(|&(h, _, s, _)| (h as f64, s)).collect(),
    ));

    result.figures.push(fig);
    result.tables.push(cmp_hops);
    result.tables.push(cmp_hot);
    result.tables.push(cmp_hot_u);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_model_tracks_sim_everywhere() {
        let r = run(true);
        for t in &r.tables {
            assert!(
                t.max_abs_err() < 0.12,
                "{}: max err {:.1}%",
                t.quantity,
                t.max_abs_err() * 100.0
            );
        }
    }
}
