//! Figure 5-2: response time of all-to-all communication, handler time 200
//! cycles, `C² = 0`, versus the work `W` between requests.
//!
//! Four series: the LoPC numerical solution, the eq. 5.12 lower bound
//! (`W + 2St + 2So`, also the naive LogP prediction), the eq. 5.12 upper
//! bound (`W + 2St + 3.46·So`), and the simulator measurement. The shape
//! claim: measurements sit between the bounds and within ~6 % of the LoPC
//! curve.

use crate::experiments::{mean_ci, measure, window};
use crate::params::{fig5_machine, W_GRID};
use crate::ExpResult;
use lopc_core::{scenario, AllToAll, Scenario};
use lopc_report::{ComparisonTable, Figure, Series};
use lopc_solver::par_map;
use lopc_workloads::AllToAllWorkload;

/// Regenerate the figure.
pub fn run(quick: bool) -> ExpResult {
    let mut result = ExpResult::new("fig5_2");
    let machine = fig5_machine();
    let ws: Vec<f64> = W_GRID.to_vec();

    // Model curve through the unified scenario dispatch (identical to
    // AllToAll::solve — the scenario tests pin that).
    let model = Series::from_fn("LoPC", &ws, |w| {
        scenario::solve(&Scenario::AllToAll { machine, w })
            .unwrap()
            .r
    });
    let lower = Series::from_fn("lower bound (W+2St+2So)", &ws, |w| {
        AllToAll::new(machine, w).contention_free()
    });
    let upper = Series::from_fn("upper bound (W+2St+3.46So)", &ws, |w| {
        AllToAll::new(machine, w).upper_bound()
    });

    // Simulator measurements under the sequential stopping rule, with the
    // 95 % half-width kept for the table's error-bar column.
    let sim_points: Vec<(f64, f64, f64)> = par_map(&ws, |&w| {
        let wl = AllToAllWorkload::new(machine, w).with_window(window(quick));
        let reps = measure(&wl.sim_config(1000 + w as u64), quick, |r| {
            r.aggregate.mean_r
        });
        let (mean, hw) = mean_ci(&reps, |r| r.aggregate.mean_r);
        (w, mean, hw)
    });
    let sim = Series::new(
        "simulator",
        sim_points.iter().map(|&(w, r, _)| (w, r)).collect(),
    );

    let mut cmp = ComparisonTable::new("all-to-all response time R (LoPC vs simulator)");
    for (i, &w) in ws.iter().enumerate() {
        cmp.push_ci(
            format!("W={w:.0}"),
            model.points[i].1,
            sim_points[i].1,
            sim_points[i].2,
        );
    }
    result.note(format!(
        "paper: LoPC within ~6% of simulation, pessimistic; measured: max |err| {:.1}%, \
         conservative = {}",
        cmp.max_abs_err() * 100.0,
        cmp.is_conservative(0.02)
    ));

    let fig = Figure::new(
        "Figure 5-2: Response time of all-to-all communication (So=200, C^2=0, P=32)",
        "Work (cycles)",
        "response time R (cycles)",
    )
    .with_series(model)
    .with_series(lower)
    .with_series(upper)
    .with_series(sim);

    result.figures.push(fig);
    result.tables.push(cmp);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_sandwich_model_and_sim() {
        let r = run(true);
        let fig = &r.figures[0];
        let model = &fig.series[0];
        let lower = &fig.series[1];
        let upper = &fig.series[2];
        let sim = &fig.series[3];
        for i in 0..model.points.len() {
            let w = model.points[i].0;
            assert!(
                lower.points[i].1 < model.points[i].1 && model.points[i].1 < upper.points[i].1,
                "model out of bounds at W={w}"
            );
            assert!(
                sim.points[i].1 > lower.points[i].1 * 0.99,
                "sim below lower bound at W={w}"
            );
            assert!(
                sim.points[i].1 < upper.points[i].1 * 1.03,
                "sim above upper bound at W={w}"
            );
        }
    }

    #[test]
    fn model_tracks_sim_within_paper_band() {
        let r = run(true);
        // Quick windows are noisier than the real harness: allow 8 %.
        assert!(
            r.tables[0].max_abs_err() < 0.08,
            "max err {:.1}%",
            r.tables[0].max_abs_err() * 100.0
        );
    }

    #[test]
    fn every_measurement_carries_an_error_bar() {
        let r = run(true);
        for row in &r.tables[0].rows {
            let hw = row.half_width.expect("replication CI recorded");
            assert!(hw.is_finite() && hw >= 0.0, "{}: hw {hw}", row.label);
        }
    }
}
