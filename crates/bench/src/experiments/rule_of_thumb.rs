//! §5.3 / §7 rule-of-thumb validation: for homogeneous all-to-all patterns
//! the cost of contention is approximately one extra handler, and the fixed
//! point always lies inside the eq. 5.12 bounds.
//!
//! Swept over a broad `(W, So, St)` grid with `C² = 0` — broader than any
//! single figure, because a rule of thumb is only useful if it holds away
//! from the calibrated points.

use crate::ExpResult;
use lopc_core::{all_to_all::upper_bound_constant, AllToAll, Machine};
use lopc_report::ComparisonTable;
use lopc_solver::par_map;

/// One grid point result.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint {
    /// Work between requests.
    pub w: f64,
    /// Handler occupancy.
    pub so: f64,
    /// Wire latency.
    pub st: f64,
    /// Solved response time.
    pub r: f64,
    /// Contention in units of one handler time.
    pub contention_in_handlers: f64,
    /// Whether eq. 5.12 held.
    pub bounds_hold: bool,
}

/// Evaluate the rule of thumb across the grid.
pub fn grid() -> Vec<GridPoint> {
    let mut pts = Vec::new();
    for &w in &[0.0, 10.0, 100.0, 1000.0, 10_000.0] {
        for &so in &[10.0, 100.0, 500.0] {
            for &st in &[0.0, 25.0, 250.0] {
                pts.push((w, so, st));
            }
        }
    }
    par_map(&pts, |&(w, so, st)| {
        let machine = Machine::new(32, st, so).with_c2(0.0);
        let model = AllToAll::new(machine, w);
        let sol = model.solve().unwrap();
        GridPoint {
            w,
            so,
            st,
            r: sol.r,
            contention_in_handlers: sol.contention / so,
            bounds_hold: sol.r > model.contention_free() && sol.r <= model.upper_bound() + 1e-9,
        }
    })
}

/// Regenerate the check.
pub fn run(_quick: bool) -> ExpResult {
    let mut result = ExpResult::new("rule_of_thumb");
    let pts = grid();

    let mut cmp = ComparisonTable::new("rule of thumb W+2St+3So vs exact LoPC R*");
    for p in &pts {
        let rot = p.w + 2.0 * p.st + 3.0 * p.so;
        cmp.push(
            format!("W={:.0} So={:.0} St={:.0}", p.w, p.so, p.st),
            rot,
            p.r,
        );
    }

    let all_bounds = pts.iter().all(|p| p.bounds_hold);
    let (cmin, cmax) = pts.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
        (
            lo.min(p.contention_in_handlers),
            hi.max(p.contention_in_handlers),
        )
    });
    result.note(format!(
        "paper: contention ~= one extra handler, bounded in (0, 1.46]*So; measured range \
         over {} grid points: [{:.2}, {:.2}]*So; bounds hold everywhere: {all_bounds}",
        pts.len(),
        cmin,
        cmax
    ));
    result.note(format!(
        "paper: kappa(0) = 3.46; computed upper-bound constant {:.4}",
        upper_bound_constant(0.0)
    ));
    result.note(format!(
        "rule of thumb max |err| vs exact solution: {:.2}%",
        cmp.max_abs_err() * 100.0
    ));

    result.tables.push(cmp);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_on_entire_grid() {
        for p in grid() {
            assert!(p.bounds_hold, "bounds failed at {p:?}");
        }
    }

    #[test]
    fn contention_is_order_one_handler() {
        for p in grid() {
            assert!(
                p.contention_in_handlers > 0.0 && p.contention_in_handlers <= 1.46,
                "contention {}·So at {p:?}",
                p.contention_in_handlers
            );
        }
    }

    #[test]
    fn rule_of_thumb_close_to_exact() {
        let r = run(true);
        // 3·So sits between the 2·So and 3.46·So bounds; against the exact
        // solution it is within half a handler => small relative error for
        // any W (worst at W=0 where R ~ 3·So: ~15 %).
        assert!(r.tables[0].max_abs_err() < 0.20);
    }
}
