//! §7 future-work extension: non-blocking (fork-join) requests.
//!
//! Sweeps the per-cycle fan-out `k` and compares the [`lopc_core::ForkJoin`]
//! approximation against the simulator, plus the measured speedup of
//! overlapping over serial blocking issue. This experiment goes beyond the
//! thesis (which leaves non-blocking communication to future work), so there
//! are no paper numbers to match — the table documents the extension's
//! accuracy envelope instead.

use crate::experiments::{mean_ci, measure, window};
use crate::ExpResult;
use lopc_core::{scenario, Machine, Scenario};
use lopc_report::{ComparisonTable, Figure, Series};
use lopc_solver::par_map;
use lopc_workloads::BulkSync;

/// Fan-outs swept.
pub const K_GRID: [u32; 4] = [1, 2, 4, 8];

/// Work between batches.
pub const W: f64 = 2000.0;

/// Run the sweep: per k, (model R, sim R, sim speedup vs serialised issue,
/// 95 % half-width of sim R).
pub fn sweep(quick: bool) -> Vec<(u32, f64, f64, f64, f64)> {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    par_map(&K_GRID, |&k| {
        let wl = BulkSync::new(machine, W, k).with_window(window(quick));
        let model = scenario::solve(&Scenario::ForkJoin { machine, w: W, k })
            .unwrap()
            .r;
        let reps = measure(&wl.sim_config(9000 + k as u64), quick, |r| {
            r.aggregate.mean_r
        });
        let (sim, sim_hw) = mean_ci(&reps, |r| r.aggregate.mean_r);
        // Serial baseline: k blocking cycles of W/k work each.
        let serial_wl =
            lopc_workloads::AllToAllWorkload::new(machine, W / k as f64).with_window(window(quick));
        let serial_reps = measure(&serial_wl.sim_config(9100 + k as u64), quick, |r| {
            r.aggregate.mean_r
        });
        let serial = serial_reps.mean_r().mean * k as f64;
        (k, model, sim, serial / sim, sim_hw)
    })
}

/// Regenerate the study.
pub fn run(quick: bool) -> ExpResult {
    let mut result = ExpResult::new("pipelining");
    let pts = sweep(quick);

    let mut cmp = ComparisonTable::new("fork-join response R (extension model vs simulator)");
    for &(k, model, sim, _, sim_hw) in &pts {
        cmp.push_ci(format!("k={k}"), model, sim, sim_hw);
    }

    let fig = Figure::new(
        "Extension (Sec. 7): fork-join fan-out (W=2000, So=200, C^2=0, P=32)",
        "fan-out k (requests per cycle)",
        "response time R (cycles)",
    )
    .with_series(Series::new(
        "fork-join model",
        pts.iter().map(|&(k, m, _, _, _)| (k as f64, m)).collect(),
    ))
    .with_series(Series::new(
        "simulator",
        pts.iter().map(|&(k, _, s, _, _)| (k as f64, s)).collect(),
    ));

    let last = pts.last().unwrap();
    result.note(format!(
        "extension (no paper baseline): fork-join model max |err| {:.1}% over k in {{1,2,4,8}}",
        cmp.max_abs_err() * 100.0
    ));
    result.note(format!(
        "measured overlap speedup vs serial blocking issue at k={}: {:.2}x",
        last.0, last.3
    ));

    result.figures.push(fig);
    result.tables.push(cmp);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_accuracy_envelope() {
        let pts = sweep(true);
        for &(k, model, sim, _, _) in &pts {
            let err = (model - sim).abs() / sim;
            let tol = if k <= 2 { 0.10 } else { 0.15 };
            assert!(
                err < tol,
                "k={k}: model {model:.0} vs sim {sim:.0} ({:.1}%)",
                err * 100.0
            );
        }
    }

    #[test]
    fn overlap_speedup_grows_with_k() {
        let pts = sweep(true);
        let s2 = pts[1].3;
        let s8 = pts[3].3;
        assert!(s2 > 1.05, "k=2 speedup {s2}");
        assert!(s8 > s2, "k=8 speedup {s8} should beat k=2 {s2}");
    }
}
