//! Figure 5-1: effect of the coefficient of variation on contention.
//!
//! `W = 1000` cycles held constant; `C²` swept from 0 to 2 for handler
//! occupancies `So ∈ {128, 256, 512, 1024}`; the y axis is the fraction of
//! the total response time devoted to contention,
//! `(R − (W + 2St + 2So)) / R`. The paper reads off that the difference
//! between the constant (`C² = 0`) and exponential (`C² = 1`) predictions is
//! about 6 % of total response time.

use crate::params::{fig5_machine, SO_FIG5_1, W_FIG5_1};
use crate::ExpResult;
use lopc_core::{scenario, AllToAll, Machine, Scenario};
use lopc_report::{Figure, Series};
use lopc_solver::par_map;

/// Contention fraction predicted by LoPC at one `(So, C²)` point, through
/// the unified scenario dispatch.
pub fn contention_fraction(machine: Machine, w: f64) -> f64 {
    let pred = scenario::solve(&Scenario::AllToAll { machine, w }).expect("solvable");
    pred.contention / pred.r
}

/// Regenerate the figure. The figure is a pure model prediction (the thesis
/// plots only LoPC here), so `quick` has no effect.
pub fn run(_quick: bool) -> ExpResult {
    let mut result = ExpResult::new("fig5_1");
    let base = fig5_machine();
    let c2_grid: Vec<f64> = (0..=40).map(|i| i as f64 * 0.05).collect();

    let mut fig = Figure::new(
        "Figure 5-1: Effect of Coefficient of Variation on Contention, W = 1000",
        "C^2 (squared coefficient of variation)",
        "fraction of response time devoted to contention",
    );

    let series: Vec<Series> = par_map(&SO_FIG5_1, |&so| {
        let machine = Machine::new(base.p, base.s_l, so);
        Series::from_fn(format!("Handler {so:.0}"), &c2_grid, |c2| {
            contention_fraction(machine.with_c2(c2), W_FIG5_1)
        })
    });
    for s in series {
        fig.push(s);
    }

    // The headline 6 %: difference between C²=0 and C²=1 as a fraction of
    // response time, at the largest handler.
    let so = 1024.0;
    let m = Machine::new(base.p, base.s_l, so);
    let r0 = AllToAll::new(m.with_c2(0.0), W_FIG5_1).solve().unwrap().r;
    let r1 = AllToAll::new(m.with_c2(1.0), W_FIG5_1).solve().unwrap().r;
    let diff = (r1 - r0) / r1;
    result.note(format!(
        "paper: constant vs exponential handlers differ by ~6% of response time; \
         measured at So={so:.0}: {:.1}%",
        diff * 100.0
    ));

    result.figures.push(fig);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_monotone_in_c2_and_so() {
        let base = fig5_machine();
        let f_low = contention_fraction(Machine::new(base.p, base.s_l, 128.0).with_c2(0.0), 1000.0);
        let f_high_c2 =
            contention_fraction(Machine::new(base.p, base.s_l, 128.0).with_c2(2.0), 1000.0);
        let f_high_so =
            contention_fraction(Machine::new(base.p, base.s_l, 1024.0).with_c2(0.0), 1000.0);
        assert!(f_high_c2 > f_low);
        assert!(f_high_so > f_low);
    }

    #[test]
    fn figure_has_four_series_of_41_points() {
        let r = run(true);
        assert_eq!(r.figures[0].series.len(), 4);
        for s in &r.figures[0].series {
            assert_eq!(s.points.len(), 41);
        }
    }

    /// The paper's 6 % observation between C²=0 and C²=1.
    #[test]
    fn six_percent_gap() {
        let r = run(true);
        let note = &r.notes[0];
        // Extract the measured figure from the note: between 3% and 9% keeps
        // the paper's claim honest without over-fitting.
        let measured: f64 = note
            .rsplit(": ")
            .next()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(
            (3.0..=9.0).contains(&measured),
            "gap {measured}% out of plausible band"
        );
    }

    /// Fractions in Figure 5-1's plotted range (0 .. ~0.45).
    #[test]
    fn fractions_in_figure_range() {
        let r = run(true);
        for s in &r.figures[0].series {
            let (lo, hi) = s.y_range().unwrap();
            assert!(lo >= 0.0);
            assert!(hi < 0.5, "max fraction {hi} beyond the figure's axis");
        }
    }
}
