//! §5.1 "Modeling Shared Memory": the protocol-processor variant.
//!
//! A shared-memory machine is a message-passing machine whose handlers run
//! on a dedicated protocol processor, so request handlers never interrupt
//! computation (`Rw = W`) while handlers still queue against each other.
//! This experiment is the Holt-et-al-style occupancy study the thesis
//! motivates: sweep handler occupancy `So` and compare message-passing vs
//! protocol-processor response times — model against simulator for both.

use crate::experiments::{mean_ci, measure, window};
use crate::params::{P, ST};
use crate::ExpResult;
use lopc_core::{scenario, GeneralModel, Machine, Scenario};
use lopc_report::{ComparisonTable, Figure, Series};
use lopc_solver::par_map;
use lopc_workloads::AllToAllWorkload;

/// Occupancies swept.
pub const SO_GRID: [f64; 4] = [50.0, 100.0, 200.0, 400.0];

/// Work between requests.
pub const W: f64 = 800.0;

/// Model + sim response for message-passing and protocol-processor variants
/// at one occupancy.
#[derive(Clone, Copy, Debug)]
pub struct SharedMemPoint {
    /// Handler occupancy.
    pub so: f64,
    /// Message-passing model response.
    pub model_mp: f64,
    /// Protocol-processor model response.
    pub model_pp: f64,
    /// Message-passing simulated response.
    pub sim_mp: f64,
    /// Protocol-processor simulated response.
    pub sim_pp: f64,
    /// 95 % half-width of the message-passing measurement.
    pub sim_mp_hw: f64,
    /// 95 % half-width of the protocol-processor measurement.
    pub sim_pp_hw: f64,
}

/// Run the sweep.
pub fn sweep(quick: bool) -> Vec<SharedMemPoint> {
    par_map(&SO_GRID, |&so| {
        let machine = Machine::new(P, ST, so).with_c2(0.0);
        // Both variants through the unified scenario dispatch: the general
        // model for message passing (the §5.1 study compares like with
        // like), the shared-memory scenario for the protocol processor.
        let model_mp = scenario::solve(&Scenario::General(GeneralModel::homogeneous_all_to_all(
            machine, W,
        )))
        .unwrap()
        .r;
        let model_pp = scenario::solve(&Scenario::SharedMemory { machine, w: W })
            .unwrap()
            .r;
        let wl = AllToAllWorkload::new(machine, W).with_window(window(quick));
        let mp = measure(&wl.sim_config(5000 + so as u64), quick, |r| {
            r.aggregate.mean_r
        });
        let (sim_mp, sim_mp_hw) = mean_ci(&mp, |r| r.aggregate.mean_r);
        let pp = measure(
            &wl.sim_config_protocol_processor(6000 + so as u64),
            quick,
            |r| r.aggregate.mean_r,
        );
        let (sim_pp, sim_pp_hw) = mean_ci(&pp, |r| r.aggregate.mean_r);
        SharedMemPoint {
            so,
            model_mp,
            model_pp,
            sim_mp,
            sim_pp,
            sim_mp_hw,
            sim_pp_hw,
        }
    })
}

/// Regenerate the study.
pub fn run(quick: bool) -> ExpResult {
    let mut result = ExpResult::new("shared_mem");
    let pts = sweep(quick);

    let mut fig = Figure::new(
        "Shared memory (Section 5.1): protocol processor vs message passing (W=800, C^2=0)",
        "handler occupancy So (cycles)",
        "response time R (cycles)",
    );
    fig.push(Series::new(
        "LoPC message-passing",
        pts.iter().map(|p| (p.so, p.model_mp)).collect(),
    ));
    fig.push(Series::new(
        "LoPC protocol-processor",
        pts.iter().map(|p| (p.so, p.model_pp)).collect(),
    ));
    fig.push(Series::new(
        "sim message-passing",
        pts.iter().map(|p| (p.so, p.sim_mp)).collect(),
    ));
    fig.push(Series::new(
        "sim protocol-processor",
        pts.iter().map(|p| (p.so, p.sim_pp)).collect(),
    ));

    let mut cmp_mp = ComparisonTable::new("message-passing R (LoPC vs simulator)");
    let mut cmp_pp = ComparisonTable::new("protocol-processor R (LoPC vs simulator)");
    for p in &pts {
        cmp_mp.push_ci(format!("So={:.0}", p.so), p.model_mp, p.sim_mp, p.sim_mp_hw);
        cmp_pp.push_ci(format!("So={:.0}", p.so), p.model_pp, p.sim_pp, p.sim_pp_hw);
    }

    let last = pts.last().unwrap();
    result.note(format!(
        "protocol processor removes compute interference: at So={:.0}, \
         MP R={:.0} vs PP R={:.0} (sim: {:.0} vs {:.0})",
        last.so, last.model_mp, last.model_pp, last.sim_mp, last.sim_pp
    ));
    result.note(format!(
        "model error: MP max |err| {:.1}%, PP max |err| {:.1}%",
        cmp_mp.max_abs_err() * 100.0,
        cmp_pp.max_abs_err() * 100.0
    ));

    result.figures.push(fig);
    result.tables.push(cmp_mp);
    result.tables.push(cmp_pp);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_processor_is_never_slower() {
        for p in sweep(true) {
            assert!(p.model_pp <= p.model_mp + 1e-9, "model at So={}", p.so);
            assert!(p.sim_pp <= p.sim_mp * 1.01, "sim at So={}", p.so);
        }
    }

    #[test]
    fn model_tracks_sim_in_both_variants() {
        for p in sweep(true) {
            let e_mp = (p.model_mp - p.sim_mp).abs() / p.sim_mp;
            let e_pp = (p.model_pp - p.sim_pp).abs() / p.sim_pp;
            assert!(e_mp < 0.08, "MP err {:.1}% at So={}", e_mp * 100.0, p.so);
            assert!(e_pp < 0.08, "PP err {:.1}% at So={}", e_pp * 100.0, p.so);
        }
    }

    #[test]
    fn benefit_grows_with_occupancy() {
        let pts = sweep(true);
        let gain = |p: &SharedMemPoint| p.model_mp - p.model_pp;
        assert!(gain(pts.last().unwrap()) > gain(&pts[0]));
    }
}
