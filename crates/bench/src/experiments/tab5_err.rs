//! §5.3 error analysis: the numbers quoted in the thesis text.
//!
//! * LoPC over-estimates total runtime by ≤ 6 % (worst at `W = 0`), the
//!   error vanishing as `W` grows;
//! * the contention over-estimate is ≤ 17 % (worst at `W = 0`), mostly in
//!   the reply-handler component (~76 % over-prediction);
//! * the contention-free (naive LogP) model *under*-predicts by up to 37 %
//!   at `W = 0`, and its absolute error (~one handler) stays constant, so
//!   it is still ~13 % wrong at `W = 1024`.

use crate::experiments::{mean_ci, measure, window};
use crate::params::{fig5_machine, SO_FIG5};
use crate::ExpResult;
use lopc_core::AllToAll;
use lopc_report::{pct_err, ComparisonTable};
use lopc_solver::par_map;
use lopc_workloads::AllToAllWorkload;

/// Error measurements at one W point.
#[derive(Clone, Copy, Debug)]
pub struct ErrPoint {
    /// Work value.
    pub w: f64,
    /// LoPC total-response error vs simulation (signed).
    pub lopc_r_err: f64,
    /// LoPC contention error vs simulation (signed).
    pub lopc_c_err: f64,
    /// LoPC reply-handler contention error vs simulation (signed).
    pub lopc_ry_err: f64,
    /// Contention-free (LogP) total-response error vs simulation (signed).
    pub logp_r_err: f64,
    /// Simulated mean response time.
    pub sim_r: f64,
    /// 95 % half-width of the simulated response time.
    pub sim_r_hw: f64,
}

/// Measure errors across a W grid including the worst case `W = 0`.
pub fn error_sweep(quick: bool) -> Vec<ErrPoint> {
    let machine = fig5_machine();
    let ws = [0.0, 64.0, 256.0, 1024.0];
    par_map(&ws, |&w| {
        let sol = AllToAll::new(machine, w).solve().unwrap();
        let cf = machine.contention_free_response(w);
        let wl = AllToAllWorkload::new(machine, w).with_window(window(quick));
        let sim = measure(&wl.sim_config(3000 + w as u64), quick, |r| {
            r.aggregate.mean_r
        });
        let (r_sim, r_hw) = mean_ci(&sim, |r| r.aggregate.mean_r);
        let ry_sim = sim.stat(|r| r.aggregate.mean_ry).mean;
        let c_sim = r_sim - cf;
        ErrPoint {
            w,
            lopc_r_err: pct_err(sol.r, r_sim),
            lopc_c_err: pct_err(sol.contention, c_sim),
            lopc_ry_err: pct_err(sol.ry - SO_FIG5, ry_sim - SO_FIG5),
            logp_r_err: pct_err(cf, r_sim),
            sim_r: r_sim,
            sim_r_hw: r_hw,
        }
    })
}

/// Regenerate the error table.
pub fn run(quick: bool) -> ExpResult {
    let mut result = ExpResult::new("tab5_err");
    let points = error_sweep(quick);

    let mut lopc = ComparisonTable::new("LoPC total response error vs simulator");
    let mut logp = ComparisonTable::new("contention-free (LogP) total response error vs simulator");
    let machine = fig5_machine();
    for p in &points {
        let sol = AllToAll::new(machine, p.w).solve().unwrap();
        lopc.push_ci(format!("W={:.0}", p.w), sol.r, p.sim_r, p.sim_r_hw);
        logp.push_ci(
            format!("W={:.0}", p.w),
            machine.contention_free_response(p.w),
            p.sim_r,
            p.sim_r_hw,
        );
    }

    let worst = &points[0]; // W = 0
    let last = &points[points.len() - 1]; // W = 1024
    result.note(format!(
        "paper: LoPC over-predicts runtime by <=6% (worst W=0); measured at W=0: {:+.1}%",
        worst.lopc_r_err * 100.0
    ));
    result.note(format!(
        "paper: LoPC over-predicts contention by <=17% at W=0; measured: {:+.1}%",
        worst.lopc_c_err * 100.0
    ));
    result.note(format!(
        "paper: reply-handler contention over-predicted ~76% at W=0; measured: {:+.1}%",
        worst.lopc_ry_err * 100.0
    ));
    result.note(format!(
        "paper: contention-free model under-predicts 37% at W=0, 13% at W=1024; \
         measured: {:+.1}% and {:+.1}%",
        worst.logp_r_err * 100.0,
        last.logp_r_err * 100.0
    ));

    result.tables.push(lopc);
    result.tables.push(logp);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lopc_is_accurate_and_pessimistic_logp_is_not() {
        let pts = error_sweep(true);
        for p in &pts {
            // LoPC within a band around the paper's 6 % (quick windows are
            // noisy; allow 9 %).
            assert!(
                p.lopc_r_err.abs() < 0.09,
                "LoPC err {:.1}% at W={}",
                p.lopc_r_err * 100.0,
                p.w
            );
            // LogP always under-predicts.
            assert!(p.logp_r_err < 0.0, "LogP should under-predict at W={}", p.w);
        }
        // Worst LogP error at W=0 in the tens of percent.
        assert!(
            pts[0].logp_r_err < -0.20,
            "LogP err at W=0 was {:.1}%",
            pts[0].logp_r_err * 100.0
        );
        // LogP error still material at W=1024 (paper: 13 %).
        let last = pts.last().unwrap();
        assert!(
            last.logp_r_err < -0.05,
            "LogP err at W=1024 was {:.1}%",
            last.logp_r_err * 100.0
        );
    }

    #[test]
    fn lopc_over_predicts_contention_at_w0() {
        let pts = error_sweep(true);
        // Bard's approximation over-estimates queueing: contention error is
        // positive at W=0, bounded near the paper's 17 %.
        assert!(
            pts[0].lopc_c_err > 0.0 && pts[0].lopc_c_err < 0.35,
            "contention err {:.1}%",
            pts[0].lopc_c_err * 100.0
        );
        // Reply handler is the worst-predicted component (paper: ~76 %).
        assert!(
            pts[0].lopc_ry_err > pts[0].lopc_c_err,
            "reply contention should be the worst component"
        );
    }
}
