//! Figure 5-3: components of contention for 32-node all-to-all, handler time
//! 200 cycles, `C² = 0`.
//!
//! Decomposes the total contention `C = R − (W + 2St + 2So)` into the
//! interference suffered by the computation thread (`Rw − W`), the queueing
//! suffered by request handlers (`Rq − So`) and by reply handlers
//! (`Ry − So`), for both the model and the simulator. The §5.3 headline: to
//! a first approximation the total is one extra handler time (~200 cycles).

use crate::experiments::{mean_ci, measure, window};
use crate::params::{fig5_machine, SO_FIG5, W_GRID};
use crate::ExpResult;
use lopc_core::AllToAll;
use lopc_report::{ComparisonTable, Figure, Series};
use lopc_solver::par_map;
use lopc_workloads::AllToAllWorkload;

/// Per-W contention components from both model and simulator.
#[derive(Clone, Copy, Debug)]
pub struct Components {
    /// Work value.
    pub w: f64,
    /// Model `Rw − W`.
    pub model_rw: f64,
    /// Model `Rq − So`.
    pub model_rq: f64,
    /// Model `Ry − So`.
    pub model_ry: f64,
    /// Simulated `Rw − W`.
    pub sim_rw: f64,
    /// Simulated `Rq − So`.
    pub sim_rq: f64,
    /// Simulated `Ry − So`.
    pub sim_ry: f64,
    /// 95 % half-width of the simulated *total* contention.
    pub sim_total_hw: f64,
}

impl Components {
    /// Total modelled contention.
    pub fn model_total(&self) -> f64 {
        self.model_rw + self.model_rq + self.model_ry
    }

    /// Total simulated contention.
    pub fn sim_total(&self) -> f64 {
        self.sim_rw + self.sim_rq + self.sim_ry
    }
}

/// Compute the component breakdown across the W grid.
pub fn components(quick: bool) -> Vec<Components> {
    let machine = fig5_machine();
    par_map(&W_GRID, |&w| {
        let sol = AllToAll::new(machine, w).solve().unwrap();
        let wl = AllToAllWorkload::new(machine, w).with_window(window(quick));
        // Precision is driven on R; the component means and the total's
        // half-width come from the same replication set.
        let sim = measure(&wl.sim_config(2000 + w as u64), quick, |r| {
            r.aggregate.mean_r
        });
        let rw = sim.stat(|r| r.aggregate.mean_rw).mean;
        let rq = sim.stat(|r| r.aggregate.mean_rq).mean;
        let ry = sim.stat(|r| r.aggregate.mean_ry).mean;
        let (_, total_hw) = mean_ci(&sim, |r| {
            r.aggregate.mean_rw + r.aggregate.mean_rq + r.aggregate.mean_ry
        });
        Components {
            w,
            model_rw: sol.rw - w,
            model_rq: sol.rq - SO_FIG5,
            model_ry: sol.ry - SO_FIG5,
            sim_rw: rw - w,
            sim_rq: rq - SO_FIG5,
            sim_ry: ry - SO_FIG5,
            sim_total_hw: total_hw,
        }
    })
}

/// Regenerate the figure.
pub fn run(quick: bool) -> ExpResult {
    let mut result = ExpResult::new("fig5_3");
    let comps = components(quick);

    let mut fig = Figure::new(
        "Figure 5-3: Components of contention, 32-node all-to-all (So=200, C^2=0)",
        "Work (cycles)",
        "contention (cycles)",
    );
    let take = |f: fn(&Components) -> f64| -> Vec<(f64, f64)> {
        comps.iter().map(|c| (c.w, f(c))).collect()
    };
    fig.push(Series::new("LoPC Rw-W", take(|c| c.model_rw)));
    fig.push(Series::new("LoPC Rq-So", take(|c| c.model_rq)));
    fig.push(Series::new("LoPC Ry-So", take(|c| c.model_ry)));
    fig.push(Series::new("LoPC total", take(|c| c.model_total())));
    fig.push(Series::new("sim Rw-W", take(|c| c.sim_rw)));
    fig.push(Series::new("sim Rq-So", take(|c| c.sim_rq)));
    fig.push(Series::new("sim Ry-So", take(|c| c.sim_ry)));
    fig.push(Series::new("sim total", take(|c| c.sim_total())));

    let mut cmp = ComparisonTable::new("total contention (LoPC vs simulator)");
    for c in &comps {
        cmp.push_ci(
            format!("W={:.0}", c.w),
            c.model_total(),
            c.sim_total(),
            c.sim_total_hw,
        );
    }

    let mid = &comps[comps.len() / 2];
    result.note(format!(
        "paper: contention ~= one extra handler (200 cycles); measured at W={:.0}: \
         model {:.0}, sim {:.0}",
        mid.w,
        mid.model_total(),
        mid.sim_total()
    ));
    result.note(format!(
        "paper: LoPC overestimates contention by <=17% (worst at W=0); measured max \
         over-prediction {:.1}%",
        cmp.rows
            .iter()
            .map(|r| r.err())
            .fold(f64::NEG_INFINITY, f64::max)
            * 100.0
    ));

    result.figures.push(fig);
    result.tables.push(cmp);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_is_about_one_handler() {
        let comps = components(true);
        for c in &comps {
            // Bounded by eq. 5.12: total contention in (0, 1.46·So].
            assert!(c.model_total() > 0.0);
            assert!(
                c.model_total() <= 1.46 * SO_FIG5 + 1.0,
                "model total {} at W={}",
                c.model_total(),
                c.w
            );
            // Simulator in the same ballpark.
            assert!(
                c.sim_total() > 0.3 * SO_FIG5 && c.sim_total() < 1.6 * SO_FIG5,
                "sim total {} at W={}",
                c.sim_total(),
                c.w
            );
        }
    }

    #[test]
    fn rw_component_grows_with_w() {
        // At large W, most contention is interrupted compute (Rw − W); at
        // W→0 it is handler queueing.
        let comps = components(true);
        let first = &comps[0];
        let last = &comps[comps.len() - 1];
        assert!(last.model_rw > first.model_rw);
        assert!(first.model_rq > last.model_rq);
    }
}
