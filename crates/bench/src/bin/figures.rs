//! Regenerate every table and figure of the LoPC thesis.
//!
//! ```text
//! figures [--exp <id>] [--quick] [--out <dir>]
//! ```
//!
//! Renders ASCII charts and comparison tables to stdout and writes each
//! figure's data as CSV under `--out` (default `target/figures`). With no
//! `--exp`, all experiments run. `--quick` shrinks simulation windows (used
//! by the smoke tests).

use lopc_bench::{run_experiment, ALL_EXPERIMENTS};
use lopc_report::{render_chart, write_csv, ChartOptions};
use std::path::PathBuf;

fn main() {
    let mut exps: Vec<String> = Vec::new();
    let mut quick = false;
    let mut out = PathBuf::from("target/figures");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => {
                let id = args
                    .next()
                    .unwrap_or_else(|| usage("missing id after --exp"));
                exps.push(id);
            }
            "--quick" => quick = true,
            "--out" => {
                out = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("missing dir after --out")),
                );
            }
            "--list" => {
                for e in ALL_EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if exps.is_empty() {
        exps = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    for id in &exps {
        let Some(result) = run_experiment(id, quick) else {
            eprintln!("unknown experiment: {id} (try --list)");
            std::process::exit(2);
        };
        println!("\n================================================================");
        println!("experiment: {}", result.name);
        println!("================================================================");
        for fig in &result.figures {
            println!("\n{}", render_chart(fig, &ChartOptions::default()));
            let path = out.join(format!("{}_{}.csv", result.name, slug(&fig.title)));
            match write_csv(fig, &path) {
                Ok(()) => println!("  [csv] {}", path.display()),
                Err(e) => eprintln!("  [csv] failed to write {}: {e}", path.display()),
            }
        }
        for table in &result.tables {
            println!("\n{}", table.render());
        }
        if !result.notes.is_empty() {
            println!("\nheadlines:");
            for n in &result.notes {
                println!("  - {n}");
            }
        }
    }
}

fn slug(title: &str) -> String {
    title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .take(6)
        .collect::<Vec<_>>()
        .join("_")
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: figures [--exp <id>]... [--quick] [--out <dir>] [--list]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
