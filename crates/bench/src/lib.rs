//! Experiment harness: one module per table/figure of the LoPC thesis.
//!
//! Every experiment produces an [`ExpResult`] holding the regenerated data
//! series, model-vs-simulator comparison tables, and headline notes (the
//! "paper says X, we measure Y" lines recorded in EXPERIMENTS.md). The
//! `figures` binary renders all of them; the criterion benches print each
//! experiment's headline and then time its computational kernel.
//!
//! Parameter choices that the scanned thesis leaves ambiguous (exact axis
//! values for W and St) are centralised in [`params`] and documented in
//! DESIGN.md §3 (substitutions).

pub mod baseline;
pub mod experiments;
pub mod params;

use lopc_report::{ComparisonTable, Figure};

/// The output of one reproduction experiment.
#[derive(Clone, Debug, Default)]
pub struct ExpResult {
    /// Experiment id (`fig5_1`, `tab5_err`, …).
    pub name: String,
    /// Regenerated figures.
    pub figures: Vec<Figure>,
    /// Model-vs-measurement comparisons.
    pub tables: Vec<ComparisonTable>,
    /// Headline observations ("paper: ≤6 % — measured: 4.1 %").
    pub notes: Vec<String>,
}

impl ExpResult {
    /// New empty result.
    pub fn new(name: impl Into<String>) -> Self {
        ExpResult {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

/// All experiment ids, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig5_1",
    "fig5_2",
    "fig5_3",
    "tab5_err",
    "fig6_2",
    "matvec",
    "rule_of_thumb",
    "shared_mem",
    "general",
    "pipelining",
];

/// Run one experiment by id. `quick` shrinks simulation windows for smoke
/// tests; the real harness uses `quick = false`.
pub fn run_experiment(name: &str, quick: bool) -> Option<ExpResult> {
    match name {
        "fig5_1" => Some(experiments::fig5_1::run(quick)),
        "fig5_2" => Some(experiments::fig5_2::run(quick)),
        "fig5_3" => Some(experiments::fig5_3::run(quick)),
        "tab5_err" => Some(experiments::tab5_err::run(quick)),
        "fig6_2" => Some(experiments::fig6_2::run(quick)),
        "matvec" => Some(experiments::matvec::run(quick)),
        "rule_of_thumb" => Some(experiments::rule_of_thumb::run(quick)),
        "shared_mem" => Some(experiments::shared_mem::run(quick)),
        "general" => Some(experiments::general::run(quick)),
        "pipelining" => Some(experiments::pipelining::run(quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("nope", true).is_none());
    }

    #[test]
    fn all_experiments_listed_are_runnable() {
        // Smoke-run the cheapest one to avoid heavy work in unit tests; the
        // full set is exercised by the figures binary and integration tests.
        assert!(ALL_EXPERIMENTS.contains(&"fig5_1"));
        let r = run_experiment("fig5_1", true).unwrap();
        assert_eq!(r.name, "fig5_1");
        assert!(!r.figures.is_empty());
    }
}
