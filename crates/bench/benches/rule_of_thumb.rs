//! Rule-of-thumb bench: regenerates the §5.3 bounds/rule-of-thumb grid and
//! times the 45-point validation sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::experiments::rule_of_thumb::grid;
use lopc_bench::run_experiment;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("rule_of_thumb", true).unwrap();
    println!(
        "\n[rule_of_thumb] {}",
        result.notes.join("\n[rule_of_thumb] ")
    );

    let mut g = c.benchmark_group("rule_of_thumb");
    g.bench_function("bounds_grid_45_points", |b| {
        b.iter(|| black_box(grid().len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
