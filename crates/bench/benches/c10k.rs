//! C10K: the readiness-based server core under a massive idle keep-alive
//! population (persisted as the `c10k` section of `BENCH_sim.json`).
//!
//! The LoPC thesis in serving clothes: idle *waiting* connections must not
//! contend for the *computing* resource (worker threads). The old
//! thread-per-connection core capped concurrent connections at the worker
//! count; the epoll reactor parks idle connections as a few hundred bytes
//! of slab state. This bench measures exactly that decoupling:
//!
//! * `c10k/active_baseline` — p99 single-request latency, 4 closed-loop
//!   clients, **zero** idle connections;
//! * `c10k/active_under_idle` — the same 4 clients with `LOPC_C10K_CONNS`
//!   (default 10 000) established idle keep-alive connections parked on
//!   the same server (4 worker threads throughout);
//! * derived: requests/s for both phases, p99 ratio (acceptance: ≤ 2×),
//!   sustained idle connection count, and resident memory per idle
//!   connection.
//!
//! The client ends of the idle population live in a re-exec'd *child
//! process* (`LOPC_C10K_CHILD` mode below): the parent's fd budget then
//! pays one fd per idle connection (the server end) instead of two, which
//! is what lets 10 000 connections fit under a 20 000 hard `RLIMIT_NOFILE`
//! that the container refuses to raise. The harness still scales the
//! target down (with a loud note) if even that cannot fit.

use lopc_bench::baseline::{self, Section};
use lopc_core::{Machine, Scenario};
use lopc_serve::server::{start, ServerConfig};
use lopc_serve::Client;
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const ACTIVE_CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 2000;
const WORKERS: usize = 4;

fn scenario_pool() -> Vec<Scenario> {
    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    (0..64)
        .map(|i| Scenario::AllToAll {
            machine,
            w: 100.0 * (i + 1) as f64,
        })
        .collect()
}

/// Run the 4-client closed-loop phase; returns (total_wall, sorted
/// per-request latencies).
fn active_phase(addr: std::net::SocketAddr, pool: &[Scenario]) -> (Duration, Vec<Duration>) {
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ACTIVE_CLIENTS)
            .map(|t| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect active client");
                    let mut local = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for i in 0..REQUESTS_PER_CLIENT {
                        let s = &pool[(t * 17 + i * 7) % pool.len()];
                        let q0 = Instant::now();
                        black_box(client.predict(s).expect("predict").r);
                        local.push(q0.elapsed());
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("active client panicked"))
            .collect()
    });
    let wall = t0.elapsed();
    latencies.sort();
    (wall, latencies)
}

fn p99(sorted: &[Duration]) -> Duration {
    sorted[(sorted.len() * 99) / 100 - 1]
}

/// Resident set size of this process, in bytes (`VmRSS` from
/// `/proc/self/status`).
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Child mode: hold `count` idle keep-alive connections to `addr` open,
/// announce readiness on stdout, and exit when the parent closes stdin.
fn run_child(spec: &str) {
    let (addr, count) = spec.split_once(' ').expect("spec is 'addr count'");
    let count: usize = count.parse().expect("count");
    let addr: std::net::SocketAddr = addr.parse().expect("addr");
    let _ = lopc_serve::sys::raise_nofile_limit(count as u64 + 256);
    let _conns: Vec<TcpStream> = (0..count)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle connect #{i}: {e}")))
        .collect();
    println!("ready");
    // Park until the parent is done (stdin EOF), keeping every socket open.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
}

fn main() {
    if let Ok(spec) = std::env::var("LOPC_C10K_CHILD") {
        run_child(&spec);
        return;
    }

    let target_conns: usize = std::env::var("LOPC_C10K_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    // One fd per idle connection (the server end — the client ends live in
    // the child process), plus headroom for the active clients, listener,
    // epoll, and stdio.
    let want_fds = target_conns as u64 + 256;
    let limit = lopc_serve::sys::raise_nofile_limit(want_fds).unwrap_or(0);
    let idle_conns = if limit < want_fds {
        let fit = (limit.saturating_sub(256)) as usize;
        println!(
            "[c10k] NOFILE limit {limit} cannot hold {target_conns} conns; \
             scaling down to {fit}"
        );
        fit
    } else {
        target_conns
    };

    let server = start(ServerConfig {
        workers: WORKERS,
        // The idle population must survive the whole run un-reaped.
        idle_timeout: Duration::from_secs(600),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let pool = scenario_pool();

    // Warm the cache so both phases measure the serving path, not solves.
    {
        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(
            client.predict_batch(&pool).expect("warm-up").len(),
            pool.len()
        );
    }

    // Phase 1: active load, zero idle connections.
    let (base_wall, base_lat) = active_phase(addr, &pool);
    let base_p99 = p99(&base_lat);
    let total_reqs = (ACTIVE_CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let base_rps = total_reqs / base_wall.as_secs_f64();
    println!(
        "[c10k] baseline (0 idle conns): {base_rps:.0} req/s, p99 {:.1} us",
        base_p99.as_secs_f64() * 1e6
    );

    // Phase 2: park the idle population, held by a child process so its
    // client-side fds come out of a separate budget.
    let rss_before = rss_bytes();
    let mut child = std::process::Command::new(std::env::current_exe().expect("current_exe"))
        .env("LOPC_C10K_CHILD", format!("{addr} {idle_conns}"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn idle-connection holder");
    {
        let mut ready = String::new();
        BufReader::new(child.stdout.as_mut().expect("child stdout"))
            .read_line(&mut ready)
            .expect("child readiness");
        assert_eq!(ready.trim(), "ready", "child failed to park connections");
    }
    let accept_deadline = Instant::now() + Duration::from_secs(30);
    while (server.service().metrics().open_connections() as usize) < idle_conns {
        assert!(
            Instant::now() < accept_deadline,
            "reactor accepted only {} of {idle_conns} idle conns",
            server.service().metrics().open_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let rss_after = rss_bytes();
    let bytes_per_conn = match (rss_before, rss_after) {
        (Some(b), Some(a)) if idle_conns > 0 => {
            Some((a.saturating_sub(b)) as f64 / idle_conns as f64)
        }
        _ => None,
    };
    println!(
        "[c10k] parked {idle_conns} idle keep-alive connections on {WORKERS} workers{}",
        bytes_per_conn
            .map(|b| format!(", ~{b:.0} bytes server RSS per conn"))
            .unwrap_or_default()
    );

    // Phase 3: the same active load with the idle population parked.
    let (idle_wall, idle_lat) = active_phase(addr, &pool);
    let idle_p99 = p99(&idle_lat);
    let idle_rps = total_reqs / idle_wall.as_secs_f64();
    let open_during = server.service().metrics().open_connections();
    println!(
        "[c10k] under {idle_conns} idle conns: {idle_rps:.0} req/s, p99 {:.1} us \
         ({open_during} conns open)",
        idle_p99.as_secs_f64() * 1e6
    );

    // Acceptance: the idle population must actually be held, and p99 of
    // active traffic must stay within 2x of the idle-free baseline (with a
    // 10 us floor so scheduler noise on a near-zero baseline cannot flap
    // the gate).
    assert!(
        open_during as usize >= idle_conns,
        "idle population collapsed: {open_during} open < {idle_conns}"
    );
    let floor = Duration::from_micros(10);
    assert!(
        idle_p99 <= base_p99.max(floor) * 2,
        "p99 under idle load {idle_p99:?} exceeds 2x baseline {base_p99:?}"
    );

    // Shutdown with the whole idle population still parked: event-driven
    // teardown must stay fast at C10K scale.
    let t0 = Instant::now();
    server.shutdown();
    println!(
        "[c10k] shutdown with {idle_conns} idle conns parked took {:?}",
        t0.elapsed()
    );
    drop(child.stdin.take()); // stdin EOF: child exits and drops its sockets
    let _ = child.wait();

    // -- Persist the baseline ----------------------------------------------
    let mut section = Section::new("c10k");
    section.entry(
        "c10k/active_baseline",
        base_wall.as_nanos() as f64,
        Some(total_reqs as u64),
    );
    section.entry(
        "c10k/active_under_idle",
        idle_wall.as_nanos() as f64,
        Some(total_reqs as u64),
    );
    section.derived("idle_connections_held", idle_conns as f64);
    section.derived("baseline_rps", base_rps);
    section.derived("under_idle_rps", idle_rps);
    section.derived("baseline_p99_us", base_p99.as_secs_f64() * 1e6);
    section.derived("under_idle_p99_us", idle_p99.as_secs_f64() * 1e6);
    section.derived(
        "p99_ratio",
        idle_p99.as_secs_f64() / base_p99.max(floor).as_secs_f64(),
    );
    if let Some(b) = bytes_per_conn {
        section.derived("rss_bytes_per_idle_conn", b);
    }
    match baseline::update(&baseline::default_path(), section) {
        Ok(path) => println!("[c10k] baseline written to {}", path.display()),
        Err(e) => eprintln!("[c10k] could not write baseline: {e}"),
    }
}
