//! §3 matvec bench: regenerates the worked-example table and times the
//! characterisation + prediction and a small end-to-end simulated multiply.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::run_experiment;
use lopc_core::Machine;
use lopc_sim::run;
use lopc_workloads::MatVec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("matvec", true).unwrap();
    println!("\n[matvec] {}", result.notes.join("\n[matvec] "));

    let machine = Machine::new(8, 25.0, 200.0).with_c2(0.0);

    let mut g = c.benchmark_group("matvec");
    g.bench_function("characterise_and_predict_n512", |b| {
        b.iter(|| {
            let mv = MatVec::new(black_box(512), machine, 4.0);
            black_box(mv.predicted_runtime().unwrap())
        })
    });
    g.sample_size(10);
    g.bench_function("simulate_full_multiply_n128", |b| {
        let mv = MatVec::new(128, machine, 4.0);
        let cfg = mv.sim_config(3);
        b.iter(|| black_box(run(&cfg).unwrap().makespan))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
