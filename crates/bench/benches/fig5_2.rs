//! Figure 5-2 bench: regenerates the response-time-vs-W figure (model,
//! bounds, simulator) and times both the model solve and one simulator run.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::params::fig5_machine;
use lopc_bench::run_experiment;
use lopc_core::AllToAll;
use lopc_sim::run;
use lopc_workloads::{AllToAllWorkload, Window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("fig5_2", true).unwrap();
    println!("\n[fig5_2] {}", result.notes.join("\n[fig5_2] "));

    let mut g = c.benchmark_group("fig5_2");
    g.bench_function("model_solve_w512", |b| {
        let model = AllToAll::new(fig5_machine(), 512.0);
        b.iter(|| black_box(model.solve().unwrap().r))
    });
    g.sample_size(10);
    g.bench_function("sim_run_w512_quick_window", |b| {
        let wl = AllToAllWorkload::new(fig5_machine(), 512.0).with_window(Window::quick());
        let cfg = wl.sim_config(1);
        b.iter(|| black_box(run(&cfg).unwrap().aggregate.mean_r))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
