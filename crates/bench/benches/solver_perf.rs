//! Solver strategy bench: bisection vs secant vs damped fixed-point on the
//! §5.3 `F[R] = R` equation (the quartic the thesis solves numerically).
//!
//! Results are persisted as the `solver_perf` section of `BENCH_sim.json`
//! at the repository root (format documented in the README).

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::baseline::{self, Section};
use lopc_bench::params::fig5_machine;
use lopc_core::AllToAll;
use lopc_solver::{bisect, secant, solve_damped, FixedPointOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = AllToAll::new(fig5_machine(), 512.0);
    let lo = model.contention_free();
    let hi = model.upper_bound();

    // Correctness cross-check before timing: all three agree.
    let r_bis = bisect(|r| model.eval_f(r) - r, lo, hi + 1.0, 1e-10, 200)
        .unwrap()
        .x;
    let r_sec = secant(|r| model.eval_f(r) - r, lo + 1.0, hi, 1e-9, 100)
        .unwrap()
        .x;
    let r_fp = solve_damped(
        vec![lo + 1.0],
        |x, out| out[0] = model.eval_f(x[0]),
        &FixedPointOptions {
            damping: 0.5,
            tol: 1e-12,
            max_iter: 100_000,
        },
    )
    .unwrap()
    .x[0];
    println!("[solver_perf] bisection {r_bis:.6} / secant {r_sec:.6} / fixed-point {r_fp:.6}");
    assert!((r_bis - r_sec).abs() < 1e-4 && (r_bis - r_fp).abs() < 1e-4);

    let mut g = c.benchmark_group("solver_perf");
    g.bench_function("bisection", |b| {
        b.iter(|| {
            black_box(
                bisect(|r| model.eval_f(r) - r, black_box(lo), hi + 1.0, 1e-10, 200)
                    .unwrap()
                    .x,
            )
        })
    });
    g.bench_function("secant", |b| {
        b.iter(|| {
            black_box(
                secant(|r| model.eval_f(r) - r, black_box(lo) + 1.0, hi, 1e-9, 100)
                    .unwrap()
                    .x,
            )
        })
    });
    g.bench_function("damped_fixed_point", |b| {
        b.iter(|| {
            black_box(
                solve_damped(
                    vec![black_box(lo) + 1.0],
                    |x, out| out[0] = model.eval_f(x[0]),
                    &FixedPointOptions {
                        damping: 0.5,
                        tol: 1e-12,
                        max_iter: 100_000,
                    },
                )
                .unwrap()
                .x[0],
            )
        })
    });
    g.finish();

    let mut section = Section::new("solver_perf");
    for r in criterion::take_results() {
        section.entry(
            format!("{}/{}", r.group, r.id),
            r.ns_per_iter,
            r.elements_per_iter,
        );
    }
    match baseline::update(&baseline::default_path(), section) {
        Ok(path) => println!("[solver_perf] baseline written to {}", path.display()),
        Err(e) => eprintln!("[solver_perf] could not write baseline: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
