//! Conservative parallel simulation bench: per-thread scaling of
//! `lopc_sim::par::run_par` against the sequential engine at two machine
//! sizes, after asserting the runs are bit-identical (equivalence is the
//! gate — DESIGN.md §13; speedup is recorded, not gated, because the CI
//! box has a single core and the numbers there measure synchronization
//! overhead, not parallelism).
//!
//! Results are persisted as the `par_sim` section of `BENCH_sim.json` at
//! the repository root so every run extends the perf baseline that later
//! PRs compare against.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lopc_bench::baseline::{self, Section};
use lopc_dist::ServiceTime;
use lopc_sim::{
    run_par, run_with_scheduler, DestChooser, ParOptions, Scheduler, SimConfig, StopCondition,
    ThreadSpec,
};
use std::hint::black_box;

/// Homogeneous all-to-all machine sized for the parallel engine: enough
/// nodes that each of 4 LPs holds a big per-LP calendar population.
fn sim_cfg(p: usize, cycles: u64) -> SimConfig {
    SimConfig {
        p,
        net_latency: 25.0,
        request_handler: ServiceTime::constant(200.0),
        reply_handler: ServiceTime::constant(200.0),
        threads: vec![
            ThreadSpec {
                work: Some(ServiceTime::constant(512.0)),
                dest: DestChooser::UniformOther,
                hops: 1,
                fanout: 1,
            };
            p
        ],
        protocol_processor: false,
        latency_dist: None,
        stop: StopCondition::CyclesPerThread { n: cycles },
        seed: 42,
    }
}

fn bench(c: &mut Criterion) {
    const THREADS: [usize; 3] = [1, 2, 4];
    const LPS: usize = 4;
    let sizes: [(usize, u64); 2] = [(4096, 4), (65536, 2)];

    let mut g = c.benchmark_group("par_sim");
    for &(p, cycles) in &sizes {
        let cfg = sim_cfg(p, cycles);

        // Pre-flight: the parallel runs being timed are the sequential run,
        // bit for bit — otherwise the throughput comparison is meaningless.
        let reference = run_with_scheduler(&cfg, Scheduler::Calendar).unwrap();
        for threads in THREADS {
            let opts = ParOptions {
                lps: LPS,
                threads,
                scheduler: Some(Scheduler::Calendar),
                trace: false,
            };
            let par = run_par(&cfg, &opts).unwrap();
            assert_eq!(
                par, reference,
                "parallel run diverged at P={p} threads={threads}"
            );
        }
        println!(
            "[par_sim] P={p}: {} events/run, mean R = {:.1}",
            reference.events, reference.aggregate.mean_r
        );

        g.sample_size(10);
        g.throughput(Throughput::Elements(reference.events));
        g.bench_function(format!("seq_p{p}"), |b| {
            b.iter(|| {
                black_box(
                    run_with_scheduler(&cfg, Scheduler::Calendar)
                        .unwrap()
                        .events,
                )
            })
        });
        for threads in THREADS {
            let opts = ParOptions {
                lps: LPS,
                threads,
                scheduler: Some(Scheduler::Calendar),
                trace: false,
            };
            g.bench_function(format!("par_t{threads}_p{p}"), |b| {
                b.iter(|| black_box(run_par(&cfg, &opts).unwrap().events))
            });
        }
    }
    g.finish();

    // -- Persist the baseline ----------------------------------------------
    let records = criterion::take_results();
    let mut section = Section::new("par_sim");
    let ns_of = |id: &str| {
        records
            .iter()
            .find(|r| r.group == "par_sim" && r.id == id)
            .map(|r| r.ns_per_iter)
    };
    for r in &records {
        section.entry(
            format!("{}/{}", r.group, r.id),
            r.ns_per_iter,
            r.elements_per_iter,
        );
    }
    for &(p, _) in &sizes {
        if let Some(seq) = ns_of(&format!("seq_p{p}")) {
            for threads in THREADS {
                if let Some(par) = ns_of(&format!("par_t{threads}_p{p}")) {
                    let s = seq / par;
                    section.derived(format!("par_speedup_t{threads}_p{p}"), s);
                    println!("[par_sim] P={p} threads={threads}: {s:.2}x vs sequential");
                }
            }
        }
    }
    match baseline::update(&baseline::default_path(), section) {
        Ok(path) => println!("[par_sim] baseline written to {}", path.display()),
        Err(e) => eprintln!("[par_sim] could not write baseline: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
