//! §5.1 shared-memory bench: regenerates the protocol-processor study and
//! times the two model variants.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::run_experiment;
use lopc_core::{GeneralModel, Machine};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("shared_mem", true).unwrap();
    println!("\n[shared_mem] {}", result.notes.join("\n[shared_mem] "));

    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);

    let mut g = c.benchmark_group("shared_mem");
    g.bench_function("message_passing_solve", |b| {
        b.iter(|| {
            let m = GeneralModel::homogeneous_all_to_all(black_box(machine), 800.0);
            black_box(m.solve().unwrap().r[0])
        })
    });
    g.bench_function("protocol_processor_solve", |b| {
        b.iter(|| {
            let m = GeneralModel::homogeneous_all_to_all(black_box(machine), 800.0)
                .with_protocol_processor();
            black_box(m.solve().unwrap().r[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
