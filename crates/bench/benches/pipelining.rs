//! Fork-join extension bench: regenerates the fan-out study and times the
//! extension model solve plus one fan-out simulator run.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::run_experiment;
use lopc_core::{ForkJoin, Machine};
use lopc_sim::run;
use lopc_workloads::{BulkSync, Window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("pipelining", true).unwrap();
    println!("\n[pipelining] {}", result.notes.join("\n[pipelining] "));

    let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);

    let mut g = c.benchmark_group("pipelining");
    g.bench_function("fork_join_solve_k4", |b| {
        let model = ForkJoin::new(machine, 2000.0, 4);
        b.iter(|| black_box(model.solve().unwrap().r))
    });
    g.sample_size(10);
    g.bench_function("sim_run_k4_quick_window", |b| {
        let wl = BulkSync::new(machine, 2000.0, 4).with_window(Window::quick());
        let cfg = wl.sim_config(1);
        b.iter(|| black_box(run(&cfg).unwrap().aggregate.mean_r))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
