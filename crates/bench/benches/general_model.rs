//! Appendix A bench: regenerates the multi-hop/hotspot study and times the
//! general AMVA solver at several scales.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::run_experiment;
use lopc_core::{GeneralModel, Machine};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("general", true).unwrap();
    println!("\n[general] {}", result.notes.join("\n[general] "));

    let mut g = c.benchmark_group("general_model");
    for &p in &[8usize, 32, 128] {
        let machine = Machine::new(p, 25.0, 150.0).with_c2(0.0);
        g.bench_function(format!("homogeneous_solve_p{p}"), |b| {
            b.iter(|| {
                let m = GeneralModel::homogeneous_all_to_all(black_box(machine), 800.0);
                black_box(m.solve().unwrap().iterations)
            })
        });
    }
    let machine = Machine::new(32, 25.0, 150.0).with_c2(0.0);
    g.bench_function("multi_hop3_solve_p32", |b| {
        b.iter(|| {
            let m = GeneralModel::multi_hop(black_box(machine), 800.0, 3);
            black_box(m.solve().unwrap().r[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
