//! §5.3 error-table bench: regenerates the LoPC/LogP error analysis and
//! times the worst-case (`W = 0`) model solve.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::params::fig5_machine;
use lopc_bench::run_experiment;
use lopc_core::AllToAll;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("tab5_err", true).unwrap();
    println!("\n[tab5_err] {}", result.notes.join("\n[tab5_err] "));

    let mut g = c.benchmark_group("tab5_err");
    g.bench_function("worst_case_w0_solve", |b| {
        let model = AllToAll::new(fig5_machine(), 0.0);
        b.iter(|| black_box(model.solve().unwrap().contention))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
