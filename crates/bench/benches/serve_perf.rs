//! Serving-layer performance: load-generates a running `lopc-serve`
//! instance over real sockets and records the serving-throughput baseline.
//!
//! Measured (persisted as the `serve_perf` section of `BENCH_sim.json`):
//!
//! * `serve_batch/warm` — one `POST /v1/predict/batch` of the full mixed
//!   scenario pool against a warmed cache: the repeated-sweep fast path;
//! * `serve_batch/cold` — the same batch shape but every scenario fresh
//!   (unique quantized key), so each entry pays its full model solve;
//! * `serve_single/warm` — single `POST /v1/predict` requests round-robin
//!   over the pool on one keep-alive connection: per-request overhead;
//! * `serve_mixed/open_loop_4clients` — four concurrent clients issuing
//!   single mixed requests (16 each per iteration): the contended path
//!   through accept queue, worker pool, and cache shards;
//!
//! plus the derived headlines `cache_hit_speedup` (cold ns / warm ns for
//! the identical batch shape — the acceptance criterion requires > 1×),
//! `batch_rps_warm`, and `mixed_rps`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lopc_bench::baseline::{self, Section};
use lopc_core::{GeneralModel, Machine, Scenario};
use lopc_serve::server::{start, ServerConfig};
use lopc_serve::Client;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// The mixed scenario pool: every variant, sweep-like parameter spreads.
/// `epoch` shifts every machine's wire latency `St` by its (integer)
/// value, so each epoch produces a pool of entirely new cache keys —
/// integers below 1e5 survive the cache's 6-significant-digit key
/// quantization exactly, and no bench run comes near 1e5 epochs.
fn pool(epoch: u64) -> Vec<Scenario> {
    let st = epoch as f64;
    let m32 = Machine::new(32, 25.0 + st, 200.0).with_c2(0.0);
    let m16 = Machine::new(16, 50.0 + st, 131.0).with_c2(1.0);
    let mut scenarios = Vec::with_capacity(64);
    for i in 0..24 {
        scenarios.push(Scenario::AllToAll {
            machine: m32,
            w: 100.0 * (i + 1) as f64,
        });
    }
    for i in 0..16 {
        scenarios.push(Scenario::ClientServer {
            machine: m16,
            w: 500.0 + 50.0 * i as f64,
            ps: Some(1 + (i % 8)),
        });
    }
    for i in 0..8 {
        scenarios.push(Scenario::ForkJoin {
            machine: m32,
            w: 2000.0 + 10.0 * i as f64,
            k: 1 + (i % 4) as u32,
        });
    }
    for i in 0..8 {
        scenarios.push(Scenario::SharedMemory {
            machine: m16,
            w: 800.0 + 25.0 * i as f64,
        });
    }
    for i in 0..8 {
        scenarios.push(Scenario::General(GeneralModel::multi_hop(
            m16,
            300.0 + 40.0 * i as f64,
            1 + (i % 3) as u32,
        )));
    }
    scenarios
}

fn bench(c: &mut Criterion) {
    let server = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    let warm_pool = pool(0);
    let n = warm_pool.len() as u64;

    // Warm the cache once, and sanity-check the serving path end to end.
    {
        let mut client = Client::connect(addr).expect("connect");
        let served = client.predict_batch(&warm_pool).expect("warm-up batch");
        assert_eq!(served.len(), warm_pool.len());
        for (s, p) in warm_pool.iter().zip(&served) {
            let direct = lopc_core::scenario::solve(s).unwrap();
            assert!(
                lopc_serve::predictions_identical(p, &direct),
                "served != library for {}",
                s.kind()
            );
        }
    }

    let mut g = c.benchmark_group("serve_batch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    g.bench_function("warm", |b| {
        let mut client = Client::connect(addr).expect("connect");
        b.iter(|| black_box(client.predict_batch(&warm_pool).expect("batch").len()))
    });
    // Cold: every iteration asks for a pool nobody has asked for before
    // (see `pool` for why epochs can never collide in cache-key space).
    let cold_epoch = AtomicU64::new(1);
    g.bench_function("cold", |b| {
        let mut client = Client::connect(addr).expect("connect");
        b.iter(|| {
            let fresh = pool(cold_epoch.fetch_add(1, Ordering::Relaxed));
            black_box(client.predict_batch(&fresh).expect("batch").len())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("serve_single");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));
    let cursor = AtomicU64::new(0);
    g.bench_function("warm", |b| {
        let mut client = Client::connect(addr).expect("connect");
        b.iter(|| {
            let i = cursor.fetch_add(1, Ordering::Relaxed) as usize % warm_pool.len();
            black_box(client.predict(&warm_pool[i]).expect("predict").r)
        })
    });
    g.finish();

    // Open-loop mixed workload: 4 clients, 16 single requests each per
    // iteration, all against the warmed pool.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 16;
    let mut g = c.benchmark_group("serve_mixed");
    g.sample_size(10);
    g.throughput(Throughput::Elements((CLIENTS * PER_CLIENT) as u64));
    g.bench_function("open_loop_4clients", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for t in 0..CLIENTS {
                    let pool = &warm_pool;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        for i in 0..PER_CLIENT {
                            let s = &pool[(t * PER_CLIENT + i * 7) % pool.len()];
                            black_box(client.predict(s).expect("predict").r);
                        }
                    });
                }
            })
        })
    });
    g.finish();

    // -- Persist the baseline ----------------------------------------------
    let records = criterion::take_results();
    let mut section = Section::new("serve_perf");
    for r in &records {
        section.entry(
            format!("{}/{}", r.group, r.id),
            r.ns_per_iter,
            r.elements_per_iter,
        );
    }
    let ns_of = |group: &str, id: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.ns_per_iter)
    };
    if let (Some(cold), Some(warm)) = (ns_of("serve_batch", "cold"), ns_of("serve_batch", "warm")) {
        let speedup = cold / warm;
        section.derived("cache_hit_speedup", speedup);
        section.derived("batch_rps_warm", n as f64 / warm * 1e9);
        println!(
            "[serve_perf] cache-hit speedup (cold/warm batch): {speedup:.2}x, \
             warm batch throughput {:.0} scenarios/s",
            n as f64 / warm * 1e9
        );
        assert!(
            speedup > 1.0,
            "repeated-query workload must beat cold solves (got {speedup:.2}x)"
        );
    }
    if let Some(mixed) = ns_of("serve_mixed", "open_loop_4clients") {
        let rps = (CLIENTS * PER_CLIENT) as f64 / mixed * 1e9;
        section.derived("mixed_rps", rps);
        println!("[serve_perf] mixed open-loop throughput: {rps:.0} requests/s");
    }
    if let Some(single) = ns_of("serve_single", "warm") {
        println!(
            "[serve_perf] single-request latency (warm cache): {:.1} us",
            single / 1e3
        );
    }
    let hit_rate = server.service().cache().hit_rate();
    section.derived("final_cache_hit_rate", hit_rate);
    println!("[serve_perf] final cache hit rate over the whole run: {hit_rate:.3}");

    match baseline::update(&baseline::default_path(), section) {
        Ok(path) => println!("[serve_perf] baseline written to {}", path.display()),
        Err(e) => eprintln!("[serve_perf] could not write baseline: {e}"),
    }
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
