//! Simulator performance bench: event throughput of the discrete-event
//! engine under both pending-event schedulers (calendar queue vs binary
//! heap), the raw scheduler hold-model microbenchmark, and the work-stealing
//! replication path.
//!
//! Results are persisted as the `sim_perf` section of `BENCH_sim.json` at
//! the repository root (format documented in the README) so every run
//! extends the perf baseline that later PRs compare against.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lopc_bench::baseline::{self, Section};
use lopc_dist::{Distribution, ServiceTime};
use lopc_sim::{
    run_replications, run_with_scheduler, BinaryHeapQueue, CalendarQueue, DestChooser, EventQueue,
    Keyed, Scheduler, SimConfig, StopCondition, ThreadSpec,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Homogeneous all-to-all machine; `fanout` scales the number of in-flight
/// messages (and therefore pending events) per node.
fn sim_cfg(p: usize, fanout: u32) -> SimConfig {
    SimConfig {
        p,
        net_latency: 25.0,
        request_handler: ServiceTime::constant(200.0),
        reply_handler: ServiceTime::constant(200.0),
        threads: vec![
            ThreadSpec {
                work: Some(ServiceTime::constant(512.0)),
                dest: DestChooser::UniformOther,
                hops: 1,
                fanout,
            };
            p
        ],
        protocol_processor: false,
        latency_dist: None,
        stop: StopCondition::CyclesPerThread { n: 24 },
        seed: 42,
    }
}

/// One hold-model item; the scheduler microbench's event stand-in. The
/// payload pads the item to the size of the engine's internal event record
/// (~72 bytes) so scheduler data movement is modelled realistically — a
/// heap sift moves whole events, not just keys.
#[derive(Clone, Copy)]
struct HoldItem {
    t: f64,
    seq: u64,
    _payload: [u64; 7],
}
impl HoldItem {
    fn new(t: f64, seq: u64) -> Self {
        HoldItem {
            t,
            seq,
            _payload: [0; 7],
        }
    }
}
impl Keyed for HoldItem {
    fn time(&self) -> f64 {
        self.t
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Classic calendar-queue evaluation workload (Brown 1988): keep the queue
/// at a steady population `n`; each operation pops the earliest item and
/// re-schedules it an exponential hold time later.
fn hold_ops<Q: EventQueue<HoldItem>>(
    q: &mut Q,
    seq: &mut u64,
    rng: &mut SmallRng,
    hold: &ServiceTime,
    ops: usize,
) -> f64 {
    let mut last = 0.0;
    for _ in 0..ops {
        let it = q.pop().expect("steady-state queue never empties");
        last = it.t;
        *seq += 1;
        q.push(HoldItem::new(it.t + hold.sample(rng), *seq));
    }
    last
}

fn prefill<Q: EventQueue<HoldItem>>(q: &mut Q, n: usize, rng: &mut SmallRng, hold: &ServiceTime) {
    for seq in 0..n as u64 {
        q.push(HoldItem::new(hold.sample(rng), seq));
    }
}

fn bench(c: &mut Criterion) {
    // -- End-to-end engine throughput, both schedulers, growing P ----------
    // The same seed must produce bit-identical runs under either scheduler;
    // assert it here so the perf comparison is guaranteed apples-to-apples.
    let mut g = c.benchmark_group("sim_full");
    for &(p, fanout) in &[(32usize, 1u32), (256, 2), (1024, 4)] {
        let cfg = sim_cfg(p, fanout);
        let cal = run_with_scheduler(&cfg, Scheduler::Calendar).unwrap();
        let heap = run_with_scheduler(&cfg, Scheduler::BinaryHeap).unwrap();
        assert_eq!(cal.events, heap.events, "schedulers diverged at P={p}");
        assert_eq!(cal.aggregate.mean_r, heap.aggregate.mean_r);
        println!(
            "[sim_perf] P={p} fanout={fanout}: {} events/run, mean R = {:.1}",
            cal.events, cal.aggregate.mean_r
        );
        g.throughput(Throughput::Elements(cal.events));
        g.sample_size(10);
        g.bench_function(format!("calendar_p{p}"), |b| {
            b.iter(|| {
                black_box(
                    run_with_scheduler(&cfg, Scheduler::Calendar)
                        .unwrap()
                        .events,
                )
            })
        });
        g.bench_function(format!("heap_p{p}"), |b| {
            b.iter(|| {
                black_box(
                    run_with_scheduler(&cfg, Scheduler::BinaryHeap)
                        .unwrap()
                        .events,
                )
            })
        });
    }
    g.finish();

    // -- Raw scheduler throughput (hold model) -----------------------------
    // Steady-state population n models the pending-event set of a large-P
    // sweep; the heap pays O(log n) per op where the calendar queue stays
    // O(1) amortized.
    let mut g = c.benchmark_group("queue_hold");
    const HOLD_OPS: usize = 4096;
    let hold = ServiceTime::exponential(1000.0);
    for &n in &[1024usize, 16384, 131072, 1048576] {
        g.throughput(Throughput::Elements(HOLD_OPS as u64));
        g.sample_size(10);
        g.bench_function(format!("calendar_n{n}"), |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut q = CalendarQueue::new();
            prefill(&mut q, n, &mut rng, &hold);
            let mut seq = n as u64;
            b.iter(|| black_box(hold_ops(&mut q, &mut seq, &mut rng, &hold, HOLD_OPS)))
        });
        g.bench_function(format!("heap_n{n}"), |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut q = BinaryHeapQueue::new();
            prefill(&mut q, n, &mut rng, &hold);
            let mut seq = n as u64;
            b.iter(|| black_box(hold_ops(&mut q, &mut seq, &mut rng, &hold, HOLD_OPS)))
        });
    }
    g.finish();

    // -- Work-stealing replication path ------------------------------------
    let mut g = c.benchmark_group("replications");
    g.sample_size(10);
    let cfg = sim_cfg(32, 1);
    g.bench_function("worksteal_8x_p32", |b| {
        b.iter(|| black_box(run_replications(&cfg, 8).unwrap().reports.len()))
    });
    g.finish();

    // -- Persist the baseline ----------------------------------------------
    let records = criterion::take_results();
    let mut section = Section::new("sim_perf");
    let ns_of = |group: &str, id: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.ns_per_iter)
    };
    for r in &records {
        section.entry(
            format!("{}/{}", r.group, r.id),
            r.ns_per_iter,
            r.elements_per_iter,
        );
    }
    for &(p, label) in &[(32usize, "p32"), (256, "p256"), (1024, "p1024")] {
        if let (Some(heap), Some(cal)) = (
            ns_of("sim_full", &format!("heap_{label}")),
            ns_of("sim_full", &format!("calendar_{label}")),
        ) {
            let s = heap / cal;
            section.derived(format!("sim_speedup_calendar_vs_heap_{label}"), s);
            println!("[sim_perf] end-to-end calendar vs heap at P={p}: {s:.2}x");
        }
    }
    for &n in &[1024usize, 16384, 131072, 1048576] {
        if let (Some(heap), Some(cal)) = (
            ns_of("queue_hold", &format!("heap_n{n}")),
            ns_of("queue_hold", &format!("calendar_n{n}")),
        ) {
            let s = heap / cal;
            section.derived(format!("queue_speedup_calendar_vs_heap_n{n}"), s);
            println!("[sim_perf] scheduler event throughput (hold, n={n}): calendar {s:.2}x heap");
        }
    }
    match baseline::update(&baseline::default_path(), section) {
        Ok(path) => println!("[sim_perf] baseline written to {}", path.display()),
        Err(e) => eprintln!("[sim_perf] could not write baseline: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
