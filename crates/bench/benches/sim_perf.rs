//! Simulator performance bench: event throughput of the discrete-event
//! engine across machine sizes, plus the parallel-replication speedup path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lopc_bench::params::fig5_machine;
use lopc_core::Machine;
use lopc_sim::{run, run_replications};
use lopc_workloads::{AllToAllWorkload, Window};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Report raw event throughput once.
    let wl = AllToAllWorkload::new(fig5_machine(), 512.0).with_window(Window::quick());
    let report = run(&wl.sim_config(1)).unwrap();
    println!(
        "[sim_perf] one quick-window run: {} events, {} cycles",
        report.events, report.aggregate.total_cycles
    );

    let mut g = c.benchmark_group("sim_perf");
    for &p in &[8usize, 32, 128] {
        let machine = Machine::new(p, 25.0, 200.0).with_c2(0.0);
        let wl = AllToAllWorkload::new(machine, 512.0).with_window(Window::quick());
        let cfg = wl.sim_config(5);
        let events = run(&cfg).unwrap().events;
        g.throughput(Throughput::Elements(events));
        g.sample_size(10);
        g.bench_function(format!("all_to_all_p{p}"), |b| {
            b.iter(|| black_box(run(&cfg).unwrap().events))
        });
    }
    g.sample_size(10);
    g.bench_function("four_parallel_replications_p32", |b| {
        let cfg = wl.sim_config(5);
        b.iter(|| black_box(run_replications(&cfg, 4).unwrap().reports.len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
