//! Ablation benches for the design choices DESIGN.md §7 calls out:
//!
//! 1. the §5.2 residual-life (`C²`) correction on/off — how wrong is the
//!    exponential-only model on constant handlers;
//! 2. the BKT preempt-resume `Rw` versus the naive shadow-server
//!    `Rw = W/(1−Uq)` — accuracy against the simulator;
//! 3. damping factor for the general AMVA iteration — cost of convergence.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::params::fig5_machine;
use lopc_core::{AllToAll, GeneralModel, Machine};
use lopc_sim::run;
use lopc_solver::{solve_damped, FixedPointOptions};
use lopc_workloads::{AllToAllWorkload, Window};
use std::hint::black_box;

/// Shadow-server alternative to BKT: ignore the So·Qq backlog term.
fn shadow_server_r(machine: Machine, w: f64) -> f64 {
    // Solve R = W/(1-Uq) + 2St + Rq + Ry with the same Rq/Ry equations.
    let so = machine.s_o;
    let model = AllToAll::new(machine, w);
    let g = |r: f64| {
        let full = model.eval_f(r);
        if !full.is_finite() {
            return f64::INFINITY;
        }
        // eval_f computed rw = (w + so*rq/r)/(1-a); recompute the shadow
        // version by subtracting the backlog part.
        let a = so / r;
        let det = 1.0 - a - a * a;
        let beta = machine.beta();
        let rq = so * (1.0 + 2.0 * beta * a + a + beta * a * a) / det;
        let ry = so * (1.0 + beta * a + beta * a * a) / det;
        let rw = w / (1.0 - a);
        rw + 2.0 * machine.s_l + rq + ry - r
    };
    lopc_solver::bisect(
        g,
        model.contention_free() - 1.0,
        model.upper_bound() + so,
        1e-9,
        200,
    )
    .map(|root| root.x)
    .unwrap_or(f64::NAN)
}

fn ablation_report() {
    let machine = fig5_machine(); // C² = 0 constant handlers
    let w = 64.0;

    // 1. C² correction: pretend handlers are exponential.
    let with_corr = AllToAll::new(machine, w).solve().unwrap().r;
    let without = AllToAll::new(machine.with_c2(1.0), w).solve().unwrap().r;
    let wl = AllToAllWorkload::new(machine, w).with_window(Window::quick());
    let sim = run(&wl.sim_config(11)).unwrap().aggregate.mean_r;
    println!(
        "[ablation c2] constant handlers, W={w}: sim R={sim:.1}; \
         model with C2 correction {with_corr:.1} ({:+.1}%), without {without:.1} ({:+.1}%)",
        (with_corr - sim) / sim * 100.0,
        (without - sim) / sim * 100.0
    );

    // 2. BKT vs shadow server.
    let bkt = with_corr;
    let shadow = shadow_server_r(machine, w);
    println!(
        "[ablation rw] BKT {bkt:.1} ({:+.1}%) vs shadow-server {shadow:.1} ({:+.1}%) \
         against sim {sim:.1}",
        (bkt - sim) / sim * 100.0,
        (shadow - sim) / sim * 100.0
    );
}

fn bench(c: &mut Criterion) {
    ablation_report();

    // 3. damping cost: iterations to convergence of x = 10/x at different α.
    let mut g = c.benchmark_group("ablations");
    for &damping in &[0.3f64, 0.5, 0.8] {
        g.bench_function(format!("general_solve_damping_{damping}"), |b| {
            let machine = Machine::new(32, 25.0, 200.0).with_c2(0.0);
            b.iter(|| {
                // Re-solve the general model while forcing the damping by
                // reproducing its iteration on a toy contraction of similar
                // stiffness, plus the real model solve for wall-clock cost.
                let m = GeneralModel::homogeneous_all_to_all(black_box(machine), 64.0);
                let sol = m.solve().unwrap();
                let opts = FixedPointOptions {
                    damping,
                    tol: 1e-11,
                    max_iter: 100_000,
                };
                let toy = solve_damped(vec![1.0], |x, out| out[0] = 10.0 / x[0], &opts).unwrap();
                black_box((sol.iterations, toy.iterations))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
