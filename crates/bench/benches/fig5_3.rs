//! Figure 5-3 bench: regenerates the contention-components figure and times
//! the per-point decomposition.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::params::fig5_machine;
use lopc_bench::run_experiment;
use lopc_core::AllToAll;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("fig5_3", true).unwrap();
    println!("\n[fig5_3] {}", result.notes.join("\n[fig5_3] "));

    let mut g = c.benchmark_group("fig5_3");
    g.bench_function("decomposition_grid_11", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &w in &[
                2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
            ] {
                let sol = AllToAll::new(fig5_machine(), black_box(w)).solve().unwrap();
                acc += (sol.rw - w) + (sol.rq - 200.0) + (sol.ry - 200.0);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
