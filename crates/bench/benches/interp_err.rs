//! Offline calibration of the interpolation error model (`interp_err`
//! section of `BENCH_sim.json`).
//!
//! The serving layer's certificate is `max(centre_residual × SAFETY_FACTOR,
//! CERT_FLOOR)` (see `lopc_serve::interp`). This experiment is what makes
//! those two constants *calibrated* rather than guessed: it sweeps all four
//! closed-form model variants over dense off-grid parameter grids — W
//! sweeps at fixed machines, plus an off-grid `C²` so multi-dimensional
//! cells are exercised — and records, for every interpolated answer, the
//! true residual against the exact solve. Persisted headlines:
//!
//! * `worst_true_over_cert` — max(true residual / certificate); the
//!   certificate is sound iff this stays ≤ 1 (asserted here);
//! * `worst_true_over_center` — max inferred (true residual / centre
//!   residual) over cells whose certificate is above the floor;
//!   `SAFETY_FACTOR` must dominate this ratio;
//! * `worst_floored_resid` — worst true residual among floor-certified
//!   cells; `CERT_FLOOR` must dominate it;
//! * per-variant `<kind>/worst_resid`, `<kind>/mean_resid`,
//!   `<kind>/interp_share` (residual summaries via `lopc_stats`).
//!
//! The timing entries record the per-query cost of the interpolated sweep
//! path (cell builds amortised over the sweep).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lopc_bench::baseline::{self, Section};
use lopc_core::{Machine, Scenario};
use lopc_serve::cache::SolutionCache;
use lopc_serve::interp::{rel_resid, InterpCache, Served, CERT_FLOOR, SAFETY_FACTOR};
use lopc_stats::{minmax, Summary};
use std::hint::black_box;

/// Tolerance used for calibration queries: wide open, so every certifiable
/// cell actually serves and the sweep observes the whole certificate range.
const CAL_TOL: f64 = 1.0;

struct SweepStats {
    kind: &'static str,
    resids: Vec<f64>,
    true_over_cert: Vec<f64>,
    true_over_center: Vec<f64>,
    floored_resids: Vec<f64>,
    queries: usize,
    interpolated: usize,
}

/// Sweep one scenario family over a dense geometric W grid (deliberately
/// off the reference grid) and collect residual statistics.
fn sweep(kind: &'static str, make: impl Fn(f64) -> Scenario, points: usize) -> SweepStats {
    let cache = InterpCache::new(SolutionCache::new(8, 4096), 8, 1024);
    let mut stats = SweepStats {
        kind,
        resids: Vec::with_capacity(points),
        true_over_cert: Vec::new(),
        true_over_center: Vec::new(),
        floored_resids: Vec::new(),
        queries: 0,
        interpolated: 0,
    };
    // 50 .. ~12800 cycles, geometric, with an irrational-ish offset so the
    // points land inside cells rather than on corners.
    let ratio = (12_800.0f64 / 50.0).powf(1.0 / (points as f64 - 1.0));
    for i in 0..points {
        let w = 50.0 * 1.003 * ratio.powi(i as i32);
        let scenario = make(w);
        stats.queries += 1;
        let Ok((served, mode)) = cache.predict_traced(&scenario, CAL_TOL) else {
            continue;
        };
        let Served::Interpolated { certified_rel_err } = mode else {
            continue;
        };
        let exact = lopc_core::scenario::solve(&scenario).expect("exact solve");
        let resid = rel_resid(&served, &exact);
        stats.interpolated += 1;
        stats.resids.push(resid);
        stats.true_over_cert.push(resid / certified_rel_err);
        if certified_rel_err > CERT_FLOOR {
            // cert = centre_resid * SAFETY_FACTOR here, so the true/centre
            // ratio is recoverable exactly.
            stats
                .true_over_center
                .push(resid * SAFETY_FACTOR / certified_rel_err);
        } else {
            stats.floored_resids.push(resid);
        }
    }
    stats
}

fn bench(c: &mut Criterion) {
    let m32 = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let m16 = Machine::new(16, 50.0, 131.0).with_c2(1.0);
    // Off-grid C² (0.3 ∉ k/8) forces 2-D (W × C²) cells.
    let m_offgrid = Machine::new(32, 25.0, 200.0).with_c2(0.3);

    let points = 400;
    let sweeps: Vec<SweepStats> = vec![
        sweep(
            "all_to_all",
            |w| Scenario::AllToAll { machine: m32, w },
            points,
        ),
        sweep(
            "shared_memory",
            |w| Scenario::SharedMemory { machine: m16, w },
            points,
        ),
        sweep(
            "client_server_fixed",
            |w| Scenario::ClientServer {
                machine: m32,
                w,
                ps: Some(5),
            },
            points,
        ),
        sweep(
            "client_server_optimal",
            |w| Scenario::ClientServer {
                machine: m16,
                w,
                ps: None,
            },
            points,
        ),
        sweep(
            "fork_join",
            |w| Scenario::ForkJoin {
                machine: m32,
                w,
                k: 4,
            },
            points,
        ),
        sweep(
            "all_to_all_offgrid_c2",
            |w| Scenario::AllToAll {
                machine: m_offgrid,
                w,
            },
            points,
        ),
    ];

    let mut section = Section::new("interp_err");
    let mut worst_over_cert = 0.0f64;
    let mut worst_over_center = 0.0f64;
    let mut worst_floored = 0.0f64;
    for s in &sweeps {
        let summary = Summary::from_samples(&s.resids);
        let worst = minmax(&s.resids).map_or(0.0, |(_, hi)| hi);
        let share = s.interpolated as f64 / s.queries.max(1) as f64;
        section.derived(format!("{}/worst_resid", s.kind), worst);
        section.derived(format!("{}/mean_resid", s.kind), summary.mean);
        section.derived(format!("{}/interp_share", s.kind), share);
        worst_over_cert = worst_over_cert.max(minmax(&s.true_over_cert).map_or(0.0, |(_, hi)| hi));
        worst_over_center =
            worst_over_center.max(minmax(&s.true_over_center).map_or(0.0, |(_, hi)| hi));
        worst_floored = worst_floored.max(minmax(&s.floored_resids).map_or(0.0, |(_, hi)| hi));
        println!(
            "[interp_err] {:<24} {:>4}/{:<4} interpolated, worst resid {:.2e}, mean {:.2e}",
            s.kind, s.interpolated, s.queries, worst, summary.mean
        );
    }
    section.derived("safety_factor", SAFETY_FACTOR);
    section.derived("cert_floor", CERT_FLOOR);
    section.derived("worst_true_over_cert", worst_over_cert);
    section.derived("worst_true_over_center", worst_over_center);
    section.derived("worst_floored_resid", worst_floored);
    println!(
        "[interp_err] worst true/cert {worst_over_cert:.3} (sound iff <= 1), \
         worst true/centre {worst_over_center:.3} (SAFETY_FACTOR = {SAFETY_FACTOR}), \
         worst floored resid {worst_floored:.2e} (CERT_FLOOR = {CERT_FLOOR:.0e})"
    );
    // The calibration *is* a gate: an unsound certificate fails the bench.
    assert!(
        worst_over_cert <= 1.0,
        "certificate violated: true residual exceeded the certified bound by {worst_over_cert:.3}x"
    );
    assert!(
        worst_floored <= CERT_FLOOR,
        "floor violated: a floor-certified cell had residual {worst_floored:.2e}"
    );

    // Timing: per-query cost of the certified sweep path, cells warm.
    let mut g = c.benchmark_group("interp_sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(points as u64));
    g.bench_function("all_to_all_warm", |b| {
        let cache = InterpCache::new(SolutionCache::new(8, 4096), 8, 1024);
        let ratio = (12_800.0f64 / 50.0).powf(1.0 / (points as f64 - 1.0));
        let scenarios: Vec<Scenario> = (0..points)
            .map(|i| Scenario::AllToAll {
                machine: m32,
                w: 50.0 * 1.003 * ratio.powi(i as i32),
            })
            .collect();
        // Build the cells once; the measured loop is the steady state.
        for s in &scenarios {
            let _ = cache.predict(s, 1e-3);
        }
        b.iter(|| {
            let mut acc = 0.0;
            for s in &scenarios {
                acc += black_box(cache.predict(s, 1e-3).expect("predict").r);
            }
            black_box(acc)
        })
    });
    g.finish();

    for r in &criterion::take_results() {
        section.entry(
            format!("{}/{}", r.group, r.id),
            r.ns_per_iter,
            r.elements_per_iter,
        );
    }
    match baseline::update(&baseline::default_path(), section) {
        Ok(path) => println!("[interp_err] calibration written to {}", path.display()),
        Err(e) => eprintln!("[interp_err] could not write baseline: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
