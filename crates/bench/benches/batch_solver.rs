//! Batched SoA fixed-point kernel vs the scalar solver on the serving
//! layer's hottest shape: a 1000-point W sweep through one machine.
//!
//! An equivalence pre-flight gates the timing: every batched lane must be
//! bit-identical to the scalar path (the same invariant the
//! `batch_differential` suite pins) before its throughput means anything —
//! a fast wrong kernel would otherwise look like a win.
//!
//! Results are persisted as the `batch_solver` section of `BENCH_sim.json`
//! at the repository root: `ns/solve` for the scalar and batched sweeps,
//! the `batched_speedup` headline, and `sweep_solves_per_point` — how many
//! exact solves the interpolating cache spends per served sweep point when
//! the same sweep goes through `predict_batch` with a tolerance.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lopc_bench::baseline::{self, Section};
use lopc_bench::params::fig5_machine;
use lopc_core::scenario::{solve, solve_batch, Scenario};
use lopc_serve::cache::SolutionCache;
use lopc_serve::interp::InterpCache;
use std::hint::black_box;

const POINTS: usize = 1000;

/// The 1000-point W sweep: the §5 machine swept across three decades of
/// per-cycle work, the shape `/v1/predict/batch` sees from sweep clients.
fn sweep() -> Vec<Scenario> {
    let machine = fig5_machine();
    (0..POINTS)
        .map(|i| Scenario::AllToAll {
            machine,
            w: 50.0 + 4000.0 * i as f64 / (POINTS - 1) as f64,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let lanes = sweep();

    // Equivalence pre-flight: bit-identical lane for lane, or no numbers.
    let batched = solve_batch(&lanes);
    for (i, (s, b)) in lanes.iter().zip(&batched).enumerate() {
        let a = solve(s).expect("sweep scenario solves");
        let b = b.as_ref().expect("batched lane solves");
        assert!(
            b.r.to_bits() == a.r.to_bits()
                && b.x.to_bits() == a.x.to_bits()
                && b.iterations == a.iterations,
            "lane {i} (w={:.1}): batched diverged from scalar",
            match &lanes[i] {
                Scenario::AllToAll { w, .. } => *w,
                _ => unreachable!(),
            }
        );
    }
    println!("[batch_solver] equivalence pre-flight: {POINTS} lanes bit-identical to scalar");

    let mut g = c.benchmark_group("batch_solver");
    g.throughput(Throughput::Elements(POINTS as u64));
    g.bench_function("scalar_sweep_1000", |b| {
        b.iter(|| {
            lanes
                .iter()
                .map(|s| solve(black_box(s)).unwrap().r)
                .sum::<f64>()
        })
    });
    g.bench_function("batched_sweep_1000", |b| {
        b.iter(|| {
            solve_batch(black_box(&lanes))
                .iter()
                .map(|r| r.as_ref().unwrap().r)
                .sum::<f64>()
        })
    });
    g.finish();

    // The interpolating cache over the same sweep: exact solves spent per
    // served point (certificate tolerance 1e-3, fresh cache).
    let cache = InterpCache::new(SolutionCache::new(8, 4096), 8, 1024);
    let out = cache.predict_batch(&lanes, 1e-3);
    assert!(out.iter().all(|r| r.is_ok()));
    let solves_per_point = cache.cache().misses() as f64 / POINTS as f64;
    println!(
        "[batch_solver] interp sweep: {} solves / {POINTS} points ({solves_per_point:.3} per point)",
        cache.cache().misses()
    );

    let mut section = Section::new("batch_solver");
    let results = criterion::take_results();
    for r in &results {
        section.entry(
            format!("{}/{}", r.group, r.id),
            r.ns_per_iter,
            r.elements_per_iter,
        );
    }
    let ns = |id: &str| {
        results
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.ns_per_iter)
            .unwrap_or(f64::NAN)
    };
    let speedup = ns("scalar_sweep_1000") / ns("batched_sweep_1000");
    section.derived("batched_speedup", speedup);
    section.derived("sweep_solves_per_point", solves_per_point);
    println!("[batch_solver] batched sweep speedup {speedup:.2}x over scalar");
    match baseline::update(&baseline::default_path(), section) {
        Ok(path) => println!("[batch_solver] baseline written to {}", path.display()),
        Err(e) => eprintln!("[batch_solver] could not write baseline: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
