//! Figure 5-1 bench: regenerates the contention-vs-C² figure and times the
//! model sweep that produces it.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::experiments::fig5_1::contention_fraction;
use lopc_bench::run_experiment;
use lopc_core::Machine;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("fig5_1", true).unwrap();
    println!("\n[fig5_1] {}", result.notes.join("\n[fig5_1] "));

    let mut g = c.benchmark_group("fig5_1");
    g.bench_function("model_sweep_4x41", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &so in &[128.0, 256.0, 512.0, 1024.0] {
                for i in 0..=40 {
                    let c2 = i as f64 * 0.05;
                    let m = Machine::new(32, 25.0, so).with_c2(c2);
                    acc += contention_fraction(black_box(m), 1000.0);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
