//! Cluster-tier performance: warm serving throughput of a single node
//! versus a 3-node consistent-hash cluster routed through
//! [`lopc_serve::ClusterClient`].
//!
//! Measured (persisted as the `cluster` section of `BENCH_sim.json`):
//!
//! * `cluster_batch/single_node_warm` — one batch of the mixed pool
//!   against one warmed node over a plain [`Client`]: the no-routing
//!   baseline;
//! * `cluster_batch/three_node_warm` — the same batch through the routing
//!   client against a warmed 3-node ring: lanes partitioned by owner, one
//!   sub-batch per node, responses reassembled in order;
//! * `cluster_single/three_node_warm` — single requests round-robin over
//!   the pool through the router: per-request routing overhead;
//!
//! plus the derived headlines `single_node_batch_rps`,
//! `three_node_batch_rps`, and `three_node_over_single_ratio` (routed
//! throughput relative to the single-node baseline — fan-out parallelism
//! vs per-owner request overhead).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lopc_bench::baseline::{self, Section};
use lopc_core::{Machine, Scenario};
use lopc_serve::server::{start_on, ServerConfig, ServerHandle};
use lopc_serve::{Client, ClusterClient};
use std::hint::black_box;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};

/// The mixed pool every topology serves: closed-form variants only (all
/// cluster-routable), sweep-like parameter spreads.
fn pool() -> Vec<Scenario> {
    let m32 = Machine::new(32, 25.0, 200.0).with_c2(0.0);
    let m16 = Machine::new(16, 50.0, 131.0).with_c2(1.0);
    let mut scenarios = Vec::with_capacity(64);
    for i in 0..32 {
        scenarios.push(Scenario::AllToAll {
            machine: m32,
            w: 100.0 * (i + 1) as f64,
        });
    }
    for i in 0..16 {
        scenarios.push(Scenario::ClientServer {
            machine: m16,
            w: 500.0 + 50.0 * i as f64,
            ps: Some(1 + (i % 8)),
        });
    }
    for i in 0..16 {
        scenarios.push(Scenario::ForkJoin {
            machine: m32,
            w: 2000.0 + 10.0 * i as f64,
            k: 1 + (i % 4) as u32,
        });
    }
    scenarios
}

/// Bind `n` ephemeral listeners, then start each node knowing the others.
fn start_cluster(n: usize) -> Vec<ServerHandle> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.clone())
                .collect();
            start_on(
                listener,
                ServerConfig {
                    workers: 4,
                    peers,
                    advertise: Some(addrs[i].clone()),
                    ..ServerConfig::default()
                },
            )
            .expect("start node")
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let scenarios = pool();
    let n = scenarios.len() as u64;

    // Single node, warmed: the no-routing baseline.
    let single = start_cluster(1).remove(0);
    {
        let mut client = Client::connect(single.addr()).expect("connect");
        let served = client.predict_batch(&scenarios).expect("warm-up");
        assert_eq!(served.len(), scenarios.len());
    }

    // Three nodes, warmed through the router (so each node's cache holds
    // exactly the keys the ring assigns it).
    let cluster = start_cluster(3);
    {
        let router = ClusterClient::connect(cluster[0].addr()).expect("router");
        let served = router.predict_batch(&scenarios).expect("warm-up");
        assert_eq!(served.len(), scenarios.len());
        // Routed warm answers must equal the single node's, bit for bit.
        let mut client = Client::connect(single.addr()).expect("connect");
        let reference = client.predict_batch(&scenarios).expect("reference");
        for (a, b) in served.iter().zip(&reference) {
            assert!(
                lopc_serve::predictions_identical(a, b),
                "cluster and single node disagree"
            );
        }
    }

    // Sub-millisecond iterations on a shared box: the ratio below divides
    // two separately-timed benches, so each needs enough samples for its
    // best-of-N to reach the load-free floor — otherwise scheduler noise
    // lands asymmetrically and the ratio jumps run to run.
    let mut g = c.benchmark_group("cluster_batch");
    g.sample_size(40);
    g.throughput(Throughput::Elements(n));
    g.bench_function("single_node_warm", |b| {
        let mut client = Client::connect(single.addr()).expect("connect");
        b.iter(|| black_box(client.predict_batch(&scenarios).expect("batch").len()))
    });
    g.bench_function("three_node_warm", |b| {
        let router = ClusterClient::connect(cluster[0].addr()).expect("router");
        b.iter(|| black_box(router.predict_batch(&scenarios).expect("batch").len()))
    });
    g.finish();

    let mut g = c.benchmark_group("cluster_single");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));
    let cursor = AtomicU64::new(0);
    g.bench_function("three_node_warm", |b| {
        let router = ClusterClient::connect(cluster[0].addr()).expect("router");
        b.iter(|| {
            let i = cursor.fetch_add(1, Ordering::Relaxed) as usize % scenarios.len();
            black_box(router.predict(&scenarios[i]).expect("predict").r)
        })
    });
    g.finish();

    // -- Persist the baseline ----------------------------------------------
    let records = criterion::take_results();
    let mut section = Section::new("cluster");
    for r in &records {
        section.entry(
            format!("{}/{}", r.group, r.id),
            r.ns_per_iter,
            r.elements_per_iter,
        );
    }
    let ns_of = |group: &str, id: &str| {
        records
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.ns_per_iter)
    };
    if let (Some(one), Some(three)) = (
        ns_of("cluster_batch", "single_node_warm"),
        ns_of("cluster_batch", "three_node_warm"),
    ) {
        let single_rps = n as f64 / one * 1e9;
        let three_rps = n as f64 / three * 1e9;
        section.derived("single_node_batch_rps", single_rps);
        section.derived("three_node_batch_rps", three_rps);
        section.derived("three_node_over_single_ratio", three_rps / single_rps);
        println!(
            "[cluster] warm batch throughput: single node {single_rps:.0}/s, \
             3-node routed {three_rps:.0}/s ({:.2}x)",
            three_rps / single_rps
        );
        // Machine-readable line for the CI regression gate (a plain awk
        // threshold): the concurrent pipelined wave keeps this near 0.9 on
        // a one-core runner; the old sequential fan-out sat at 0.75.
        println!(
            "[cluster] three_node_over_single_ratio {:.4}",
            three_rps / single_rps
        );
    }
    if let Some(single_req) = ns_of("cluster_single", "three_node_warm") {
        section.derived("three_node_single_request_us", single_req / 1e3);
        println!(
            "[cluster] routed single-request latency (warm): {:.1} us",
            single_req / 1e3
        );
    }

    match baseline::update(&baseline::default_path(), section) {
        Ok(path) => println!("[cluster] baseline written to {}", path.display()),
        Err(e) => eprintln!("[cluster] could not write baseline: {e}"),
    }
    for handle in cluster {
        handle.shutdown();
    }
    single.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
