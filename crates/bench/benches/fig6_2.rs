//! Figure 6-2 bench: regenerates the work-pile throughput figure and times
//! the model sweep plus one simulator run at the optimum.

use criterion::{criterion_group, criterion_main, Criterion};
use lopc_bench::params::{fig6_machine, W_FIG6};
use lopc_bench::run_experiment;
use lopc_core::ClientServer;
use lopc_sim::run;
use lopc_workloads::{Window, Workpile};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let result = run_experiment("fig6_2", true).unwrap();
    println!("\n[fig6_2] {}", result.notes.join("\n[fig6_2] "));

    let model = ClientServer::new(fig6_machine(), W_FIG6);
    let opt = model.optimal_servers().unwrap();

    let mut g = c.benchmark_group("fig6_2");
    g.bench_function("model_sweep_31_splits", |b| {
        b.iter(|| {
            let pts = model.sweep().unwrap();
            black_box(pts.len())
        })
    });
    g.bench_function("closed_form_optimum", |b| {
        b.iter(|| black_box(model.optimal_servers().unwrap()))
    });
    g.sample_size(10);
    g.bench_function("sim_run_at_optimum", |b| {
        let wl = Workpile::new(fig6_machine(), W_FIG6, opt).with_window(Window::quick());
        let cfg = wl.sim_config(9);
        b.iter(|| black_box(run(&cfg).unwrap().aggregate.throughput))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
