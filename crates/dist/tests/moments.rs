//! Property tests for the `(mean, C²)` two-moment fit: round-trip from the
//! requested moments through [`from_mean_cv2`] back out of both the closed
//! forms and the sample stream.

use lopc_dist::{from_mean_cv2, Distribution, ServiceTime};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Sample mean and sample C² over `n` draws.
fn sample_moments(d: &ServiceTime, n: usize, seed: u64) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let (mut sum, mut sum2) = (0.0, 0.0);
    for _ in 0..n {
        let x = d.sample(&mut rng);
        sum += x;
        sum2 += x * x;
    }
    let mean = sum / n as f64;
    let var = (sum2 / n as f64 - mean * mean).max(0.0);
    (
        mean,
        if mean == 0.0 {
            0.0
        } else {
            var / (mean * mean)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Closed-form round trip: the fitted distribution reports exactly the
    /// requested `(mean, C²)` for any representative pair.
    #[test]
    fn closed_form_moments_round_trip(
        mean in 0.1..5000.0f64,
        cv2 in 0.0..6.0f64,
    ) {
        let d = from_mean_cv2(mean, cv2);
        prop_assert!(
            (d.mean() - mean).abs() <= 1e-9 * mean.max(1.0),
            "mean {} != requested {mean} (cv2 {cv2})", d.mean()
        );
        prop_assert!(
            (d.cv2() - cv2).abs() <= 1e-9,
            "cv2 {} != requested {cv2} (mean {mean})", d.cv2()
        );
        // Samples are always non-negative and finite.
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            let x = d.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0, "bad sample {x}");
        }
    }
}

proptest! {
    // Sample-convergence cases draw hundreds of thousands of variates each:
    // fewer cases, deterministic seeds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sampling round trip: the sample moments converge to the requested
    /// `(mean, C²)` within statistical tolerance.
    #[test]
    fn sample_moments_round_trip(
        mean in 1.0..1000.0f64,
        cv2 in 0.0..4.0f64,
        seed in 0u64..1000,
    ) {
        let d = from_mean_cv2(mean, cv2);
        let n = 300_000;
        let (m, c2) = sample_moments(&d, n, seed);
        // Standard error of the mean scales with sqrt(cv2/n); 6 sigma plus
        // a small absolute floor keeps this deterministic-failure-free.
        let mean_tol = 6.0 * mean * (cv2 / n as f64).sqrt() + 1e-9 * mean;
        prop_assert!(
            (m - mean).abs() <= mean_tol,
            "sample mean {m} vs {mean} (cv2 {cv2}, tol {mean_tol})"
        );
        // C² of the sample stream: loose multiplicative band (heavy-tailed
        // H2 fourth moments make tight bands flaky).
        let c2_tol = 0.15 * cv2.max(0.05) + 0.02;
        prop_assert!(
            (c2 - cv2).abs() <= c2_tol,
            "sample cv2 {c2} vs {cv2} (mean {mean}, tol {c2_tol})"
        );
    }
}

#[test]
fn exact_moments_constant() {
    let d = ServiceTime::constant(131.0);
    assert_eq!(d.mean(), 131.0);
    assert_eq!(d.cv2(), 0.0);
    assert_eq!(d.variance(), 0.0);
    // Every draw is the mean, exactly.
    let (m, c2) = sample_moments(&d, 1000, 3);
    assert_eq!(m, 131.0);
    assert_eq!(c2, 0.0);
}

#[test]
fn exact_moments_exponential() {
    let d = ServiceTime::exponential(200.0);
    assert_eq!(d.mean(), 200.0);
    assert_eq!(d.cv2(), 1.0);
    assert!((d.variance() - 200.0 * 200.0).abs() < 1e-9);
    let (m, c2) = sample_moments(&d, 500_000, 17);
    assert!((m - 200.0).abs() / 200.0 < 0.01, "sample mean {m}");
    assert!((c2 - 1.0).abs() < 0.03, "sample cv2 {c2}");
}

#[test]
fn paper_configurations_fit_exactly() {
    // The (mean, C²) pairs the reproduction actually uses: Figure 5-2
    // handlers (200, 0), Figure 6-2 handlers (131, 0), exponential defaults,
    // and the Figure 5-1 C² sweep.
    for &(mean, cv2) in &[(200.0, 0.0), (131.0, 0.0), (200.0, 1.0), (512.0, 2.0)] {
        let d = from_mean_cv2(mean, cv2);
        assert!((d.mean() - mean).abs() < 1e-9);
        assert!((d.cv2() - cv2).abs() < 1e-9);
    }
    for i in 0..=40 {
        let cv2 = i as f64 * 0.05;
        let d = from_mean_cv2(1024.0, cv2);
        assert!((d.cv2() - cv2).abs() < 1e-9, "sweep point {cv2}");
    }
}
