//! Service-time distributions parameterised by `(mean, C²)`.
//!
//! The LoPC model characterises every service (handler dispatch, compute
//! phases, wire times) by just two moments: the mean and the squared
//! coefficient of variation `C² = Var/mean²`. §5.2 of the thesis folds `C²`
//! into the response-time equations through the residual-life correction
//! `β = (C² − 1)/2`; the simulator needs actual samples. This crate provides
//! both sides of that contract: distributions whose *analytic* `(mean, C²)`
//! are exact (the model reads them) and whose samples converge to the same
//! moments (the simulator draws them).
//!
//! [`from_mean_cv2`] maps any requested `(mean, C²)` onto a standard
//! queueing-theory family:
//!
//! | `C²` | family |
//! |------|--------|
//! | `0` | deterministic ([`ServiceTime::Constant`]) |
//! | `(0, 1)` | mixed Erlang `E_{k−1,k}` (Tijms' two-moment fit) |
//! | `1` | exponential |
//! | `(1, ∞)` | two-phase hyperexponential `H₂` with balanced means |
//!
//! Each branch matches the requested moments *exactly*, not approximately —
//! the property tests in `tests/moments.rs` verify both the closed-form
//! moments and the sample-moment convergence.
//!
//! # Example
//!
//! ```
//! use lopc_dist::{from_mean_cv2, Distribution, ServiceTime};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let d = from_mean_cv2(200.0, 0.5);
//! assert!((d.mean() - 200.0).abs() < 1e-9);
//! assert!((d.cv2() - 0.5).abs() < 1e-9);
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let x = d.sample(&mut rng);
//! assert!(x >= 0.0);
//!
//! // C² = 0 is deterministic, C² = 1 is exponential.
//! assert_eq!(from_mean_cv2(10.0, 0.0), ServiceTime::constant(10.0));
//! assert_eq!(from_mean_cv2(10.0, 1.0), ServiceTime::exponential(10.0));
//! ```

use rand::Rng;

/// A non-negative service-time distribution characterised by `(mean, C²)`.
///
/// `mean` and `cv2` must be *exact* closed forms (the analytical model reads
/// them directly); `sample` must converge to the same moments.
pub trait Distribution {
    /// Exact mean.
    fn mean(&self) -> f64;

    /// Exact squared coefficient of variation `Var/mean²` (0 when the mean
    /// is 0).
    fn cv2(&self) -> f64;

    /// Draw one sample (always `>= 0`).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Exact variance, derived from the two moments.
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.cv2() * m * m
    }

    /// Greatest lower bound of the support: no sample is ever below this
    /// value. The parallel simulator reads it as the conservative lookahead
    /// contract for inter-LP message delays, so it must never overestimate.
    /// The default (0, valid for every non-negative distribution) is exact
    /// for the exponential-tailed families and only loose where a family
    /// genuinely has unbounded-below-by-zero support.
    fn min_value(&self) -> f64 {
        0.0
    }
}

/// Uniform distribution on `[lo, hi]` (used for bounded work jitter, e.g.
/// the matvec desynchronisation study).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformRange {
    /// Inclusive lower endpoint (`>= 0`).
    pub lo: f64,
    /// Inclusive upper endpoint (`>= lo`).
    pub hi: f64,
}

impl UniformRange {
    /// Uniform on `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "UniformRange requires 0 <= lo <= hi, got [{lo}, {hi}]"
        );
        UniformRange { lo, hi }
    }

    /// Uniform on `[mean − half_width, mean + half_width]`.
    pub fn centered(mean: f64, half_width: f64) -> Self {
        assert!(
            half_width >= 0.0 && half_width <= mean,
            "half_width must be in [0, mean] to keep the support non-negative"
        );
        UniformRange::new(mean - half_width, mean + half_width)
    }

    /// Width of the support.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl Distribution for UniformRange {
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn cv2(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            return 0.0;
        }
        let w = self.width();
        (w * w / 12.0) / (m * m)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + rng.random::<f64>() * self.width()
    }

    fn min_value(&self) -> f64 {
        self.lo
    }
}

/// A service-time distribution selected by `(mean, C²)`.
///
/// Constructed through [`ServiceTime::constant`], [`ServiceTime::exponential`],
/// [`ServiceTime::uniform`], or the general two-moment fit
/// [`ServiceTime::with_cv2`] / [`from_mean_cv2`].
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceTime {
    /// Deterministic: every sample is exactly the mean (`C² = 0`).
    Constant(f64),
    /// Exponential with the given mean (`C² = 1`).
    Exponential {
        /// Mean service time.
        mean: f64,
    },
    /// Uniform on a bounded interval.
    Uniform(UniformRange),
    /// Mixed Erlang `E_{k−1,k}`: with probability `p` an Erlang with `k−1`
    /// exponential phases of rate `rate`, else `k` phases. Covers
    /// `C² ∈ (0, 1)` exactly (Tijms' two-moment fit).
    ErlangMix {
        /// Larger phase count (`>= 2`); the mixture uses `k−1` and `k`.
        k: u32,
        /// Probability of the `k−1`-phase branch (`∈ [0, 1]`).
        p: f64,
        /// Phase rate shared by both branches.
        rate: f64,
    },
    /// Two-phase hyperexponential with balanced means: phase 1 with
    /// probability `p1` and rate `rate1`, else phase 2 with `rate2`. Covers
    /// `C² > 1` exactly.
    Hyper2 {
        /// Probability of phase 1.
        p1: f64,
        /// Rate of phase 1.
        rate1: f64,
        /// Rate of phase 2.
        rate2: f64,
    },
}

impl ServiceTime {
    /// Deterministic service of exactly `mean` cycles (`C² = 0`).
    pub fn constant(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be >= 0");
        ServiceTime::Constant(mean)
    }

    /// Exponential service with the given mean (`C² = 1`).
    pub fn exponential(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 0.0, "mean must be >= 0");
        if mean == 0.0 {
            return ServiceTime::Constant(0.0);
        }
        ServiceTime::Exponential { mean }
    }

    /// Uniform service on `[lo, hi]` (`C² = (hi−lo)²/12 / mean²`).
    pub fn uniform(lo: f64, hi: f64) -> Self {
        ServiceTime::Uniform(UniformRange::new(lo, hi))
    }

    /// The general two-moment fit: a distribution with *exactly* the given
    /// mean and squared coefficient of variation. See [`from_mean_cv2`].
    pub fn with_cv2(mean: f64, cv2: f64) -> Self {
        from_mean_cv2(mean, cv2)
    }

    /// Alias of [`ServiceTime::with_cv2`] taking the (unsquared) coefficient
    /// of variation `cv = σ/mean`.
    pub fn with_cv(mean: f64, cv: f64) -> Self {
        assert!(cv.is_finite() && cv >= 0.0, "cv must be >= 0");
        from_mean_cv2(mean, cv * cv)
    }
}

/// Draw from an exponential with the given **rate** via inversion.
/// `1 − u ∈ (0, 1]` so the logarithm is finite and the sample non-negative.
#[inline]
fn exp_sample<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    -(1.0 - rng.random::<f64>()).ln() / rate
}

/// Phase count above which Erlang sampling switches from summing
/// exponentials (`O(n)` draws) to the `O(1)`-expected gamma sampler. Low
/// `C²` means `k = ceil(1/C²)` phases, so e.g. `C² = 0.001` would otherwise
/// cost 1000 draws per service time in the simulator's hot loop.
const ERLANG_DIRECT_SUM_MAX: u32 = 16;

/// Standard normal variate (Marsaglia polar method; exact).
fn normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.random::<f64>() - 1.0;
        let v = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Gamma variate with integer shape `alpha >= 1` and unit scale via the
/// Marsaglia–Tsang squeeze (exact rejection sampler, `O(1)` expected).
fn gamma_sample<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    debug_assert!(alpha >= 1.0);
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal_sample(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u = rng.random::<f64>();
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draw from an Erlang with `n` phases of the given rate.
#[inline]
fn erlang_sample<R: Rng + ?Sized>(rng: &mut R, n: u32, rate: f64) -> f64 {
    if n <= ERLANG_DIRECT_SUM_MAX {
        // Sum of n exponentials == -(sum of ln uniforms)/rate; the sum of
        // logs avoids underflow of the product.
        let mut acc = 0.0;
        for _ in 0..n {
            acc += (1.0 - rng.random::<f64>()).ln();
        }
        -acc / rate
    } else {
        // Erlang(n) == Gamma(shape n); exact and O(1) regardless of n.
        gamma_sample(rng, n as f64) / rate
    }
}

impl Distribution for ServiceTime {
    fn mean(&self) -> f64 {
        match *self {
            ServiceTime::Constant(m) => m,
            ServiceTime::Exponential { mean } => mean,
            ServiceTime::Uniform(u) => u.mean(),
            ServiceTime::ErlangMix { k, p, rate } => (k as f64 - p) / rate,
            ServiceTime::Hyper2 { p1, rate1, rate2 } => p1 / rate1 + (1.0 - p1) / rate2,
        }
    }

    fn cv2(&self) -> f64 {
        match *self {
            ServiceTime::Constant(_) => 0.0,
            ServiceTime::Exponential { .. } => 1.0,
            ServiceTime::Uniform(u) => u.cv2(),
            ServiceTime::ErlangMix { k, p, rate: _ } => {
                // E[X] = (k − p)/μ; E[X²] = [p(k−1)k + (1−p)k(k+1)]/μ².
                let k = k as f64;
                let m1 = k - p;
                let m2 = p * (k - 1.0) * k + (1.0 - p) * k * (k + 1.0);
                m2 / (m1 * m1) - 1.0
            }
            ServiceTime::Hyper2 { p1, rate1, rate2 } => {
                let p2 = 1.0 - p1;
                let m1 = p1 / rate1 + p2 / rate2;
                let m2 = 2.0 * (p1 / (rate1 * rate1) + p2 / (rate2 * rate2));
                m2 / (m1 * m1) - 1.0
            }
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ServiceTime::Constant(m) => m,
            ServiceTime::Exponential { mean } => exp_sample(rng, 1.0 / mean),
            ServiceTime::Uniform(u) => u.sample(rng),
            ServiceTime::ErlangMix { k, p, rate } => {
                let phases = if rng.random::<f64>() < p { k - 1 } else { k };
                erlang_sample(rng, phases, rate)
            }
            ServiceTime::Hyper2 { p1, rate1, rate2 } => {
                let rate = if rng.random::<f64>() < p1 {
                    rate1
                } else {
                    rate2
                };
                exp_sample(rng, rate)
            }
        }
    }

    fn min_value(&self) -> f64 {
        match *self {
            ServiceTime::Constant(m) => m,
            ServiceTime::Uniform(u) => u.min_value(),
            // Exponential-tailed families can sample arbitrarily close to 0.
            ServiceTime::Exponential { .. }
            | ServiceTime::ErlangMix { .. }
            | ServiceTime::Hyper2 { .. } => 0.0,
        }
    }
}

/// Build a [`ServiceTime`] with *exactly* the requested mean and squared
/// coefficient of variation (the §5.2 two-moment characterisation):
///
/// * `cv2 == 0` → deterministic;
/// * `0 < cv2 < 1` → mixed Erlang `E_{k−1,k}` with `k = ceil(1/cv2)` and
///   the Tijms mixing probability
///   `p = [1 + cv2]⁻¹ · [k·cv2 − √(k(1 + cv2) − k²·cv2)]`;
/// * `cv2 == 1` → exponential;
/// * `cv2 > 1` → balanced-means hyperexponential `H₂` with
///   `p₁ = ½(1 + √((cv2−1)/(cv2+1)))`, `rateᵢ = 2pᵢ/mean`.
///
/// A zero mean is deterministic 0 regardless of `cv2`.
pub fn from_mean_cv2(mean: f64, cv2: f64) -> ServiceTime {
    assert!(mean.is_finite() && mean >= 0.0, "mean must be >= 0");
    assert!(cv2.is_finite() && cv2 >= 0.0, "cv2 must be >= 0");
    if mean == 0.0 || cv2 == 0.0 {
        return ServiceTime::Constant(mean);
    }
    if (cv2 - 1.0).abs() < 1e-12 {
        return ServiceTime::Exponential { mean };
    }
    if cv2 < 1.0 {
        // Tijms' E_{k−1,k} fit: choose k with 1/k <= cv2 <= 1/(k−1).
        let k = (1.0 / cv2).ceil() as u32;
        let kf = k as f64;
        let p = (kf * cv2 - (kf * (1.0 + cv2) - kf * kf * cv2).sqrt()) / (1.0 + cv2);
        // Guard tiny negative round-off at cv2 == 1/k exactly.
        let p = p.clamp(0.0, 1.0);
        let rate = (kf - p) / mean;
        ServiceTime::ErlangMix { k, p, rate }
    } else {
        let s = ((cv2 - 1.0) / (cv2 + 1.0)).sqrt();
        let p1 = 0.5 * (1.0 + s);
        ServiceTime::Hyper2 {
            p1,
            rate1: 2.0 * p1 / mean,
            rate2: 2.0 * (1.0 - p1) / mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_moments(d: &ServiceTime, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite(), "bad sample {x}");
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        (mean, var / (mean * mean))
    }

    #[test]
    fn constant_moments_exact() {
        let d = ServiceTime::constant(42.0);
        assert_eq!(d.mean(), 42.0);
        assert_eq!(d.cv2(), 0.0);
        assert_eq!(d.variance(), 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42.0);
        }
    }

    #[test]
    fn exponential_moments_exact() {
        let d = ServiceTime::exponential(200.0);
        assert_eq!(d.mean(), 200.0);
        assert_eq!(d.cv2(), 1.0);
        assert!((d.variance() - 40_000.0).abs() < 1e-9);
        let (m, c2) = sample_moments(&d, 400_000, 5);
        assert!((m - 200.0).abs() / 200.0 < 0.01, "sample mean {m}");
        assert!((c2 - 1.0).abs() < 0.03, "sample cv2 {c2}");
    }

    #[test]
    fn uniform_moments_exact() {
        let d = ServiceTime::uniform(0.0, 50.0);
        assert_eq!(d.mean(), 25.0);
        // (50²/12)/25² = 1/3.
        assert!((d.cv2() - 1.0 / 3.0).abs() < 1e-12);
        let (m, c2) = sample_moments(&d, 200_000, 6);
        assert!((m - 25.0).abs() < 0.2);
        assert!((c2 - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn centered_uniform() {
        let u = UniformRange::centered(100.0, 10.0);
        assert_eq!(u.lo, 90.0);
        assert_eq!(u.hi, 110.0);
        assert_eq!(u.mean(), 100.0);
    }

    #[test]
    fn from_mean_cv2_families() {
        assert!(matches!(from_mean_cv2(10.0, 0.0), ServiceTime::Constant(_)));
        assert!(matches!(
            from_mean_cv2(10.0, 0.5),
            ServiceTime::ErlangMix { .. }
        ));
        assert!(matches!(
            from_mean_cv2(10.0, 1.0),
            ServiceTime::Exponential { .. }
        ));
        assert!(matches!(
            from_mean_cv2(10.0, 2.5),
            ServiceTime::Hyper2 { .. }
        ));
        // Zero mean is deterministic whatever the cv2.
        assert_eq!(from_mean_cv2(0.0, 3.0), ServiceTime::Constant(0.0));
    }

    #[test]
    fn two_moment_fit_is_exact_in_closed_form() {
        for &mean in &[0.5, 25.0, 131.0, 1000.0] {
            for &cv2 in &[0.05, 0.25, 0.5, 1.0 / 3.0, 0.75, 0.99, 1.5, 2.0, 4.0, 8.0] {
                let d = from_mean_cv2(mean, cv2);
                assert!(
                    (d.mean() - mean).abs() < 1e-9 * mean,
                    "mean {} != {mean} at cv2={cv2}",
                    d.mean()
                );
                assert!(
                    (d.cv2() - cv2).abs() < 1e-9,
                    "cv2 {} != {cv2} at mean={mean}",
                    d.cv2()
                );
            }
        }
    }

    #[test]
    fn erlang_boundary_is_pure_erlang() {
        // cv2 = 1/k exactly → mixing probability 0 → pure Erlang(k).
        let d = from_mean_cv2(100.0, 0.5);
        if let ServiceTime::ErlangMix { k, p, .. } = d {
            assert_eq!(k, 2);
            assert!(p.abs() < 1e-9, "p = {p}");
        } else {
            panic!("expected ErlangMix, got {d:?}");
        }
    }

    #[test]
    fn min_value_is_exact_per_family() {
        assert_eq!(ServiceTime::constant(42.0).min_value(), 42.0);
        assert_eq!(ServiceTime::exponential(200.0).min_value(), 0.0);
        assert_eq!(ServiceTime::uniform(15.0, 35.0).min_value(), 15.0);
        assert_eq!(from_mean_cv2(100.0, 0.5).min_value(), 0.0);
        assert_eq!(from_mean_cv2(100.0, 2.5).min_value(), 0.0);
        assert_eq!(UniformRange::centered(100.0, 10.0).min_value(), 90.0);
    }

    #[test]
    fn samples_never_undershoot_min_value() {
        let dists = [
            ServiceTime::constant(7.0),
            ServiceTime::exponential(10.0),
            ServiceTime::uniform(3.0, 9.0),
            from_mean_cv2(20.0, 0.4),
            from_mean_cv2(20.0, 3.0),
        ];
        let mut rng = SmallRng::seed_from_u64(77);
        for d in &dists {
            let lo = d.min_value();
            for _ in 0..5_000 {
                let x = d.sample(&mut rng);
                assert!(x >= lo, "{d:?} sampled {x} below min_value {lo}");
            }
        }
    }

    #[test]
    fn with_cv_squares() {
        // cv = 0.5 → cv² = 0.25.
        let d = ServiceTime::with_cv(80.0, 0.5);
        assert!((d.cv2() - 0.25).abs() < 1e-9);
        assert!((d.mean() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn samples_converge_for_very_low_variability_gamma_path() {
        // cv2 = 0.004 -> k = 250 phases, well past ERLANG_DIRECT_SUM_MAX:
        // exercises the O(1) Marsaglia-Tsang gamma sampler, which must match
        // the same moments the direct sum would produce.
        let d = from_mean_cv2(100.0, 0.004);
        if let ServiceTime::ErlangMix { k, .. } = d {
            assert!(k > ERLANG_DIRECT_SUM_MAX, "k = {k} should take gamma path");
        } else {
            panic!("expected ErlangMix, got {d:?}");
        }
        let (m, c2) = sample_moments(&d, 300_000, 29);
        assert!((m - 100.0).abs() / 100.0 < 0.005, "mean {m}");
        assert!((c2 - 0.004).abs() < 0.001, "cv2 {c2}");
    }

    #[test]
    fn gamma_and_direct_sum_paths_agree_at_boundary() {
        // Same Erlang shape sampled both ways must give the same moments
        // (different streams, same distribution).
        let rate = 0.2;
        let n_lo = ERLANG_DIRECT_SUM_MAX; // direct sum
        let mut rng = SmallRng::seed_from_u64(31);
        let draws = 200_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..draws {
            let a = erlang_sample(&mut rng, n_lo, rate);
            let b = gamma_sample(&mut rng, n_lo as f64) / rate;
            s1 += a;
            s2 += b;
        }
        let (m1, m2) = (s1 / draws as f64, s2 / draws as f64);
        let expected = n_lo as f64 / rate;
        assert!((m1 - expected).abs() / expected < 0.01, "direct {m1}");
        assert!((m2 - expected).abs() / expected < 0.01, "gamma {m2}");
    }

    #[test]
    fn samples_converge_for_low_variability() {
        let d = from_mean_cv2(100.0, 0.3);
        let (m, c2) = sample_moments(&d, 400_000, 11);
        assert!((m - 100.0).abs() / 100.0 < 0.01, "mean {m}");
        assert!((c2 - 0.3).abs() < 0.02, "cv2 {c2}");
    }

    #[test]
    fn samples_converge_for_high_variability() {
        let d = from_mean_cv2(100.0, 4.0);
        let (m, c2) = sample_moments(&d, 2_000_000, 13);
        assert!((m - 100.0).abs() / 100.0 < 0.02, "mean {m}");
        assert!((c2 - 4.0).abs() < 0.25, "cv2 {c2}");
    }

    #[test]
    fn determinism_by_seed() {
        let d = from_mean_cv2(50.0, 2.0);
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "mean must be >= 0")]
    fn negative_mean_rejected() {
        ServiceTime::constant(-1.0);
    }

    #[test]
    #[should_panic(expected = "cv2 must be >= 0")]
    fn negative_cv2_rejected() {
        from_mean_cv2(1.0, -0.5);
    }

    #[test]
    #[should_panic(expected = "0 <= lo <= hi")]
    fn inverted_uniform_rejected() {
        ServiceTime::uniform(5.0, 1.0);
    }
}
