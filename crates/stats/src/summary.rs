//! Sample summaries with Student-t interval estimates.

use crate::tquantile::{t_quantile, Confidence};

/// Smallest and largest non-NaN observation in a sample, or `None` when
/// every value is NaN (or the sample is empty). NaNs are skipped rather
/// than poisoning the extrema — residual sweeps legitimately produce
/// undefined entries (components a model variant does not define).
/// Infinities are *kept*: an unbounded observation (e.g. an untrusted
/// certificate) is a legitimate, reportable extremum, not missing data.
pub fn minmax(xs: &[f64]) -> Option<(f64, f64)> {
    let mut it = xs.iter().copied().filter(|x| !x.is_nan());
    let first = it.next()?;
    Some(it.fold((first, first), |(lo, hi), x| (lo.min(x), hi.max(x))))
}

/// Mean and dispersion of a sample of independent replications, with
/// t-based confidence intervals.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (`n − 1` denominator; 0 when `n < 2`).
    pub var: f64,
}

impl Summary {
    /// Summarise a sample. An empty sample yields `n = 0, mean = 0`.
    pub fn from_samples(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                var: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        };
        Summary { n, mean, var }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.var.sqrt()
    }

    /// Standard error of the mean (0 when `n < 2`).
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.var / self.n as f64).sqrt()
        }
    }

    /// Student-t confidence half-width at the given level.
    ///
    /// With fewer than two observations there is no interval: returns
    /// `f64::INFINITY` so downstream precision checks fail safe (never
    /// "precise" by accident).
    pub fn half_width(&self, confidence: Confidence) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        t_quantile(confidence, self.n - 1) * self.std_err()
    }

    /// The confidence interval `(lo, hi)` around the mean.
    pub fn ci(&self, confidence: Confidence) -> (f64, f64) {
        let hw = self.half_width(confidence);
        (self.mean - hw, self.mean + hw)
    }

    /// Half-width as a fraction of `|mean|` (`INFINITY` when the mean is 0
    /// or the interval is unbounded).
    pub fn rel_half_width(&self, confidence: Confidence) -> f64 {
        let hw = self.half_width(confidence);
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            hw / self.mean.abs()
        }
    }

    /// True when the interval at this confidence contains `x`.
    pub fn ci_contains(&self, x: f64, confidence: Confidence) -> bool {
        let (lo, hi) = self.ci(confidence);
        lo <= x && x <= hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_direct() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased variance: population var 4.0 scaled by 8/7.
        assert!((s.var - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::from_samples(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        assert!(e.half_width(Confidence::P95).is_infinite());

        let s = Summary::from_samples(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_err(), 0.0);
        assert!(s.half_width(Confidence::P95).is_infinite());
        assert!(s.rel_half_width(Confidence::P95).is_infinite());
    }

    #[test]
    fn known_ci_hand_computed() {
        // n = 5, mean = 10, sd = 1  =>  se = 1/sqrt(5), t(4, 95%) = 2.776.
        let xs = [9.0, 9.5, 10.0, 10.5, 11.0];
        let s = Summary::from_samples(&xs);
        assert!((s.mean - 10.0).abs() < 1e-12);
        let expected_hw = 2.776 * s.std_err();
        assert!((s.half_width(Confidence::P95) - expected_hw).abs() < 1e-12);
        let (lo, hi) = s.ci(Confidence::P95);
        assert!(lo < 10.0 && hi > 10.0);
        assert!(s.ci_contains(10.0, Confidence::P95));
        assert!(!s.ci_contains(20.0, Confidence::P95));
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(s.half_width(Confidence::P99) > s.half_width(Confidence::P95));
        assert!(s.half_width(Confidence::P95) > s.half_width(Confidence::P90));
    }

    #[test]
    fn constant_sample_has_zero_width() {
        let s = Summary::from_samples(&[7.0; 10]);
        assert_eq!(s.half_width(Confidence::P95), 0.0);
        assert_eq!(s.rel_half_width(Confidence::P95), 0.0);
    }

    #[test]
    fn rel_half_width_zero_mean_is_infinite() {
        let s = Summary::from_samples(&[-1.0, 1.0]);
        assert!(s.rel_half_width(Confidence::P95).is_infinite());
    }

    #[test]
    fn minmax_skips_nans_and_handles_edges() {
        assert_eq!(minmax(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
        assert_eq!(minmax(&[f64::NAN, 5.0, f64::NAN, 7.0]), Some((5.0, 7.0)));
        assert_eq!(minmax(&[42.0]), Some((42.0, 42.0)));
        assert_eq!(minmax(&[]), None);
        assert_eq!(minmax(&[f64::NAN]), None);
        assert_eq!(
            minmax(&[f64::INFINITY, 0.0]),
            Some((0.0, f64::INFINITY)),
            "infinities are legitimate extrema (untrusted certificates)"
        );
    }
}
