//! Acceptance criteria for model-vs-measurement claims.
//!
//! Two statistically distinct claims appear in the validation suite:
//!
//! * **The model is (nearly) unbiased for this quantity** — then the
//!   replication CI should *contain* the prediction ([`Acceptance::CiContains`]).
//!   This is a strict test: it fails for an arbitrarily accurate model once
//!   the CI shrinks below the model's true bias, so it is only appropriate
//!   where exactness is the claim.
//! * **The model matches within a stated margin** — the TOST-style
//!   equivalence test ([`Acceptance::Equivalence`]): accept when the *whole*
//!   confidence interval lies inside `prediction ± margin`. This is the
//!   right form for LoPC's "within a few percent" headline, where the §5.3
//!   error analysis documents a known small bias. [`Acceptance::Band`] is
//!   the asymmetric generalisation for signed claims ("conservative by at
//!   most 5 %, under by at most 8 %").
//!
//! Both directions are interval-aware: a test passes or fails because of
//! where the *interval* lies, never because one seed drew lucky noise.

use crate::summary::Summary;
use crate::tquantile::Confidence;

/// How a prediction and a replicated measurement are compared.
#[derive(Clone, Copy, Debug)]
pub enum Acceptance {
    /// The confidence interval must contain the prediction (unbiasedness
    /// claim).
    CiContains,
    /// TOST-style equivalence: the whole CI must lie within
    /// `prediction ± (rel·|prediction| + abs)`.
    Equivalence {
        /// Relative margin as a fraction of `|prediction|`.
        rel: f64,
        /// Absolute margin added on top (use alone for near-zero
        /// quantities).
        abs: f64,
    },
    /// Asymmetric equivalence: the whole CI must lie within
    /// `[prediction − below·|prediction|, prediction + above·|prediction|]`.
    ///
    /// `below` bounds how far the measurement may fall *below* the
    /// prediction (the model over-predicting — LoPC's conservative
    /// direction), `above` how far it may sit above.
    Band {
        /// Allowed shortfall of the measurement, as a fraction of
        /// `|prediction|`.
        below: f64,
        /// Allowed excess of the measurement, as a fraction of
        /// `|prediction|`.
        above: f64,
    },
}

/// The outcome of one acceptance check, with everything a failure message
/// needs.
#[derive(Clone, Debug)]
pub struct MatchReport {
    /// The model's prediction.
    pub prediction: f64,
    /// The replicated measurement.
    pub summary: Summary,
    /// Confidence level of the interval used.
    pub confidence: Confidence,
    /// The criterion applied.
    pub acceptance: Acceptance,
    /// Did the check pass?
    pub passed: bool,
}

impl MatchReport {
    /// Signed relative error of the prediction against the measured mean.
    pub fn rel_err(&self) -> f64 {
        if self.summary.mean == 0.0 {
            if self.prediction == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.prediction - self.summary.mean) / self.summary.mean
        }
    }
}

impl std::fmt::Display for MatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (lo, hi) = self.summary.ci(self.confidence);
        write!(
            f,
            "prediction {:.6} vs mean {:.6} (rel err {:+.2}%), {} CI [{:.6}, {:.6}] over n={} reps, criterion {:?}: {}",
            self.prediction,
            self.summary.mean,
            self.rel_err() * 100.0,
            self.confidence,
            lo,
            hi,
            self.summary.n,
            self.acceptance,
            if self.passed { "PASS" } else { "FAIL" }
        )
    }
}

/// Apply an acceptance criterion to a prediction and a replicated
/// measurement.
pub fn check_match(
    prediction: f64,
    summary: &Summary,
    confidence: Confidence,
    acceptance: &Acceptance,
) -> MatchReport {
    let (lo, hi) = summary.ci(confidence);
    let passed = match *acceptance {
        Acceptance::CiContains => lo <= prediction && prediction <= hi,
        Acceptance::Equivalence { rel, abs } => {
            let margin = rel * prediction.abs() + abs;
            prediction - margin <= lo && hi <= prediction + margin
        }
        Acceptance::Band { below, above } => {
            // Margins scale |prediction| so the band stays ordered (and
            // meaningful) for negative predictions, e.g. signed paired
            // differences.
            let scale = prediction.abs();
            prediction - below * scale <= lo && hi <= prediction + above * scale
        }
    };
    MatchReport {
        prediction,
        summary: *summary,
        confidence,
        acceptance: *acceptance,
        passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mean: f64, spread: f64, n: usize) -> Summary {
        // Symmetric two-point mixture: mean exact, sd = spread.
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    mean - spread
                } else {
                    mean + spread
                }
            })
            .collect();
        Summary::from_samples(&xs)
    }

    #[test]
    fn ci_contains_accepts_and_rejects() {
        let s = summary(100.0, 1.0, 10);
        assert!(check_match(100.5, &s, Confidence::P95, &Acceptance::CiContains).passed);
        assert!(!check_match(110.0, &s, Confidence::P95, &Acceptance::CiContains).passed);
    }

    #[test]
    fn equivalence_needs_whole_ci_inside_margin() {
        let tight = summary(103.0, 0.5, 10);
        let crit = Acceptance::Equivalence {
            rel: 0.05,
            abs: 0.0,
        };
        // Mean 3 % off with a tight CI: inside a 5 % margin.
        assert!(check_match(100.0, &tight, Confidence::P95, &crit).passed);
        // Same mean but a wide CI pokes out of the margin.
        let wide = summary(103.0, 10.0, 4);
        assert!(!check_match(100.0, &wide, Confidence::P95, &crit).passed);
        // And a 6 % bias fails however tight the interval.
        let biased = summary(106.0, 0.01, 10);
        assert!(!check_match(100.0, &biased, Confidence::P95, &crit).passed);
    }

    #[test]
    fn equivalence_abs_margin_for_small_quantities() {
        let s = summary(0.03, 0.005, 8);
        let crit = Acceptance::Equivalence {
            rel: 0.0,
            abs: 0.05,
        };
        assert!(check_match(0.0, &s, Confidence::P95, &crit).passed);
        let far = summary(0.2, 0.005, 8);
        assert!(!check_match(0.0, &far, Confidence::P95, &crit).passed);
    }

    #[test]
    fn band_is_asymmetric() {
        // Claim: measurement may fall up to 10 % below the prediction but
        // only 2 % above it (model conservative).
        let crit = Acceptance::Band {
            below: 0.10,
            above: 0.02,
        };
        let under = summary(95.0, 0.5, 10); // 5 % below: fine
        assert!(check_match(100.0, &under, Confidence::P95, &crit).passed);
        let over = summary(105.0, 0.5, 10); // 5 % above: out
        assert!(!check_match(100.0, &over, Confidence::P95, &crit).passed);
    }

    #[test]
    fn band_handles_negative_predictions() {
        // Signed quantities (paired differences, say): the band must stay
        // ordered around a negative prediction.
        let crit = Acceptance::Band {
            below: 0.10,
            above: 0.10,
        };
        let matching = summary(-100.0, 0.5, 10);
        assert!(check_match(-100.0, &matching, Confidence::P95, &crit).passed);
        let off = summary(-130.0, 0.5, 10);
        assert!(!check_match(-100.0, &off, Confidence::P95, &crit).passed);
    }

    #[test]
    fn unbounded_interval_never_passes_equivalence() {
        let s = Summary::from_samples(&[100.0]); // n = 1: infinite hw
        let crit = Acceptance::Equivalence { rel: 0.5, abs: 0.0 };
        assert!(!check_match(100.0, &s, Confidence::P95, &crit).passed);
    }

    #[test]
    fn report_display_mentions_verdict() {
        let s = summary(100.0, 1.0, 10);
        let r = check_match(100.0, &s, Confidence::P95, &Acceptance::CiContains);
        let msg = format!("{r}");
        assert!(msg.contains("PASS"));
        assert!(msg.contains("n=10"));
        let r = check_match(500.0, &s, Confidence::P95, &Acceptance::CiContains);
        assert!(format!("{r}").contains("FAIL"));
    }

    #[test]
    fn rel_err_sign_convention() {
        let s = summary(100.0, 1.0, 10);
        let r = check_match(110.0, &s, Confidence::P95, &Acceptance::CiContains);
        assert!((r.rel_err() - 0.10).abs() < 1e-12);
    }
}
