//! Statistical validation machinery for model-vs-measurement claims.
//!
//! The LoPC reproduction's headline assertion — "the analytic model predicts
//! the simulator within a few percent" — is a statement about the *mean* of a
//! stochastic measurement, so validating it properly needs interval
//! estimates over independent replications, not a point sample against a
//! hand-tuned tolerance band. This crate provides the machinery, free of any
//! registry dependency:
//!
//! * [`tquantile`] — a Student-t critical-value table (two-sided 90/95/99 %)
//!   with `1/df` interpolation above 30 degrees of freedom;
//! * [`summary`] — [`Summary`]: sample mean/variance with t-based confidence
//!   intervals;
//! * [`batch`] — batch-means interval estimation for autocorrelated
//!   *within-run* series (one long run split into near-independent batches);
//! * [`paired`] — common-random-numbers paired comparison: the
//!   variance-reduced CI on the mean *difference* of two systems simulated
//!   with identical seeds;
//! * [`sequential`] — sequential stopping rules: draw replications until the
//!   CI half-width falls below a target fraction of the mean
//!   ([`run_to_precision`]), or draw CRN *pairs* until the difference CI
//!   excludes zero or meets the precision target
//!   ([`run_paired_to_decision`]), both with a hard replication cap;
//! * [`equivalence`] — acceptance criteria for model-vs-measurement claims:
//!   CI-contains-prediction, TOST-style equivalence at a margin, and
//!   asymmetric bands for signed claims (e.g. "conservative by at most 5 %").
//!
//! The driver that runs a simulator against these criteria lives in
//! `lopc_sim::validate`; this crate is pure statistics (no simulation
//! dependency) so the solver/report layers can reuse it.
//!
//! # Example: validate a prediction
//!
//! ```
//! use lopc_stats::{check_match, Acceptance, Confidence, Summary};
//!
//! // Five replicated measurements of a quantity the model predicts as 100.
//! let summary = Summary::from_samples(&[98.0, 101.0, 99.5, 100.5, 98.5]);
//! let report = check_match(
//!     100.0,
//!     &summary,
//!     Confidence::P95,
//!     &Acceptance::Equivalence { rel: 0.05, abs: 0.0 },
//! );
//! assert!(report.passed, "{report}");
//! ```

pub mod batch;
pub mod equivalence;
pub mod paired;
pub mod sequential;
pub mod summary;
pub mod tquantile;

pub use batch::batch_means;
pub use equivalence::{check_match, Acceptance, MatchReport};
pub use paired::paired_diff_summary;
pub use sequential::{
    run_paired_to_decision, run_to_precision, PairedOutcome, SequentialOutcome, StoppingRule,
};
pub use summary::{minmax, Summary};
pub use tquantile::{t_quantile, Confidence};
