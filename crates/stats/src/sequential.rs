//! Relative-precision sequential stopping: replicate until the confidence
//! interval is tight enough, with a hard cap.
//!
//! Fixed replication counts either waste work (low-variance configurations
//! reach the target precision immediately) or under-resolve (high-variance
//! configurations stay noisy). The standard sequential procedure (Law &
//! Kelton §9.4.1) draws a pilot batch, then keeps adding replications until
//! the t-interval half-width falls below a target fraction of the mean — or
//! a hard cap is hit, in which case the caller learns the target was not
//! reached instead of silently looping forever.

use crate::summary::Summary;
use crate::tquantile::Confidence;

/// Parameters of the sequential stopping rule.
#[derive(Clone, Copy, Debug)]
pub struct StoppingRule {
    /// Confidence level of the half-width test (and of any acceptance check
    /// built on the resulting summary).
    pub confidence: Confidence,
    /// Stop once `half_width <= rel_precision * |mean|`.
    pub rel_precision: f64,
    /// Also stop once `half_width <= abs_precision` (useful when the mean
    /// can be near zero; 0 disables the absolute test).
    pub abs_precision: f64,
    /// Pilot batch: never judge precision on fewer replications than this.
    pub min_reps: usize,
    /// Hard cap on total replications.
    pub max_reps: usize,
}

impl Default for StoppingRule {
    /// 95 % intervals to ±3 % relative precision, between 5 and 16
    /// replications — the trade-off the quick-window validation tests use.
    fn default() -> Self {
        StoppingRule {
            confidence: Confidence::P95,
            rel_precision: 0.03,
            abs_precision: 0.0,
            min_reps: 5,
            max_reps: 16,
        }
    }
}

impl StoppingRule {
    /// Same rule with a different relative-precision target.
    pub fn with_rel_precision(mut self, rel: f64) -> Self {
        self.rel_precision = rel;
        self
    }

    /// Same rule with an absolute-precision escape hatch.
    pub fn with_abs_precision(mut self, abs: f64) -> Self {
        self.abs_precision = abs;
        self
    }

    /// Same rule with different replication bounds.
    pub fn with_reps(mut self, min: usize, max: usize) -> Self {
        self.min_reps = min;
        self.max_reps = max;
        self
    }

    /// Does this summary satisfy the precision target?
    pub fn satisfied_by(&self, s: &Summary) -> bool {
        if s.n < self.min_reps.max(2) {
            return false;
        }
        let hw = s.half_width(self.confidence);
        hw <= self.rel_precision * s.mean.abs()
            || (self.abs_precision > 0.0 && hw <= self.abs_precision)
    }
}

/// What the sequential procedure produced.
#[derive(Clone, Debug)]
pub struct SequentialOutcome {
    /// Every sample drawn, in draw (index) order.
    pub samples: Vec<f64>,
    /// Summary of all samples.
    pub summary: Summary,
    /// True when the precision target was met; false when the cap stopped
    /// the procedure first.
    pub reached: bool,
}

/// Run the sequential procedure.
///
/// `draw(range)` must produce one sample per index in `range` — indices are
/// handed out contiguously from 0, so a simulation caller can map index `i`
/// to seed `base + i` and results are reproducible regardless of batching.
/// Batches grow geometrically (pilot of `min_reps`, then +50 % per round)
/// so the worst case does `O(log)` rounds, and the cap is always respected.
pub fn run_to_precision(
    rule: &StoppingRule,
    mut draw: impl FnMut(std::ops::Range<usize>) -> Vec<f64>,
) -> SequentialOutcome {
    let min = rule.min_reps.max(2);
    let max = rule.max_reps.max(min);
    let mut samples: Vec<f64> = Vec::with_capacity(min);
    loop {
        let have = samples.len();
        let want = if have == 0 {
            min
        } else {
            (have + have.div_ceil(2)).min(max)
        };
        let batch = draw(have..want);
        assert_eq!(
            batch.len(),
            want - have,
            "draw must return one sample per index"
        );
        samples.extend(batch);
        let summary = Summary::from_samples(&samples);
        if rule.satisfied_by(&summary) {
            return SequentialOutcome {
                samples,
                summary,
                reached: true,
            };
        }
        if samples.len() >= max {
            return SequentialOutcome {
                samples,
                summary,
                reached: false,
            };
        }
    }
}

/// What the paired sequential procedure produced.
#[derive(Clone, Debug)]
pub struct PairedOutcome {
    /// Per-pair differences `a[i] − b[i]`, in draw order.
    pub diffs: Vec<f64>,
    /// Summary of the differences (paired-t interval).
    pub summary: Summary,
    /// True when the procedure stopped because the diff CI excluded zero
    /// (a significant difference) or met the precision target; false when
    /// the replication cap struck first.
    pub decisive: bool,
}

impl PairedOutcome {
    /// The diff CI at the rule's confidence excludes zero — the two systems
    /// are significantly different in the sign of `summary.mean`.
    pub fn excludes_zero(&self, confidence: Confidence) -> bool {
        self.summary.n >= 2 && !self.summary.ci_contains(0.0, confidence)
    }
}

/// Sequential **paired** comparison under common random numbers: draw pairs
/// until the paired-t CI of the difference either *excludes zero* (the
/// comparison is decided) or satisfies the rule's precision target (the
/// difference is resolved as near-zero at the requested precision) — or the
/// cap strikes, reported as `decisive: false`.
///
/// `draw(range)` must produce one `(a, b)` pair per index, with both systems
/// run under the *same* per-index random numbers; like
/// [`run_to_precision`], indices are handed out contiguously from 0 so a
/// simulation caller can map index `i` to seed `base + i` and the procedure
/// is reproducible regardless of batching.
///
/// Rationale: a fixed-count CRN comparison either wastes replications on a
/// lopsided difference (decided after the pilot) or under-resolves a close
/// one. Stopping on *either* significance or precision keeps both claims
/// honest — "A beats B" comes with an interval excluding zero, and "no
/// material difference" comes with an interval tight enough to bound the
/// effect.
///
/// **Multiple looks.** Re-testing significance after every batch is the
/// classic repeated-significance-testing trap: seven unadjusted 5 % looks
/// carry far more than 5 % family-wise false-positive risk. The interim
/// looks therefore use a Pocock-style constant conservative boundary —
/// the 99 % interval must exclude zero to stop early — and since the
/// geometric batching makes at most `O(log(max/min))` looks (≤ 8 for any
/// sane rule), the family-wise error stays near the rule's nominal level.
/// The reported [`PairedOutcome::summary`] is unadjusted; judge it at the
/// rule's own confidence via [`PairedOutcome::excludes_zero`].
pub fn run_paired_to_decision(
    rule: &StoppingRule,
    mut draw: impl FnMut(std::ops::Range<usize>) -> Vec<(f64, f64)>,
) -> PairedOutcome {
    let min = rule.min_reps.max(2);
    let max = rule.max_reps.max(min);
    // The per-look significance boundary (see "Multiple looks" above).
    let look_level = Confidence::P99;
    let mut diffs: Vec<f64> = Vec::with_capacity(min);
    loop {
        let have = diffs.len();
        let want = if have == 0 {
            min
        } else {
            (have + have.div_ceil(2)).min(max)
        };
        let batch = draw(have..want);
        assert_eq!(
            batch.len(),
            want - have,
            "draw must return one pair per index"
        );
        diffs.extend(batch.into_iter().map(|(a, b)| a - b));
        let summary = Summary::from_samples(&diffs);
        let significant = diffs.len() >= min && !summary.ci_contains(0.0, look_level);
        // Precision on a difference is judged on the absolute escape hatch
        // when configured (differences are often near zero, where relative
        // precision is meaningless), else on the rule's relative target.
        if significant || rule.satisfied_by(&summary) {
            return PairedOutcome {
                diffs,
                summary,
                decisive: true,
            };
        }
        if diffs.len() >= max {
            return PairedOutcome {
                diffs,
                summary,
                decisive: false,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn noisy_sampler(
        seed: u64,
        mean: f64,
        spread: f64,
    ) -> impl FnMut(std::ops::Range<usize>) -> Vec<f64> {
        move |range| {
            range
                .map(|i| {
                    let mut rng = SmallRng::seed_from_u64(seed + i as u64);
                    mean + (rng.random::<f64>() - 0.5) * spread
                })
                .collect()
        }
    }

    #[test]
    fn low_variance_stops_at_pilot() {
        let rule = StoppingRule::default();
        let out = run_to_precision(&rule, noisy_sampler(1, 100.0, 0.1));
        assert!(out.reached);
        assert_eq!(out.samples.len(), rule.min_reps);
        assert!((out.summary.mean - 100.0).abs() < 1.0);
    }

    #[test]
    fn high_variance_hits_cap_and_reports_it() {
        let rule = StoppingRule::default().with_rel_precision(1e-6);
        let out = run_to_precision(&rule, noisy_sampler(2, 100.0, 50.0));
        assert!(!out.reached, "impossible precision must report failure");
        assert_eq!(out.samples.len(), rule.max_reps);
    }

    #[test]
    fn medium_variance_grows_beyond_pilot() {
        // Spread chosen so 5 reps are not enough but 16 are.
        let rule = StoppingRule::default().with_rel_precision(0.02);
        let out = run_to_precision(&rule, noisy_sampler(3, 100.0, 20.0));
        assert!(out.samples.len() > rule.min_reps);
    }

    #[test]
    fn draw_indices_are_contiguous_from_zero() {
        let mut seen = Vec::new();
        let rule = StoppingRule::default()
            .with_rel_precision(1e-9)
            .with_reps(4, 13);
        let out = run_to_precision(&rule, |range| {
            seen.extend(range.clone());
            range.map(|i| i as f64 * 1000.0).collect()
        });
        assert_eq!(seen, (0..13).collect::<Vec<_>>());
        assert_eq!(out.samples.len(), 13);
    }

    #[test]
    fn abs_precision_escape_for_near_zero_means() {
        // Mean ~0: relative precision can never be met, absolute can.
        let rule = StoppingRule::default()
            .with_rel_precision(1e-12)
            .with_abs_precision(1.0);
        let out = run_to_precision(&rule, noisy_sampler(4, 0.0, 1.0));
        assert!(out.reached);
    }

    #[test]
    fn constant_samples_reach_immediately() {
        let rule = StoppingRule::default();
        let out = run_to_precision(&rule, |r| r.map(|_| 7.0).collect());
        assert!(out.reached);
        assert_eq!(out.summary.mean, 7.0);
        assert_eq!(out.summary.half_width(rule.confidence), 0.0);
    }

    /// CRN pair sampler: shared noise plus a per-system offset.
    fn paired_sampler(
        seed: u64,
        gap: f64,
        noise: f64,
    ) -> impl FnMut(std::ops::Range<usize>) -> Vec<(f64, f64)> {
        move |range| {
            range
                .map(|i| {
                    let mut rng = SmallRng::seed_from_u64(seed + i as u64);
                    let shared = rng.random::<f64>() * 100.0;
                    let eps_a = (rng.random::<f64>() - 0.5) * noise;
                    let eps_b = (rng.random::<f64>() - 0.5) * noise;
                    (shared + gap + eps_a, shared + eps_b)
                })
                .collect()
        }
    }

    #[test]
    fn clear_difference_stops_at_pilot_with_significance() {
        let rule = StoppingRule::default().with_reps(5, 64);
        let out = run_paired_to_decision(&rule, paired_sampler(1, 10.0, 0.5));
        assert!(out.decisive);
        assert_eq!(out.diffs.len(), 5, "pilot should already exclude zero");
        assert!(out.excludes_zero(rule.confidence));
        assert!((out.summary.mean - 10.0).abs() < 1.0);
    }

    #[test]
    fn near_zero_difference_resolves_by_precision_not_significance() {
        // No gap: zero stays inside the CI, so only the absolute-precision
        // escape can end the procedure decisively.
        let rule = StoppingRule::default()
            .with_abs_precision(0.5)
            .with_reps(5, 64);
        let out = run_paired_to_decision(&rule, paired_sampler(2, 0.0, 1.0));
        assert!(out.decisive);
        assert!(!out.excludes_zero(rule.confidence));
        assert!(out.summary.half_width(rule.confidence) <= 0.5);
    }

    #[test]
    fn undecidable_comparison_hits_the_cap_and_says_so() {
        // Tiny gap, large noise, tight cap: neither significance nor
        // precision is reachable.
        let rule = StoppingRule::default()
            .with_rel_precision(1e-9)
            .with_reps(4, 8);
        let out = run_paired_to_decision(&rule, paired_sampler(3, 0.05, 50.0));
        assert!(!out.decisive);
        assert_eq!(out.diffs.len(), 8);
    }

    #[test]
    fn paired_indices_are_contiguous_from_zero() {
        let mut seen = Vec::new();
        let rule = StoppingRule::default()
            .with_rel_precision(1e-12)
            .with_reps(3, 11);
        let out = run_paired_to_decision(&rule, |range| {
            seen.extend(range.clone());
            // Alternating ±1 differences: the mean hovers near zero (CI
            // always contains it) and the impossible relative-precision
            // target is never met, so the procedure must run to the cap.
            range
                .map(|i| (i as f64, i as f64 + if i % 2 == 0 { 1.0 } else { -1.0 }))
                .collect()
        });
        assert_eq!(seen, (0..11).collect::<Vec<_>>());
        assert_eq!(out.diffs.len(), 11);
        assert!(!out.decisive);
    }
}
