//! Batch-means interval estimation for autocorrelated within-run series.
//!
//! Successive observations *inside* one simulation run (per-cycle response
//! times, say) are positively autocorrelated, so treating them as
//! independent under-estimates the variance of their mean — naive CIs
//! under-cover, sometimes badly. The classic fix (Law & Kelton, ch. 9) is
//! **batch means**: split the series into `b` contiguous batches, average
//! each batch, and build the t interval over the `b` batch averages, which
//! are nearly independent once batches span many autocorrelation times. The
//! t interval then has `b − 1` degrees of freedom.

use crate::summary::Summary;

/// Summarise an autocorrelated series via non-overlapping batch means.
///
/// Splits `series` into `nbatches` contiguous batches of equal size
/// (truncating the up-to-`nbatches − 1` trailing observations that do not
/// fill a batch), averages each batch, and returns the [`Summary`] *of the
/// batch averages* — its `mean` estimates the series mean, and its
/// [`Summary::half_width`] is the batch-means confidence half-width with
/// `nbatches − 1` degrees of freedom.
///
/// # Panics
///
/// Panics if `nbatches < 2` or the series is shorter than `2 * nbatches`
/// (each batch must hold at least two observations for the split to make
/// sense).
pub fn batch_means(series: &[f64], nbatches: usize) -> Summary {
    assert!(nbatches >= 2, "batch means needs at least 2 batches");
    assert!(
        series.len() >= 2 * nbatches,
        "series of {} too short for {} batches",
        series.len(),
        nbatches
    );
    let m = series.len() / nbatches;
    let averages: Vec<f64> = (0..nbatches)
        .map(|b| series[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64)
        .collect();
    Summary::from_samples(&averages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tquantile::Confidence;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn iid_series_recovers_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
        let s = batch_means(&xs, 20);
        assert!((s.mean - 0.5).abs() < 0.02, "mean {}", s.mean);
        assert_eq!(s.n, 20);
        // Batch mean equals the truncated series mean exactly.
        let direct = xs[..20 * (xs.len() / 20)].iter().sum::<f64>() / 10_000.0;
        assert!((s.mean - direct).abs() < 1e-12);
    }

    #[test]
    fn truncates_partial_trailing_batch() {
        // 11 observations, 2 batches of 5: the 11th is dropped.
        let xs = [1.0, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0, 3.0, 100.0];
        let s = batch_means(&xs, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    /// The motivating property: on a strongly autocorrelated AR(1) series
    /// the naive "treat every observation as independent" interval is far
    /// too narrow, while batch means with long batches widens it toward
    /// honest coverage.
    #[test]
    fn batch_ci_wider_than_naive_on_ar1() {
        let mut rng = SmallRng::seed_from_u64(7);
        let phi = 0.95;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| {
                x = phi * x + (rng.random::<f64>() - 0.5);
                x
            })
            .collect();
        let naive = Summary::from_samples(&xs).half_width(Confidence::P95);
        let batched = batch_means(&xs, 20).half_width(Confidence::P95);
        // Theoretical variance inflation factor for phi = 0.95 is
        // (1+phi)/(1-phi) = 39; even a rough batch split must show most of it.
        assert!(
            batched > 2.0 * naive,
            "batch hw {batched} vs naive hw {naive}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 batches")]
    fn one_batch_rejected() {
        batch_means(&[1.0, 2.0, 3.0, 4.0], 1);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_series_rejected() {
        batch_means(&[1.0, 2.0, 3.0], 2);
    }
}
