//! Student-t critical values, tabulated — no registry dependency.
//!
//! Two-sided critical values `t*` such that `P(|T_df| <= t*) = level`. The
//! table covers every degree of freedom from 1 to 30 exactly (the regime
//! replication counts actually live in) and the standard anchor rows 40, 60
//! and 120; between anchors the value is interpolated linearly in `1/df`,
//! which is accurate to better than 1e-3 there, and beyond 120 it converges
//! to the normal quantile.

/// Two-sided confidence level of an interval estimate.
///
/// Kept as an enum (rather than a free `f64`) so every level maps to an
/// exactly tabulated t row — there is no interpolation *between levels*.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Confidence {
    /// 90 % two-sided.
    P90,
    /// 95 % two-sided (the conventional default).
    #[default]
    P95,
    /// 99 % two-sided.
    P99,
}

impl Confidence {
    /// The coverage probability as a fraction.
    pub fn level(self) -> f64 {
        match self {
            Confidence::P90 => 0.90,
            Confidence::P95 => 0.95,
            Confidence::P99 => 0.99,
        }
    }
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0}%", self.level() * 100.0)
    }
}

/// Two-sided t critical values for df = 1..=30 (index `df - 1`).
const T90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];
const T99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

/// Anchor rows above the dense table: `(df, t90, t95, t99)`; the final row is
/// the normal limit, keyed by `u32::MAX` (treated as `1/df = 0`).
const ANCHORS: [(u32, f64, f64, f64); 4] = [
    (40, 1.684, 2.021, 2.704),
    (60, 1.671, 2.000, 2.660),
    (120, 1.658, 1.980, 2.617),
    (u32::MAX, 1.645, 1.960, 2.576),
];

/// Two-sided Student-t critical value for the given confidence and degrees
/// of freedom.
///
/// `df = 0` (fewer than two samples) has no finite interval: returns
/// `f64::INFINITY` so a half-width computed from it is conservative rather
/// than silently wrong.
pub fn t_quantile(confidence: Confidence, df: usize) -> f64 {
    if df == 0 {
        return f64::INFINITY;
    }
    let pick = |row: &(u32, f64, f64, f64)| match confidence {
        Confidence::P90 => row.1,
        Confidence::P95 => row.2,
        Confidence::P99 => row.3,
    };
    if df <= 30 {
        return match confidence {
            Confidence::P90 => T90[df - 1],
            Confidence::P95 => T95[df - 1],
            Confidence::P99 => T99[df - 1],
        };
    }
    // Between 30 and the anchors: interpolate linearly in 1/df, the classic
    // textbook rule (the t quantile is nearly affine in 1/df).
    let lo_table = (30u32, T90[29], T95[29], T99[29]);
    let mut prev = lo_table;
    for a in ANCHORS {
        let prev_df = prev.0 as f64;
        let a_inv = if a.0 == u32::MAX {
            0.0
        } else {
            1.0 / a.0 as f64
        };
        if df <= a.0 as usize || a.0 == u32::MAX {
            let x = 1.0 / df as f64;
            let (x0, x1) = (a_inv, 1.0 / prev_df);
            let (y0, y1) = (pick(&a), pick(&prev));
            // x is in [x0, x1]; x1 > x0 always (prev has smaller df).
            return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        }
        prev = a;
    }
    unreachable!("final anchor row catches every df")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_rows_match_tables() {
        assert_eq!(t_quantile(Confidence::P95, 1), 12.706);
        assert_eq!(t_quantile(Confidence::P95, 4), 2.776);
        assert_eq!(t_quantile(Confidence::P95, 30), 2.042);
        assert_eq!(t_quantile(Confidence::P90, 10), 1.812);
        assert_eq!(t_quantile(Confidence::P99, 2), 9.925);
    }

    #[test]
    fn zero_df_is_infinite() {
        assert!(t_quantile(Confidence::P95, 0).is_infinite());
    }

    #[test]
    fn interpolation_is_monotone_decreasing() {
        let mut prev = t_quantile(Confidence::P95, 30);
        for df in 31..2000 {
            let t = t_quantile(Confidence::P95, df);
            assert!(
                t <= prev + 1e-12,
                "t must not increase with df: df={df} t={t} prev={prev}"
            );
            assert!(t >= 1.960, "t must stay above the normal limit: df={df}");
            prev = t;
        }
    }

    #[test]
    fn interpolation_hits_anchor_rows() {
        assert!((t_quantile(Confidence::P95, 40) - 2.021).abs() < 1e-9);
        assert!((t_quantile(Confidence::P95, 60) - 2.000).abs() < 1e-9);
        assert!((t_quantile(Confidence::P95, 120) - 1.980).abs() < 1e-9);
        assert!((t_quantile(Confidence::P99, 40) - 2.704).abs() < 1e-9);
    }

    #[test]
    fn large_df_approaches_normal() {
        assert!((t_quantile(Confidence::P95, 1_000_000) - 1.960).abs() < 1e-3);
        assert!((t_quantile(Confidence::P90, 1_000_000) - 1.645).abs() < 1e-3);
        assert!((t_quantile(Confidence::P99, 1_000_000) - 2.576).abs() < 1e-3);
    }

    #[test]
    fn interpolated_midpoints_are_sane() {
        // df = 50 true value is 2.0086; 1/df interpolation should be close.
        let t = t_quantile(Confidence::P95, 50);
        assert!((t - 2.009).abs() < 0.005, "t(50) = {t}");
        // df = 35 true value is 2.0301.
        let t = t_quantile(Confidence::P95, 35);
        assert!((t - 2.030).abs() < 0.005, "t(35) = {t}");
    }

    #[test]
    fn confidence_display_and_level() {
        assert_eq!(Confidence::P95.level(), 0.95);
        assert_eq!(Confidence::default(), Confidence::P95);
        assert_eq!(format!("{}", Confidence::P99), "99%");
    }
}
