//! Common-random-numbers paired comparison.
//!
//! To decide whether system A outperforms system B, simulating both with
//! *identical* random-number streams (the same replication seeds) makes the
//! two measurements strongly positively correlated, so the variance of the
//! per-seed *difference* is far smaller than the variance of either
//! measurement — the classic common-random-numbers (CRN) variance-reduction
//! technique. The paired-t interval on the mean difference is then the
//! honest way to call a winner.

use crate::summary::Summary;

/// Summary of the per-pair differences `a[i] − b[i]`, for a paired-t
/// comparison of two systems measured under common random numbers.
///
/// The returned [`Summary`]'s mean is the mean difference and its
/// [`Summary::half_width`] the paired-t half-width with `n − 1` degrees of
/// freedom; a CI excluding zero is a significant difference at that level.
///
/// # Panics
///
/// Panics if the slices have different lengths (pairing would be
/// meaningless).
pub fn paired_diff_summary(a: &[f64], b: &[f64]) -> Summary {
    assert_eq!(
        a.len(),
        b.len(),
        "paired comparison needs equal-length samples"
    );
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    Summary::from_samples(&diffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tquantile::Confidence;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mean_difference_is_exact() {
        let a = [10.0, 12.0, 11.0];
        let b = [9.0, 10.0, 10.0];
        let d = paired_diff_summary(&a, &b);
        assert_eq!(d.n, 3);
        assert!((d.mean - 4.0 / 3.0).abs() < 1e-12);
    }

    /// The CRN point: when both systems share their noise, the paired
    /// interval on the difference is much tighter than the naive two-sample
    /// interval built from the two independent summaries.
    #[test]
    fn paired_beats_two_sample_under_common_noise() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..30 {
            let shared = rng.random::<f64>() * 100.0; // common random numbers
            let eps_a = rng.random::<f64>();
            let eps_b = rng.random::<f64>();
            a.push(shared + 5.0 + eps_a);
            b.push(shared + eps_b);
        }
        let paired_hw = paired_diff_summary(&a, &b).half_width(Confidence::P95);
        let sa = Summary::from_samples(&a);
        let sb = Summary::from_samples(&b);
        // Welch-style naive half-width from independent summaries.
        let naive_hw = crate::tquantile::t_quantile(Confidence::P95, a.len() - 1)
            * (sa.var / sa.n as f64 + sb.var / sb.n as f64).sqrt();
        assert!(
            paired_hw < naive_hw / 5.0,
            "paired {paired_hw} vs naive {naive_hw}"
        );
        // And the true difference (5.0 + E[eps_a - eps_b] = 5.0) is covered.
        let d = paired_diff_summary(&a, &b);
        assert!(d.ci_contains(5.0, Confidence::P95));
        // Zero is firmly excluded: the difference is significant.
        assert!(!d.ci_contains(0.0, Confidence::P95));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn length_mismatch_panics() {
        paired_diff_summary(&[1.0], &[1.0, 2.0]);
    }
}
