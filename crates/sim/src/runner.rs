//! Run entry points: single runs, parallel independent replications, the
//! sequential-precision replication loop, and common-random-numbers paired
//! runs.

use crate::config::{ConfigError, SimConfig};
use crate::engine::Engine;
use crate::sched::Scheduler;
use crate::stats::SimReport;
use lopc_stats::{Confidence, PairedOutcome, StoppingRule, Summary};

/// One simulation run, honouring the `LOPC_TEST_THREADS` override: when the
/// environment forces a worker count, route through the conservative
/// parallel engine (bit-identical by construction — that's what the CI
/// matrix is verifying); otherwise run the sequential engine directly.
fn run_single(
    cfg: &SimConfig,
    scheduler: Option<Scheduler>,
    traced: bool,
) -> Result<SimReport, ConfigError> {
    if let Some(threads) = crate::validate::env_threads() {
        return crate::par::run_par(
            cfg,
            &crate::par::ParOptions {
                lps: 0,
                threads,
                scheduler,
                trace: traced,
            },
        );
    }
    let engine = match scheduler {
        None => Engine::new(cfg.clone())?,
        Some(s) => Engine::with_scheduler(cfg.clone(), s)?,
    };
    let engine = if traced {
        engine.with_cycle_trace()
    } else {
        engine
    };
    Ok(engine.run_to_completion())
}

/// Run one simulation to completion with the adaptive default scheduler
/// (see [`Engine::new`]).
pub fn run(cfg: &SimConfig) -> Result<SimReport, ConfigError> {
    run_single(cfg, None, false)
}

/// Run one simulation with an explicit pending-event [`Scheduler`].
///
/// Every scheduler yields a bit-identical [`SimReport`] for the same
/// configuration and seed; this entry point exists for differential tests
/// and scheduler benchmarks.
pub fn run_with_scheduler(cfg: &SimConfig, scheduler: Scheduler) -> Result<SimReport, ConfigError> {
    run_single(cfg, Some(scheduler), false)
}

/// Run one simulation recording the per-cycle response-time series
/// ([`SimReport::cycle_trace`]) — the within-run input to
/// `lopc_stats::batch_means` for single-long-run confidence intervals where
/// 5+ replications are unaffordable. Identical to [`run`] in every other
/// respect (same seed → same report, trace or not).
pub fn run_traced(cfg: &SimConfig) -> Result<SimReport, ConfigError> {
    run_single(cfg, None, true)
}

/// Mean with a Student-t 95 % confidence half-width across replications.
///
/// Thin convenience view kept for chart/table call sites; the full interval
/// machinery (confidence levels, stopping rules, acceptance criteria) lives
/// in [`lopc_stats`] and is reachable through [`Replications::summary`].
#[derive(Clone, Copy, Debug)]
pub struct MeanCi {
    /// Mean over replications.
    pub mean: f64,
    /// 95 % Student-t half-width (infinite below two replications: one
    /// sample has no interval).
    pub half_width: f64,
}

impl MeanCi {
    fn from_samples(xs: &[f64]) -> Self {
        let s = Summary::from_samples(xs);
        MeanCi {
            mean: s.mean,
            half_width: s.half_width(Confidence::P95),
        }
    }
}

/// Results of several independent replications of the same configuration
/// (seeds `seed, seed+1, …`), run in parallel.
#[derive(Clone, Debug)]
pub struct Replications {
    /// One report per replication, in seed order.
    pub reports: Vec<SimReport>,
}

impl Replications {
    /// Per-replication samples of an arbitrary statistic, in seed order —
    /// the raw material for any interval estimate.
    pub fn samples<F: Fn(&SimReport) -> f64>(&self, f: F) -> Vec<f64> {
        self.reports.iter().map(f).collect()
    }

    /// Full [`Summary`] (mean, variance, t-based CIs at any level) of a
    /// statistic across replications.
    pub fn summary<F: Fn(&SimReport) -> f64>(&self, f: F) -> Summary {
        Summary::from_samples(&self.samples(f))
    }

    /// Mean cycle response time across replications, with a 95 % CI.
    pub fn mean_r(&self) -> MeanCi {
        MeanCi::from_samples(&self.samples(|r| r.aggregate.mean_r))
    }

    /// System throughput across replications, with a 95 % CI.
    pub fn throughput(&self) -> MeanCi {
        MeanCi::from_samples(&self.samples(|r| r.aggregate.throughput))
    }

    /// Mean of an arbitrary per-report statistic, with a 95 % CI.
    pub fn stat<F: Fn(&SimReport) -> f64>(&self, f: F) -> MeanCi {
        MeanCi::from_samples(&self.samples(f))
    }
}

/// Run replications for the index range `range` (seed `cfg.seed + i`),
/// distributed over scoped threads through the work-stealing claim queue.
///
/// The scheduler selection (`None` = adaptive/env default) never affects
/// results, only speed.
fn run_index_range(
    cfg: &SimConfig,
    range: std::ops::Range<usize>,
    scheduler: Option<Scheduler>,
) -> Vec<SimReport> {
    let count = range.len();
    let base = range.start;
    // With fewer replications than cores the spare cores would idle for
    // the whole batch: split them evenly across replications and run each
    // one through the conservative parallel engine, which is bit-identical
    // to the sequential engine by construction (see [`crate::par`]). An
    // explicit `LOPC_TEST_THREADS` override still wins via `run_single`.
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers_per_rep = avail.checked_div(count).unwrap_or(0);
    let run_one = |i: usize| {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add((base + i) as u64);
        // Config validated by the caller; the per-replication clone only
        // changes the seed. Routing through run_single keeps replications
        // under the LOPC_TEST_THREADS override too.
        if workers_per_rep >= 2 && crate::validate::env_threads().is_none() {
            crate::par::run_par(
                &c,
                &crate::par::ParOptions {
                    lps: 0,
                    threads: workers_per_rep,
                    scheduler,
                    trace: false,
                },
            )
            .expect("validated config")
        } else {
            run_single(&c, scheduler, false).expect("validated config")
        }
    };

    let threads = lopc_solver::steal::worker_count(count);
    let mut slots: Vec<Option<SimReport>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_one(i));
        }
    } else {
        let queue = lopc_solver::steal::WorkQueue::new(count);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let queue = &queue;
                let run_one = &run_one;
                handles.push(scope.spawn(move || {
                    // One claim per replication: each item is a whole
                    // simulation, so claiming overhead is negligible and
                    // single-index stealing gives the best balance.
                    let mut local = Vec::new();
                    while let Some(i) = queue.claim() {
                        local.push((i, run_one(i)));
                    }
                    local
                }));
            }
            for h in handles {
                for (i, report) in h.join().expect("replication worker panicked") {
                    slots[i] = Some(report);
                }
            }
        });
    }

    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

/// Run `reps` independent replications in parallel, varying only the seed.
///
/// Replication `i` runs with seed `cfg.seed + i`, so results are
/// reproducible and replication 0 matches a plain [`run`]. Replications are
/// distributed over std scoped threads through a work-stealing claim queue
/// ([`lopc_solver::steal::WorkQueue`]): an idle core always picks up the
/// next unclaimed replication, so unequal replication costs (different seeds
/// can simulate very different event counts) never serialize the batch the
/// way static chunking did. When there are *fewer* replications than cores,
/// the spare cores are split evenly across replications and each runs
/// through the conservative parallel engine ([`crate::par::run_par`]),
/// which is bit-identical to the sequential engine — results never depend
/// on the machine's core count.
///
/// # Example
///
/// ```
/// use lopc_sim::{run_replications, SimConfig, StopCondition, ThreadSpec};
/// use lopc_dist::ServiceTime;
///
/// let cfg = SimConfig {
///     p: 2,
///     net_latency: 10.0,
///     request_handler: ServiceTime::constant(50.0),
///     reply_handler: ServiceTime::constant(50.0),
///     threads: vec![ThreadSpec::worker(ServiceTime::exponential(200.0)); 2],
///     protocol_processor: false,
///     latency_dist: None,
///     stop: StopCondition::CyclesPerThread { n: 10 },
///     seed: 7,
/// };
/// let reps = run_replications(&cfg, 4).unwrap();
/// assert_eq!(reps.reports.len(), 4);
/// let ci = reps.mean_r();
/// assert!(ci.mean > 0.0 && ci.half_width >= 0.0);
/// ```
pub fn run_replications(cfg: &SimConfig, reps: usize) -> Result<Replications, ConfigError> {
    run_replications_opt(cfg, reps, None)
}

/// [`run_replications`] with an explicit pending-event [`Scheduler`] — the
/// ROADMAP's "`Scheduler` knob": identical results (schedulers are
/// observationally equivalent), different speed.
pub fn run_replications_with(
    cfg: &SimConfig,
    reps: usize,
    scheduler: Scheduler,
) -> Result<Replications, ConfigError> {
    run_replications_opt(cfg, reps, Some(scheduler))
}

fn run_replications_opt(
    cfg: &SimConfig,
    reps: usize,
    scheduler: Option<Scheduler>,
) -> Result<Replications, ConfigError> {
    cfg.validate()?;
    Ok(Replications {
        reports: run_index_range(cfg, 0..reps, scheduler),
    })
}

/// Replicate until the confidence interval of `stat` satisfies the
/// sequential [`StoppingRule`], or its replication cap is reached.
///
/// Replication `i` always runs seed `cfg.seed + i` regardless of how the
/// sequential procedure batches its draws, so the set of simulations is a
/// deterministic function of `(cfg, rule)` — re-running reproduces it
/// bit-for-bit. All reports are kept: further statistics can be summarised
/// from the same runs via [`Replications::summary`].
///
/// Whether the precision target was actually reached (vs. the cap striking
/// first) can be recovered as `rule.satisfied_by(&reps.summary(stat))`;
/// interval-aware acceptance checks (`lopc_stats::check_match`) remain
/// honest either way, because an under-resolved interval is *wide*, never
/// misleadingly tight.
pub fn run_until_precision(
    cfg: &SimConfig,
    rule: &StoppingRule,
    stat: impl Fn(&SimReport) -> f64,
) -> Result<Replications, ConfigError> {
    cfg.validate()?;
    let mut reports: Vec<SimReport> = Vec::with_capacity(rule.min_reps);
    let outcome = lopc_stats::run_to_precision(rule, |range| {
        let batch = run_index_range(cfg, range, None);
        let samples: Vec<f64> = batch.iter().map(&stat).collect();
        reports.extend(batch);
        samples
    });
    debug_assert_eq!(outcome.samples.len(), reports.len());
    Ok(Replications { reports })
}

/// Run two configurations under **common random numbers**: `reps`
/// replications each, with replication `i` of both systems using the *same*
/// seed (`cfg_a.seed + i` and `cfg_b.seed + i`, which the caller should set
/// equal for full CRN effect).
///
/// Returns both replication sets in seed order, ready for
/// [`lopc_stats::paired_diff_summary`] on any pair of extracted statistics —
/// the variance-reduced way to compare two systems.
pub fn run_paired(
    cfg_a: &SimConfig,
    cfg_b: &SimConfig,
    reps: usize,
) -> Result<(Replications, Replications), ConfigError> {
    Ok((
        run_replications_opt(cfg_a, reps, None)?,
        run_replications_opt(cfg_b, reps, None)?,
    ))
}

/// [`run_paired`] under the sequential stopping rule for *paired*
/// comparisons: replicate both systems (CRN — replication `i` of each uses
/// seed `cfg.seed + i`) until the paired-t interval of
/// `stat(a) − stat(b)` excludes zero or meets the rule's precision target,
/// or the cap strikes (`outcome.decisive == false`).
///
/// Replication `i` always runs seed `cfg.seed + i` for both systems
/// regardless of batching, so the run set is a deterministic function of
/// `(cfg_a, cfg_b, rule)`. All reports are kept; further statistics can be
/// pulled from the same runs.
pub fn run_paired_until(
    cfg_a: &SimConfig,
    cfg_b: &SimConfig,
    rule: &StoppingRule,
    stat: impl Fn(&SimReport) -> f64,
) -> Result<(Replications, Replications, PairedOutcome), ConfigError> {
    cfg_a.validate()?;
    cfg_b.validate()?;
    let mut reports_a: Vec<SimReport> = Vec::with_capacity(rule.min_reps);
    let mut reports_b: Vec<SimReport> = Vec::with_capacity(rule.min_reps);
    let outcome = lopc_stats::run_paired_to_decision(rule, |range| {
        let batch_a = run_index_range(cfg_a, range.clone(), None);
        let batch_b = run_index_range(cfg_b, range, None);
        let pairs: Vec<(f64, f64)> = batch_a
            .iter()
            .zip(&batch_b)
            .map(|(a, b)| (stat(a), stat(b)))
            .collect();
        reports_a.extend(batch_a);
        reports_b.extend(batch_b);
        pairs
    });
    debug_assert_eq!(outcome.diffs.len(), reports_a.len());
    Ok((
        Replications { reports: reports_a },
        Replications { reports: reports_b },
        outcome,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StopCondition, ThreadSpec};
    use lopc_dist::ServiceTime;

    fn cfg() -> SimConfig {
        SimConfig {
            p: 4,
            net_latency: 10.0,
            request_handler: ServiceTime::exponential(50.0),
            reply_handler: ServiceTime::exponential(50.0),
            threads: vec![ThreadSpec::worker(ServiceTime::exponential(300.0)); 4],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 5_000.0,
                end: 55_000.0,
            },
            seed: 100,
        }
    }

    #[test]
    fn run_smoke() {
        let report = run(&cfg()).unwrap();
        assert!(report.aggregate.total_cycles > 0);
        assert!(report.aggregate.mean_r > 0.0);
    }

    #[test]
    fn replications_are_seeded_independently() {
        let reps = run_replications(&cfg(), 4).unwrap();
        assert_eq!(reps.reports.len(), 4);
        let r0 = reps.reports[0].aggregate.mean_r;
        let r1 = reps.reports[1].aggregate.mean_r;
        assert_ne!(r0, r1, "different seeds must differ");
        // Replication 0 uses the base seed: identical to a plain run.
        let single = run(&cfg()).unwrap();
        assert_eq!(single.aggregate.mean_r, r0);
    }

    #[test]
    fn replications_parallel_matches_order() {
        // Two invocations must agree element-wise (deterministic seeding).
        let a = run_replications(&cfg(), 6).unwrap();
        let b = run_replications(&cfg(), 6).unwrap();
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x.aggregate.mean_r, y.aggregate.mean_r);
        }
    }

    #[test]
    fn scheduler_knob_changes_nothing_but_runs_both() {
        let cal = run_replications_with(&cfg(), 3, Scheduler::Calendar).unwrap();
        let heap = run_replications_with(&cfg(), 3, Scheduler::BinaryHeap).unwrap();
        for (x, y) in cal.reports.iter().zip(&heap.reports) {
            assert_eq!(x.aggregate.mean_r, y.aggregate.mean_r);
            assert_eq!(x.events, y.events);
        }
    }

    #[test]
    fn mean_ci_reduces_with_replications() {
        let reps = run_replications(&cfg(), 8).unwrap();
        let ci = reps.mean_r();
        assert!(ci.mean > 0.0);
        assert!(ci.half_width >= 0.0);
        assert!(ci.half_width < ci.mean, "CI should be informative");
    }

    #[test]
    fn samples_and_summary_are_consistent() {
        let reps = run_replications(&cfg(), 5).unwrap();
        let xs = reps.samples(|r| r.aggregate.mean_r);
        assert_eq!(xs.len(), 5);
        let s = reps.summary(|r| r.aggregate.mean_r);
        assert_eq!(s.n, 5);
        assert!((s.mean - xs.iter().sum::<f64>() / 5.0).abs() < 1e-12);
        // The MeanCi view is the P95 slice of the summary.
        let ci = reps.mean_r();
        assert_eq!(ci.mean, s.mean);
        assert_eq!(ci.half_width, s.half_width(Confidence::P95));
    }

    #[test]
    fn zero_replications_is_empty() {
        let reps = run_replications(&cfg(), 0).unwrap();
        assert!(reps.reports.is_empty());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = cfg();
        c.p = 1;
        c.threads.truncate(1);
        assert!(run(&c).is_err());
        assert!(run_replications(&c, 2).is_err());
        assert!(run_until_precision(&c, &StoppingRule::default(), |r| r.aggregate.mean_r).is_err());
    }

    #[test]
    fn throughput_stat_accessor() {
        let reps = run_replications(&cfg(), 3).unwrap();
        let x = reps.throughput();
        let manual = reps.stat(|r| r.aggregate.throughput);
        assert_eq!(x.mean, manual.mean);
    }

    #[test]
    fn until_precision_is_prefix_of_fixed_replications() {
        // The sequential procedure must run seeds base, base+1, … — i.e. its
        // report list is a prefix of what a fixed-count run produces.
        let rule = StoppingRule::default()
            .with_rel_precision(0.20)
            .with_reps(3, 8);
        let seq = run_until_precision(&cfg(), &rule, |r| r.aggregate.mean_r).unwrap();
        assert!(seq.reports.len() >= 3 && seq.reports.len() <= 8);
        let fixed = run_replications(&cfg(), seq.reports.len()).unwrap();
        for (a, b) in seq.reports.iter().zip(&fixed.reports) {
            assert_eq!(a.aggregate.mean_r, b.aggregate.mean_r);
        }
    }

    #[test]
    fn until_precision_respects_cap() {
        // An impossible target stops at the cap instead of looping.
        let rule = StoppingRule::default()
            .with_rel_precision(1e-9)
            .with_reps(3, 6);
        let seq = run_until_precision(&cfg(), &rule, |r| r.aggregate.mean_r).unwrap();
        assert_eq!(seq.reports.len(), 6);
        assert!(!rule.satisfied_by(&seq.summary(|r| r.aggregate.mean_r)));
    }

    #[test]
    fn traced_run_matches_untraced_and_covers_all_cycles() {
        let plain = run(&cfg()).unwrap();
        let traced = run_traced(&cfg()).unwrap();
        // The trace changes nothing about the simulation itself.
        assert_eq!(plain.aggregate.mean_r, traced.aggregate.mean_r);
        assert_eq!(plain.events, traced.events);
        assert!(plain.cycle_trace.is_empty(), "plain runs carry no trace");
        // One entry per measured cycle, and their mean is the pooled mean.
        assert_eq!(
            traced.cycle_trace.len() as u64,
            traced.aggregate.total_cycles
        );
        let trace_mean = traced.cycle_trace.iter().sum::<f64>() / traced.cycle_trace.len() as f64;
        assert!((trace_mean - traced.aggregate.mean_r).abs() < 1e-9);
    }

    #[test]
    fn paired_until_decides_a_clear_difference_early() {
        let a = cfg();
        let mut b = cfg();
        // Much slower handlers: R difference is large and obvious.
        b.request_handler = ServiceTime::exponential(120.0);
        b.reply_handler = ServiceTime::exponential(120.0);
        let rule = StoppingRule::default().with_reps(4, 16);
        let (ra, rb, outcome) = run_paired_until(&b, &a, &rule, |r| r.aggregate.mean_r).unwrap();
        assert!(outcome.decisive);
        assert!(outcome.excludes_zero(rule.confidence));
        assert!(outcome.summary.mean > 0.0, "slower handlers raise R");
        assert_eq!(ra.reports.len(), rb.reports.len());
        assert_eq!(ra.reports.len(), outcome.diffs.len());
        // CRN: system A's replications equal the plain fixed-count ones.
        let plain = run_replications(&a, ra.reports.len()).unwrap();
        for (x, y) in rb.reports.iter().zip(&plain.reports) {
            assert_eq!(x.aggregate.mean_r, y.aggregate.mean_r);
        }
    }

    #[test]
    fn paired_until_identical_systems_is_undecided_at_cap_or_zero() {
        let a = cfg();
        let rule = StoppingRule::default().with_reps(3, 5);
        let (_, _, outcome) = run_paired_until(&a, &a, &rule, |r| r.aggregate.mean_r).unwrap();
        // Identical systems: every diff is exactly 0, so the zero-width
        // interval satisfies the precision target immediately.
        assert!(outcome.decisive);
        assert!(!outcome.excludes_zero(rule.confidence));
        assert_eq!(outcome.summary.mean, 0.0);
    }

    #[test]
    fn paired_runs_share_seeds() {
        let a = cfg();
        let mut b = cfg();
        b.request_handler = ServiceTime::exponential(60.0);
        let (ra, rb) = run_paired(&a, &b, 3).unwrap();
        assert_eq!(ra.reports.len(), 3);
        assert_eq!(rb.reports.len(), 3);
        // System A's replications are the plain ones.
        let plain = run_replications(&a, 3).unwrap();
        for (x, y) in ra.reports.iter().zip(&plain.reports) {
            assert_eq!(x.aggregate.mean_r, y.aggregate.mean_r);
        }
        // CRN makes the diff variance smaller than the raw variance.
        let d = lopc_stats::paired_diff_summary(
            &rb.samples(|r| r.aggregate.mean_r),
            &ra.samples(|r| r.aggregate.mean_r),
        );
        assert!(d.mean > 0.0, "slower handlers must raise R");
    }
}
