//! Run entry points: single runs and parallel independent replications.

use crate::config::{ConfigError, SimConfig};
use crate::engine::Engine;
use crate::sched::Scheduler;
use crate::stats::SimReport;

/// Run one simulation to completion with the default scheduler.
pub fn run(cfg: &SimConfig) -> Result<SimReport, ConfigError> {
    Ok(Engine::new(cfg.clone())?.run_to_completion())
}

/// Run one simulation with an explicit pending-event [`Scheduler`].
///
/// Every scheduler yields a bit-identical [`SimReport`] for the same
/// configuration and seed; this entry point exists for differential tests
/// and scheduler benchmarks.
pub fn run_with_scheduler(cfg: &SimConfig, scheduler: Scheduler) -> Result<SimReport, ConfigError> {
    Ok(Engine::with_scheduler(cfg.clone(), scheduler)?.run_to_completion())
}

/// Mean with a normal-approximation confidence half-width across
/// replications.
#[derive(Clone, Copy, Debug)]
pub struct MeanCi {
    /// Mean over replications.
    pub mean: f64,
    /// ~95 % half-width (1.96 standard errors; 0 with one replication).
    pub half_width: f64,
}

impl MeanCi {
    fn from_samples(xs: &[f64]) -> Self {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        if xs.len() < 2 {
            return MeanCi {
                mean,
                half_width: 0.0,
            };
        }
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        MeanCi {
            mean,
            half_width: 1.96 * (var / n).sqrt(),
        }
    }
}

/// Results of several independent replications of the same configuration
/// (seeds `seed, seed+1, …`), run in parallel.
#[derive(Clone, Debug)]
pub struct Replications {
    /// One report per replication, in seed order.
    pub reports: Vec<SimReport>,
}

impl Replications {
    /// Mean cycle response time across replications.
    pub fn mean_r(&self) -> MeanCi {
        MeanCi::from_samples(
            &self
                .reports
                .iter()
                .map(|r| r.aggregate.mean_r)
                .collect::<Vec<_>>(),
        )
    }

    /// System throughput across replications.
    pub fn throughput(&self) -> MeanCi {
        MeanCi::from_samples(
            &self
                .reports
                .iter()
                .map(|r| r.aggregate.throughput)
                .collect::<Vec<_>>(),
        )
    }

    /// Mean of an arbitrary per-report statistic.
    pub fn stat<F: Fn(&SimReport) -> f64>(&self, f: F) -> MeanCi {
        MeanCi::from_samples(&self.reports.iter().map(f).collect::<Vec<_>>())
    }
}

/// Run `reps` independent replications in parallel, varying only the seed.
///
/// Replication `i` runs with seed `cfg.seed + i`, so results are
/// reproducible and replication 0 matches a plain [`run`]. Replications are
/// distributed over std scoped threads through a work-stealing claim queue
/// ([`lopc_solver::steal::WorkQueue`]): an idle core always picks up the
/// next unclaimed replication, so unequal replication costs (different seeds
/// can simulate very different event counts) never serialize the batch the
/// way static chunking did.
///
/// # Example
///
/// ```
/// use lopc_sim::{run_replications, SimConfig, StopCondition, ThreadSpec};
/// use lopc_dist::ServiceTime;
///
/// let cfg = SimConfig {
///     p: 2,
///     net_latency: 10.0,
///     request_handler: ServiceTime::constant(50.0),
///     reply_handler: ServiceTime::constant(50.0),
///     threads: vec![ThreadSpec::worker(ServiceTime::exponential(200.0)); 2],
///     protocol_processor: false,
///     latency_dist: None,
///     stop: StopCondition::CyclesPerThread { n: 10 },
///     seed: 7,
/// };
/// let reps = run_replications(&cfg, 4).unwrap();
/// assert_eq!(reps.reports.len(), 4);
/// let ci = reps.mean_r();
/// assert!(ci.mean > 0.0 && ci.half_width >= 0.0);
/// ```
pub fn run_replications(cfg: &SimConfig, reps: usize) -> Result<Replications, ConfigError> {
    cfg.validate()?;
    if reps == 0 {
        return Ok(Replications { reports: vec![] });
    }

    let run_one = |i: usize| {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(i as u64);
        // Config validated above; the per-replication clone only changes
        // the seed.
        Engine::new(c)
            .expect("validated config")
            .run_to_completion()
    };

    let threads = lopc_solver::steal::worker_count(reps);

    let mut slots: Vec<Option<SimReport>> = Vec::with_capacity(reps);
    slots.resize_with(reps, || None);

    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_one(i));
        }
    } else {
        let queue = lopc_solver::steal::WorkQueue::new(reps);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let queue = &queue;
                let run_one = &run_one;
                handles.push(scope.spawn(move || {
                    // One claim per replication: each item is a whole
                    // simulation, so claiming overhead is negligible and
                    // single-index stealing gives the best balance.
                    let mut local = Vec::new();
                    while let Some(i) = queue.claim() {
                        local.push((i, run_one(i)));
                    }
                    local
                }));
            }
            for h in handles {
                for (i, report) in h.join().expect("replication worker panicked") {
                    slots[i] = Some(report);
                }
            }
        });
    }

    Ok(Replications {
        reports: slots.into_iter().map(|s| s.expect("slot filled")).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StopCondition, ThreadSpec};
    use lopc_dist::ServiceTime;

    fn cfg() -> SimConfig {
        SimConfig {
            p: 4,
            net_latency: 10.0,
            request_handler: ServiceTime::exponential(50.0),
            reply_handler: ServiceTime::exponential(50.0),
            threads: vec![ThreadSpec::worker(ServiceTime::exponential(300.0)); 4],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 5_000.0,
                end: 55_000.0,
            },
            seed: 100,
        }
    }

    #[test]
    fn run_smoke() {
        let report = run(&cfg()).unwrap();
        assert!(report.aggregate.total_cycles > 0);
        assert!(report.aggregate.mean_r > 0.0);
    }

    #[test]
    fn replications_are_seeded_independently() {
        let reps = run_replications(&cfg(), 4).unwrap();
        assert_eq!(reps.reports.len(), 4);
        let r0 = reps.reports[0].aggregate.mean_r;
        let r1 = reps.reports[1].aggregate.mean_r;
        assert_ne!(r0, r1, "different seeds must differ");
        // Replication 0 uses the base seed: identical to a plain run.
        let single = run(&cfg()).unwrap();
        assert_eq!(single.aggregate.mean_r, r0);
    }

    #[test]
    fn replications_parallel_matches_order() {
        // Two invocations must agree element-wise (deterministic seeding).
        let a = run_replications(&cfg(), 6).unwrap();
        let b = run_replications(&cfg(), 6).unwrap();
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x.aggregate.mean_r, y.aggregate.mean_r);
        }
    }

    #[test]
    fn mean_ci_reduces_with_replications() {
        let reps = run_replications(&cfg(), 8).unwrap();
        let ci = reps.mean_r();
        assert!(ci.mean > 0.0);
        assert!(ci.half_width >= 0.0);
        assert!(ci.half_width < ci.mean, "CI should be informative");
    }

    #[test]
    fn zero_replications_is_empty() {
        let reps = run_replications(&cfg(), 0).unwrap();
        assert!(reps.reports.is_empty());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = cfg();
        c.p = 1;
        c.threads.truncate(1);
        assert!(run(&c).is_err());
        assert!(run_replications(&c, 2).is_err());
    }

    #[test]
    fn throughput_stat_accessor() {
        let reps = run_replications(&cfg(), 3).unwrap();
        let x = reps.throughput();
        let manual = reps.stat(|r| r.aggregate.throughput);
        assert_eq!(x.mean, manual.mean);
    }
}
