//! Event-driven simulator of an Active-Message multiprocessor.
//!
//! This crate is the validation substrate for the LoPC model, reproducing the
//! architecture of Chapter 2 of the thesis:
//!
//! * `P` processing nodes on a **contention-free** interconnect with constant
//!   wire latency `St`;
//! * each node runs one **computation thread**; threads do `W` work, then
//!   issue a **blocking request** to another node and spin until the reply;
//! * an arriving message **interrupts** the running computation (preempt-
//!   resume) and runs an atomic, non-preemptible **handler** for a sampled
//!   service time with mean `So`;
//! * messages that arrive while a handler runs wait in an **infinite
//!   hardware FIFO**; when a handler finishes, queued messages run before the
//!   computation thread resumes;
//! * request handlers either **reply** to the originator or **forward** the
//!   request (multi-hop, Appendix A);
//! * the optional **protocol processor** variant (§5.1 "Modeling Shared
//!   Memory") runs all handlers on a per-node coprocessor so computation is
//!   never interrupted.
//!
//! The original thesis validated this style of simulator against the MIT
//! Alewife machine to within ~1 %; here the simulator plays the role of the
//! hardware (see DESIGN.md, substitutions).
//!
//! The pending-event set behind the loop is pluggable ([`sched`]): the
//! engine picks adaptively between an `O(1)`-amortized calendar queue
//! (large machines) and a binary heap (small ones, ≤ 32 pending events),
//! with both explicitly selectable ([`Scheduler`],
//! [`runner::run_with_scheduler`]) — every scheduler produces bit-identical
//! runs, so the choice is purely a speed matter. Independent replications
//! run in parallel with work stealing ([`run_replications`]), optionally
//! under a sequential-precision stopping rule ([`run_until_precision`]),
//! and the [`validate`] module turns replications plus a model prediction
//! into an interval-aware pass/fail verdict. A conservative parallel engine
//! ([`par`]) partitions the node set into logical processes synchronized by
//! lookahead and null messages — proven **bit-identical** to the sequential
//! engine for every partition and worker count by a differential
//! equivalence suite (`tests/par_differential.rs`, DESIGN.md §13).
//!
//! # Example
//!
//! ```
//! use lopc_sim::{SimConfig, ThreadSpec, DestChooser, StopCondition, run};
//! use lopc_dist::ServiceTime;
//!
//! // 32-node homogeneous all-to-all pattern: W = 1000, So = 200, St = 25.
//! let cfg = SimConfig {
//!     p: 32,
//!     net_latency: 25.0,
//!     request_handler: ServiceTime::constant(200.0),
//!     reply_handler: ServiceTime::constant(200.0),
//!     threads: vec![
//!         ThreadSpec {
//!             work: Some(ServiceTime::constant(1000.0)),
//!             dest: DestChooser::UniformOther,
//!             hops: 1,
//!             fanout: 1,
//!         };
//!         32
//!     ],
//!     protocol_processor: false,
//!     latency_dist: None,
//!     stop: StopCondition::Horizon { warmup: 50_000.0, end: 250_000.0 },
//!     seed: 42,
//! };
//! let report = run(&cfg).unwrap();
//! let r = report.aggregate.mean_r;
//! // Response time must lie within the LoPC bounds W+2St+2So .. W+2St+3.46So.
//! assert!(r > 1450.0 && r < 1742.0, "R = {r}");
//! ```

pub mod config;
pub mod engine;
pub mod par;
pub mod routing;
pub mod runner;
pub mod sched;
pub mod stats;
pub mod validate;

pub use config::{ConfigError, SimConfig, StopCondition, ThreadSpec};
pub use engine::{stream_seed, Engine};
pub use par::{lookahead, run_par, ParOptions};
pub use routing::DestChooser;
pub use runner::{
    run, run_paired, run_paired_until, run_replications, run_replications_with, run_traced,
    run_until_precision, run_with_scheduler, MeanCi, Replications,
};
pub use sched::{BinaryHeapQueue, CalendarQueue, EventQueue, Keyed, Scheduler};
pub use stats::{NodeSummary, SimReport, TimeWeighted, Welford};
pub use validate::{assert_model_matches_sim, Validation};
