//! Pending-event schedulers: the priority queue at the heart of the engine.
//!
//! The event loop pops the globally earliest event on every iteration, so for
//! large machines the scheduler *is* the hot path. Two implementations sit
//! behind the [`EventQueue`] trait:
//!
//! * [`BinaryHeapQueue`] — `std::collections::BinaryHeap`, `O(log n)` per
//!   operation. Simple and allocation-friendly; kept selectable (see
//!   [`Scheduler`]) as the reference implementation for differential tests.
//! * [`CalendarQueue`] — a bucketed time wheel after Brown's calendar queue
//!   (CACM 31(10), 1988), `O(1)` amortized per operation. This is the
//!   default. The design and resize policy are documented in DESIGN.md §4.
//!
//! Both orderings are **total and identical**: events pop in ascending
//! `(time, seq)` order, where `seq` is a unique tie-break key (the engine
//! packs the creating node and its per-node event counter into it). Equal-
//! time events therefore pop in one fixed deterministic order and a
//! simulation run is bit-reproducible regardless of the scheduler — the
//! property the differential proptests in `tests/differential.rs` pin down.
//!
//! # Example
//!
//! ```
//! use lopc_sim::sched::{CalendarQueue, EventQueue, Keyed};
//!
//! /// A minimal scheduled item: fire time plus insertion sequence.
//! struct Timer {
//!     at: f64,
//!     seq: u64,
//! }
//! impl Keyed for Timer {
//!     fn time(&self) -> f64 {
//!         self.at
//!     }
//!     fn seq(&self) -> u64 {
//!         self.seq
//!     }
//! }
//!
//! let mut q = CalendarQueue::new();
//! q.push(Timer { at: 30.0, seq: 1 });
//! q.push(Timer { at: 10.0, seq: 2 });
//! q.push(Timer { at: 10.0, seq: 3 }); // same time: FIFO by seq
//! let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|t| t.seq).collect();
//! assert_eq!(order, [2, 3, 1]);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::config::Time;

/// Scheduler selection for an [`Engine`](crate::Engine).
///
/// `Scheduler::default()` is the calendar queue; `Engine::new` however picks
/// *adaptively* via [`Scheduler::auto_for`] because the heap wins outright
/// on small machines (§9 baselines: ~1.5× at ≤ 32 pending events). Both
/// remain explicitly selectable so differential tests (and sceptical users)
/// can cross-check that both produce identical simulations — see
/// [`crate::runner::run_with_scheduler`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Bucketed calendar queue, `O(1)` amortized (the default).
    #[default]
    Calendar,
    /// `std::collections::BinaryHeap`, `O(log n)` — the reference.
    BinaryHeap,
}

/// Largest steady-state pending-event population at which the binary heap
/// still beats the calendar queue end to end (committed `BENCH_sim.json`
/// baseline: heap ~1.5× faster at `P ≤ 32`, calendar ~2× faster at
/// `P = 1024`; the break-even sits at a few dozen pending events).
pub const ADAPTIVE_HEAP_MAX_PENDING: usize = 32;

impl Scheduler {
    /// Adaptive choice from an estimate of the steady-state pending-event
    /// population (for the engine: `P × fanout`, see
    /// [`SimConfig::pending_hint`](crate::config::SimConfig::pending_hint)).
    ///
    /// At or below [`ADAPTIVE_HEAP_MAX_PENDING`] pending events the wheel's
    /// bucket scanning overhead dominates and the heap is faster; above it
    /// the calendar queue's `O(1)` amortized operations win. The choice
    /// never affects results — schedulers are observationally equivalent —
    /// only speed.
    pub fn auto_for(pending_hint: usize) -> Scheduler {
        if pending_hint <= ADAPTIVE_HEAP_MAX_PENDING {
            Scheduler::BinaryHeap
        } else {
            Scheduler::Calendar
        }
    }

    /// Adaptive choice for one of `n_lps` logical processes sharing the
    /// machine-wide pending population: each per-LP queue holds roughly
    /// `pending_hint / n_lps` events, so the crossover is evaluated on that
    /// share (rounded up — an over-estimate can only pick the calendar
    /// queue earlier, which degrades gracefully). `n_lps <= 1` is exactly
    /// [`Scheduler::auto_for`].
    pub fn auto_for_lp(pending_hint: usize, n_lps: usize) -> Scheduler {
        Scheduler::auto_for(pending_hint.div_ceil(n_lps.max(1)))
    }
}

/// A schedulable item: a fire time plus a unique sequence number used to
/// break ties deterministically.
///
/// The engine guarantees `seq` values are unique; queue behaviour is
/// unspecified (but memory-safe) if two live items share a `seq`.
pub trait Keyed {
    /// When the item fires. Must be finite.
    fn time(&self) -> Time;
    /// Unique tie-break key; items sharing a time pop in ascending `seq`.
    fn seq(&self) -> u64;
}

#[inline]
fn key<T: Keyed>(item: &T) -> (Time, u64) {
    (item.time(), item.seq())
}

#[inline]
fn key_less<T: Keyed>(a: &T, b: &T) -> bool {
    key(a) < key(b)
}

/// A pending-event set popping items in ascending `(time, seq)` order.
///
/// See the [module docs](self) for the implementations and a usage example.
pub trait EventQueue<T: Keyed> {
    /// Insert an item.
    fn push(&mut self, item: T);
    /// Remove and return the item with the smallest `(time, seq)` key.
    fn pop(&mut self) -> Option<T>;
    /// Number of pending items.
    fn len(&self) -> usize;
    /// True when no items are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Binary heap reference implementation
// ---------------------------------------------------------------------------

/// Min-wrapper giving `BinaryHeap` (a max-heap) ascending `(time, seq)` pops.
struct MinEntry<T>(T);

impl<T: Keyed> PartialEq for MinEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        key(&self.0) == key(&other.0)
    }
}
impl<T: Keyed> Eq for MinEntry<T> {}
impl<T: Keyed> PartialOrd for MinEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Keyed> Ord for MinEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the max-heap's "largest" is our smallest key.
        key(&other.0).partial_cmp(&key(&self.0)).unwrap()
    }
}

/// The `O(log n)` reference scheduler: a thin wrapper over
/// `std::collections::BinaryHeap`.
#[derive(Default)]
pub struct BinaryHeapQueue<T> {
    heap: BinaryHeap<MinEntry<T>>,
}

impl<T: Keyed> BinaryHeapQueue<T> {
    /// New empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T: Keyed> EventQueue<T> for BinaryHeapQueue<T> {
    fn push(&mut self, item: T) {
        self.heap.push(MinEntry(item));
    }

    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.0)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// Smallest bucket count the wheel will shrink to.
const MIN_BUCKETS: usize = 8;
/// Consecutive head gaps sampled when estimating the bucket width.
const WIDTH_SAMPLE: usize = 256;
/// Year-empty jumps tolerated before a corrective rebuild (the width is
/// clearly mis-tuned if whole years keep coming up empty).
const MAX_JUMPS: u32 = 8;
/// Target items per bucket. Occupancy ~1 (Brown's original geometry)
/// maximizes bucket-count memory traffic; packing a few items per bucket
/// keeps each pop/push touching one short, cache-resident `Vec` instead.
const OCCUPANCY: usize = 4;
/// Bucket width in units of the mean head gap. With [`OCCUPANCY`] items per
/// bucket this keeps one year ≈ 3× the live-event span, so in-order pushes
/// land on the wheel rather than in the overflow list.
const WIDTH_GAPS: f64 = 12.0;
/// Years ahead of the position an item may be parked in the wheel before it
/// is exiled to the overflow list. Parked items cost nothing until their
/// year comes up (the slot-match rule skips them), whereas overflow inserts
/// memmove a sorted `Vec` — so the overflow should only catch genuinely
/// far-future events (several× the live-event span ahead).
const FAR_YEARS: u64 = 4;

/// Appended items tolerated before a bucket visit falls back to a full sort
/// instead of binary-inserting each one into the sorted prefix.
const SORT_APPENDIX: usize = 8;

/// One wheel bucket: items plus the lazy-sort watermark (kept in the same
/// struct so a pop touches one cache line for both).
///
/// `items[..sorted_len]` is sorted descending by `(time, seq)`;
/// `items[sorted_len..]` is an unsorted appendix of recent pushes. Pushes
/// are therefore always `O(1)` appends; the next pop visit folds the
/// appendix in — binary-inserting a few items, or running one full sort
/// when a bulk load (rebuild, overflow drain, a freshly refilled bucket)
/// left a large appendix. This keeps the engine's push-pop interleaving on
/// the current slot from re-sorting a long bucket on every pop.
struct Bucket<T> {
    items: Vec<T>,
    /// Length of the sorted-descending prefix.
    sorted_len: usize,
}

impl<T> Default for Bucket<T> {
    fn default() -> Self {
        Bucket {
            items: Vec::new(),
            sorted_len: 0,
        }
    }
}

impl<T: Keyed> Bucket<T> {
    /// Fold the unsorted appendix into the sorted prefix.
    #[inline]
    fn ensure_sorted(&mut self) {
        let n = self.items.len();
        if self.sorted_len >= n {
            return;
        }
        if self.sorted_len == 0 || n - self.sorted_len > SORT_APPENDIX {
            self.items
                .sort_unstable_by(|a, b| key(b).partial_cmp(&key(a)).unwrap());
        } else {
            for i in self.sorted_len..n {
                let pos = self.items[..i].partition_point(|x| key_less(&self.items[i], x));
                self.items[pos..=i].rotate_right(1);
            }
        }
        self.sorted_len = n;
    }
}

/// `O(1)`-amortized calendar queue: a circular bucketed time wheel with
/// dynamic resize and a sorted overflow list for far-future events
/// (Brown 1988).
///
/// Time is discretized into *slots* of `width` each; slot `s` maps to wheel
/// bucket `s mod nbuckets`, so the wheel is circular and one "year" is
/// `nbuckets · width` long. Invariants (full design discussion in
/// DESIGN.md §4):
///
/// * every pending item in the wheel has `slot ≥ cur_slot` (the current
///   position); buckets are **lazily sorted** via a sorted-prefix watermark
///   (`Bucket`): pushes append in `O(1)`, and a pop visit folds the
///   appendix in before popping the bucket minimum from the tail — so
///   tie-heavy schedules (constant service times produce many simultaneous
///   events) cost `O(b log b)` per bucket, not `O(b²)`;
/// * an item only pops when its exact slot comes up (`slot == cur_slot`),
///   which keeps items from later years parked in their bucket without
///   breaking the global order;
/// * items more than `FAR_YEARS` years ahead of `cur_slot` at insertion
///   time go to `overflow`, kept sorted *ascending* (far-future pushes
///   append in `O(1)`); the cached `overflow_min_slot` guard drains the
///   overflow head back into the wheel before the position can pass it;
/// * if a whole year scans empty, the position *jumps* straight to the
///   earliest pending slot; `MAX_JUMPS` consecutive jumps trigger a
///   corrective rebuild (the width no longer matches the event spacing);
/// * the wheel **rebuilds** — bucket count re-sized to the population
///   (targeting `OCCUPANCY` items per bucket for cache locality), width
///   re-estimated from the mean nonzero gap of the up-to-256 earliest items
///   (Brown's rule, scaled to the occupancy target) — when the population
///   doubles or quarters relative to the bucket capacity.
///
/// Rebuilds cost `O(n log n)` but only occur on population doublings/
/// quarterings or persistent mis-tuning, so the amortized per-operation cost
/// stays constant. Pops follow ascending `(time, seq)` exactly, matching
/// [`BinaryHeapQueue`] item for item; times must be non-negative and finite.
pub struct CalendarQueue<T> {
    /// Wheel buckets (`slot & mask`), lazily sorted within a bucket.
    buckets: Vec<Bucket<T>>,
    /// `nbuckets − 1` (bucket count is a power of two).
    mask: usize,
    /// Bucket width in time units; `inv_width = 1/width` is cached because
    /// the slot computation is on the hot path.
    width: Time,
    inv_width: Time,
    /// Current position: the slot the next pop scans first.
    cur_slot: u64,
    /// Items beyond one year of `cur_slot`, sorted ascending by `(t, seq)`.
    overflow: Vec<T>,
    /// Slot of `overflow`'s head (`u64::MAX` when empty), checked every pop.
    overflow_min_slot: u64,
    /// Items currently in the wheel (`len - overflow.len()`).
    wheel_len: usize,
    /// Total pending items.
    len: usize,
    /// Consecutive pops that needed a year-empty jump (mis-tuning
    /// detector); reset by a pop that finds its item without jumping and by
    /// every rebuild.
    jumps: u32,
}

impl<T: Keyed> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Keyed> CalendarQueue<T> {
    /// New empty queue with the minimum wheel size; the wheel re-sizes
    /// itself as the population grows.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::default()).collect(),
            mask: MIN_BUCKETS - 1,
            width: 1.0,
            inv_width: 1.0,
            cur_slot: 0,
            overflow: Vec::new(),
            overflow_min_slot: u64::MAX,
            wheel_len: 0,
            len: 0,
            jumps: 0,
        }
    }

    /// Discrete slot of a timestamp. Saturates on overflow; times are
    /// non-negative by contract.
    #[inline]
    fn slot_of(&self, t: Time) -> u64 {
        debug_assert!(t >= 0.0, "event times must be non-negative");
        (t * self.inv_width) as u64
    }

    /// First slot that is too far in the future to park in the wheel.
    #[inline]
    fn far_horizon(&self) -> u64 {
        self.cur_slot
            .saturating_add((self.mask as u64 + 1) * FAR_YEARS)
    }

    /// Move the overflow head run that the wheel can now reach back onto the
    /// wheel. Called through the `overflow_min_slot` guard.
    fn drain_overflow(&mut self) {
        let horizon = self.far_horizon();
        let take = self
            .overflow
            .iter()
            .take_while(|x| self.slot_of(x.time()) < horizon)
            .count();
        let rest = self.overflow.split_off(take);
        let drained = std::mem::replace(&mut self.overflow, rest);
        for item in drained {
            let idx = (self.slot_of(item.time()) & self.mask as u64) as usize;
            self.buckets[idx].items.push(item);
            self.wheel_len += 1;
        }
        self.overflow_min_slot = self
            .overflow
            .first()
            .map_or(u64::MAX, |x| self.slot_of(x.time()));
    }

    /// Jump the position straight to the earliest pending slot (wheel tails
    /// and overflow head). Only called when a whole year scanned empty.
    fn jump_to_min(&mut self) {
        self.jumps += 1;
        if self.jumps > MAX_JUMPS {
            // Persistent year-empty scans mean the width is far too small
            // for the actual event spacing (e.g. a dense head sample in an
            // otherwise sparse schedule). Widen geometrically — the boost
            // survives the rebuild's re-estimate because the rebuild takes
            // the max — so pathological schedules converge in O(log) boosts.
            self.width *= 4.0;
            self.inv_width = 1.0 / self.width;
            let items = self.drain_sorted();
            let boosted = self.width;
            self.rebuild(items, boosted);
            return;
        }
        let mut min_slot = self.overflow_min_slot;
        for b in &self.buckets {
            for item in &b.items {
                min_slot = min_slot.min(self.slot_of(item.time()));
            }
        }
        debug_assert_ne!(min_slot, u64::MAX, "jump_to_min on an empty queue");
        self.cur_slot = min_slot;
        if self.cur_slot >= self.overflow_min_slot {
            self.drain_overflow();
        }
    }

    /// Collect every pending item, ascending by key, and empty the queue.
    fn drain_sorted(&mut self) -> Vec<T> {
        let mut all: Vec<T> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.append(&mut b.items);
            b.sorted_len = 0;
        }
        all.append(&mut self.overflow);
        all.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        self.len = 0;
        self.wheel_len = 0;
        self.overflow_min_slot = u64::MAX;
        all
    }

    /// Re-anchor the queue around `items` (ascending by key): re-size the
    /// wheel to the population, re-estimate the width (never below
    /// `min_width`, which carries `jump_to_min`'s geometric boost), and
    /// redistribute.
    fn rebuild(&mut self, items: Vec<T>, min_width: Time) {
        let n = items.len();
        let nbuckets = (n / OCCUPANCY).next_power_of_two().max(MIN_BUCKETS);
        for b in &mut self.buckets {
            b.items.clear();
            b.sorted_len = 0;
        }
        if nbuckets != self.buckets.len() {
            self.buckets.resize_with(nbuckets, Bucket::default);
        }
        self.mask = nbuckets - 1;
        self.jumps = 0;

        // Width heuristic: Brown's rule over the *distinct* times of the
        // earliest items — `WIDTH_GAPS` mean nonzero gaps per bucket.
        // Counting tied timestamps as gaps would collapse the width toward
        // zero on lattice-like schedules (constant service times produce
        // many simultaneous events), spreading the population over millions
        // of empty slots. All-tied (or singleton) samples keep the previous
        // width — any positive value works when every item shares one slot.
        let mut distinct_steps = 0u32;
        let mut span = 0.0;
        for w in items.windows(2).take(WIDTH_SAMPLE) {
            if w[1].time() > w[0].time() {
                distinct_steps += 1;
            }
            span = w[1].time() - items[0].time();
        }
        if distinct_steps > 0 && span > 0.0 {
            let estimate = WIDTH_GAPS * span / distinct_steps as Time;
            self.width = estimate.max(min_width);
            self.inv_width = 1.0 / self.width;
        } else if min_width > self.width {
            self.width = min_width;
            self.inv_width = 1.0 / self.width;
        }
        debug_assert!(self.width > 0.0 && self.width.is_finite());

        self.len = n;
        self.wheel_len = 0;
        self.overflow.clear();
        self.overflow_min_slot = u64::MAX;
        self.cur_slot = items.first().map_or(0, |x| self.slot_of(x.time()));
        let horizon = self.far_horizon();
        for item in items {
            let slot = self.slot_of(item.time());
            if slot >= horizon {
                // Source order is ascending, so appends keep the overflow
                // sorted ascending.
                self.overflow.push(item);
            } else {
                let idx = (slot & self.mask as u64) as usize;
                // Ascending arrival order leaves the bucket sorted the wrong
                // way round; the first pop visit sorts it.
                self.buckets[idx].items.push(item);
                self.wheel_len += 1;
            }
        }
        self.overflow_min_slot = self
            .overflow
            .first()
            .map_or(u64::MAX, |x| self.slot_of(x.time()));
    }

    /// Grow or shrink the wheel when the population has drifted far from the
    /// bucket count (amortized-`O(1)` resize policy; DESIGN.md §4).
    #[inline]
    fn maybe_resize(&mut self) {
        let nb = self.mask + 1;
        if self.len > 2 * OCCUPANCY * nb || (nb > MIN_BUCKETS && self.len < OCCUPANCY * nb / 4) {
            let items = self.drain_sorted();
            self.rebuild(items, 0.0);
        }
    }
}

impl<T: Keyed> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, item: T) {
        let t = item.time();
        debug_assert!(t.is_finite(), "event time must be finite");
        let slot = self.slot_of(t);
        if self.len == 0 {
            // Empty queue: re-anchor the position so `t` lands on the wheel.
            self.cur_slot = slot;
        } else if slot < self.cur_slot {
            // A push behind the current position (the engine never schedules
            // into the past, but the queue is usable generically): rewind.
            // Wheel items pushed beyond one year of the new position stay
            // parked in their buckets; the slot-match rule keeps them in
            // order.
            self.cur_slot = slot;
        }
        if slot >= self.far_horizon() {
            let pos = self.overflow.partition_point(|x| key_less(x, &item));
            self.overflow.insert(pos, item);
            self.overflow_min_slot = self.overflow_min_slot.min(slot);
        } else {
            let idx = (slot & self.mask as u64) as usize;
            self.buckets[idx].items.push(item);
            self.wheel_len += 1;
        }
        self.len += 1;
        self.maybe_resize();
    }

    fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            // Everything pending is far-future: jump straight to it.
            self.cur_slot = self.overflow_min_slot;
            self.drain_overflow();
        }
        let nbuckets = self.mask + 1;
        let mut scanned = 0usize;
        // Whether this pop needed a year-empty jump: consecutive *jumping
        // pops* are what the MAX_JUMPS mis-tuning valve counts, so the
        // counter only resets on a pop that found its item without jumping
        // (or on a rebuild).
        let mut jumped = false;
        loop {
            // Never let the position pass the overflow head.
            if self.cur_slot >= self.overflow_min_slot {
                self.drain_overflow();
            }
            let idx = (self.cur_slot & self.mask as u64) as usize;
            let bucket = &mut self.buckets[idx];
            // Lazy sort: the first visit after any push orders the bucket
            // descending, then the bucket minimum is the tail. Items of
            // later years stay parked above it.
            bucket.ensure_sorted();
            if let Some(tail) = bucket.items.last() {
                if (tail.time() * self.inv_width) as u64 == self.cur_slot {
                    let item = bucket.items.pop().expect("tail exists");
                    bucket.sorted_len -= 1;
                    self.wheel_len -= 1;
                    self.len -= 1;
                    if !jumped {
                        self.jumps = 0;
                    }
                    self.maybe_resize();
                    return Some(item);
                }
            }
            self.cur_slot += 1;
            scanned += 1;
            if scanned >= nbuckets {
                // A whole year was empty: the next event is further out.
                jumped = true;
                self.jump_to_min();
                scanned = 0;
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Item {
        t: f64,
        seq: u64,
    }
    impl Keyed for Item {
        fn time(&self) -> f64 {
            self.t
        }
        fn seq(&self) -> u64 {
            self.seq
        }
    }

    fn drain<Q: EventQueue<Item>>(q: &mut Q) -> Vec<(f64, u64)> {
        std::iter::from_fn(|| q.pop())
            .map(|i| (i.t, i.seq))
            .collect()
    }

    fn both_agree(items: Vec<Item>) {
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new();
        for &i in &items {
            heap.push(i);
            cal.push(i);
            assert_eq!(heap.len(), cal.len());
        }
        let a = drain(&mut heap);
        let b = drain(&mut cal);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, sorted, "pops must come out in ascending key order");
    }

    #[test]
    fn empty_pops_none() {
        let mut q: CalendarQueue<Item> = CalendarQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        let mut h: BinaryHeapQueue<Item> = BinaryHeapQueue::new();
        assert!(h.pop().is_none());
    }

    #[test]
    fn ascending_order_small() {
        both_agree(vec![
            Item { t: 30.0, seq: 1 },
            Item { t: 10.0, seq: 2 },
            Item { t: 20.0, seq: 3 },
            Item { t: 10.0, seq: 4 },
            Item { t: 0.0, seq: 5 },
        ]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let items: Vec<Item> = (0..100).map(|s| Item { t: 5.0, seq: s }).collect();
        let mut q = CalendarQueue::new();
        for &i in &items {
            q.push(i);
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|i| i.seq).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn growth_and_shrink_preserve_order() {
        // Push enough to force several grow rebuilds, then drain through the
        // shrink path.
        let mut rng = SmallRng::seed_from_u64(7);
        let items: Vec<Item> = (0..5000)
            .map(|s| Item {
                t: rng.random::<f64>() * 1e6,
                seq: s,
            })
            .collect();
        both_agree(items);
    }

    #[test]
    fn clustered_ties_and_wide_outliers() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut items = Vec::new();
        let mut seq = 0;
        for cluster in 0..50 {
            let base = cluster as f64 * 10.0;
            for _ in 0..20 {
                items.push(Item { t: base, seq });
                seq += 1;
            }
        }
        // Far-future outliers exercise the overflow list.
        for _ in 0..100 {
            items.push(Item {
                t: 1e9 + rng.random::<f64>() * 1e9,
                seq,
            });
            seq += 1;
        }
        both_agree(items);
    }

    #[test]
    fn interleaved_hold_pattern_matches_heap() {
        // The classic hold model: pop one, push one at a later time.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut heap = BinaryHeapQueue::new();
        let mut cal = CalendarQueue::new();
        let mut seq = 0u64;
        for _ in 0..256 {
            let it = Item {
                t: rng.random::<f64>() * 100.0,
                seq,
            };
            seq += 1;
            heap.push(it);
            cal.push(it);
        }
        for _ in 0..10_000 {
            let a = heap.pop().unwrap();
            let b = cal.pop().unwrap();
            assert_eq!((a.t, a.seq), (b.t, b.seq));
            let it = Item {
                t: a.t + rng.random::<f64>() * 50.0,
                seq,
            };
            seq += 1;
            heap.push(it);
            cal.push(it);
        }
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    #[test]
    fn push_behind_window_start_is_handled() {
        let mut q = CalendarQueue::new();
        q.push(Item { t: 1000.0, seq: 0 });
        q.push(Item { t: 2000.0, seq: 1 });
        assert_eq!(q.pop().unwrap().seq, 0);
        // Earlier than everything ever seen (generic use; the engine never
        // schedules into the past).
        q.push(Item { t: 1.0, seq: 2 });
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = CalendarQueue::new();
        for s in 0..1000u64 {
            q.push(Item {
                t: (s % 37) as f64,
                seq: s,
            });
            assert_eq!(q.len(), s as usize + 1);
        }
        for s in (0..1000usize).rev() {
            q.pop().unwrap();
            assert_eq!(q.len(), s);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn reuse_after_drain() {
        let mut q = CalendarQueue::new();
        q.push(Item { t: 5.0, seq: 0 });
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        // The window re-anchors on the next push even at a far time.
        q.push(Item { t: 1e12, seq: 1 });
        assert_eq!(q.pop().unwrap().seq, 1);
    }

    #[test]
    fn scheduler_default_is_calendar() {
        assert_eq!(Scheduler::default(), Scheduler::Calendar);
    }

    /// Pins the adaptive crossover policy: the heap up to (and including)
    /// `ADAPTIVE_HEAP_MAX_PENDING` pending events, the calendar queue above.
    #[test]
    fn adaptive_crossover_policy() {
        assert_eq!(ADAPTIVE_HEAP_MAX_PENDING, 32);
        assert_eq!(Scheduler::auto_for(0), Scheduler::BinaryHeap);
        assert_eq!(Scheduler::auto_for(1), Scheduler::BinaryHeap);
        assert_eq!(Scheduler::auto_for(32), Scheduler::BinaryHeap);
        assert_eq!(Scheduler::auto_for(33), Scheduler::Calendar);
        assert_eq!(Scheduler::auto_for(1024), Scheduler::Calendar);
    }

    /// Pins the per-LP crossover: the hint each LP sees is its *share* of
    /// the machine-wide pending population, rounded up. 64 events over 2
    /// LPs is 32 per LP — exactly the heap's limit — while 66 over 2 is 33
    /// and tips to the calendar queue; a lone LP degenerates to `auto_for`.
    #[test]
    fn adaptive_crossover_accounts_for_lp_share() {
        assert_eq!(
            Scheduler::auto_for_lp(64, 2),
            Scheduler::BinaryHeap,
            "64/2 = 32 pending per LP stays on the heap"
        );
        assert_eq!(
            Scheduler::auto_for_lp(66, 2),
            Scheduler::Calendar,
            "66/2 = 33 pending per LP crosses over"
        );
        // Rounding is up: 65/2 -> 33, not 32.
        assert_eq!(Scheduler::auto_for_lp(65, 2), Scheduler::Calendar);
        // Large machine, many LPs: the per-LP share is what matters.
        assert_eq!(Scheduler::auto_for_lp(256, 8), Scheduler::BinaryHeap);
        assert_eq!(Scheduler::auto_for_lp(1024, 8), Scheduler::Calendar);
        // Degenerate cases mirror auto_for.
        for hint in [0, 1, 32, 33, 1024] {
            assert_eq!(Scheduler::auto_for_lp(hint, 1), Scheduler::auto_for(hint));
            assert_eq!(Scheduler::auto_for_lp(hint, 0), Scheduler::auto_for(hint));
        }
    }

    // -----------------------------------------------------------------
    // Calendar-queue edge cases not reachable through the differential
    // suite's random interleavings.
    // -----------------------------------------------------------------

    /// A population-driven rebuild while every pending item sits in the
    /// overflow list (the wheel itself empty): `drain_sorted` over empty
    /// buckets plus `rebuild` re-anchoring from overflow-only items.
    #[test]
    fn resize_with_all_items_in_overflow() {
        let mut q = CalendarQueue::new();
        // Anchor the position at slot 0 (width 1.0, 8 buckets, horizon 32).
        q.push(Item { t: 0.0, seq: 0 });
        // Far-future items beyond FAR_YEARS years: all exiled to overflow.
        for s in 1..=64u64 {
            q.push(Item {
                t: 1_000.0 + s as f64,
                seq: s,
            });
            if s < 64 {
                assert!(
                    !q.overflow.is_empty(),
                    "far-future items must sit in overflow before the resize"
                );
            }
        }
        // The 65th push crossed the grow threshold (len > 2·OCCUPANCY·8):
        // the rebuild redistributed the overflow onto a larger wheel.
        assert!(q.buckets.len() > MIN_BUCKETS, "grow rebuild must have run");
        let popped = drain(&mut q);
        let mut expected: Vec<(f64, u64)> = (1..=64u64).map(|s| (1_000.0 + s as f64, s)).collect();
        expected.insert(0, (0.0, 0));
        assert_eq!(popped, expected);
    }

    /// Popping when the wheel is empty but the overflow is not: the position
    /// must jump straight to the overflow head and drain it, not scan years
    /// of empty buckets.
    #[test]
    fn pop_from_overflow_only_queue() {
        let mut q = CalendarQueue::new();
        q.push(Item { t: 0.0, seq: 0 });
        q.push(Item { t: 1e6, seq: 1 });
        q.push(Item { t: 2e6, seq: 2 });
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.wheel_len, 0, "remaining items should all be far-future");
        assert!(!q.overflow.is_empty());
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
    }

    /// The overflow min-slot guard: a later push *in front of* the existing
    /// overflow head must update the cached guard slot, or the position
    /// could sail past the new head and pop out of order.
    #[test]
    fn overflow_min_slot_guard_tracks_new_head() {
        let mut q = CalendarQueue::new();
        q.push(Item { t: 0.0, seq: 0 });
        q.push(Item { t: 4e6, seq: 1 }); // overflow head
        let slot_before = q.overflow_min_slot;
        q.push(Item { t: 2e6, seq: 2 }); // new, earlier overflow head
        assert!(
            q.overflow_min_slot < slot_before,
            "guard must move with the new head"
        );
        // And a push behind the *wheel* horizon but ahead of the position
        // leaves the guard alone while keeping global order.
        q.push(Item { t: 1.0, seq: 3 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|i| i.seq).collect();
        assert_eq!(order, [0, 3, 2, 1]);
    }

    /// The jump + width-boost safety valve: a schedule whose every pop needs
    /// a year-empty jump (events spaced several wheel-years apart at the
    /// current width) must trigger the corrective `×4` width boost after
    /// `MAX_JUMPS` consecutive jumping pops, after which pops stop jumping —
    /// and the order contract holds throughout.
    #[test]
    fn jump_width_boost_safety_valve() {
        let mut q = CalendarQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let width0 = q.width;
        // Hold pattern that never lets the queue empty (an empty queue
        // re-anchors the position on push, which gives the next pop a free
        // non-jumping hit and resets the counter): two items stay resident,
        // each new item ~1.5 wheel-years beyond the last, so every pop after
        // the first scans an empty year and jumps. The population is far
        // below any resize threshold, so only the valve can retune the
        // width.
        let year = (MIN_BUCKETS as f64) * width0;
        let mut t = 0.0;
        let mut seq = 0u64;
        let mut push_next = |q: &mut CalendarQueue<Item>, heap: &mut BinaryHeapQueue<Item>| {
            t += 1.5 * year;
            let it = Item { t, seq };
            seq += 1;
            q.push(it);
            heap.push(it);
        };
        push_next(&mut q, &mut heap);
        push_next(&mut q, &mut heap);
        let mut max_jumps_seen = 0;
        let mut boosted = false;
        for _ in 0..4 * (MAX_JUMPS as usize + 1) {
            let a = q.pop().unwrap();
            let b = heap.pop().unwrap();
            assert_eq!((a.t, a.seq), (b.t, b.seq), "order must survive boosts");
            push_next(&mut q, &mut heap);
            max_jumps_seen = max_jumps_seen.max(q.jumps);
            if q.width > width0 {
                boosted = true;
            }
        }
        assert!(
            max_jumps_seen > 0,
            "the pattern must actually provoke year-empty jumps"
        );
        assert!(
            boosted,
            "persistent jumping must trigger the width boost (width stayed {})",
            q.width
        );
        // After the boost converges, items land within a year of the
        // position: the final width spans the 1.5-year-at-width0 gap.
        assert!(q.width >= 4.0 * width0);
    }

    /// Consecutive-jump bookkeeping: a pop that finds its item without
    /// jumping resets the mis-tuning counter.
    #[test]
    fn non_jumping_pop_resets_jump_counter() {
        let mut q = CalendarQueue::new();
        let year = (MIN_BUCKETS as f64) * q.width;
        // One far item forces a jumping pop...
        q.push(Item { t: 0.0, seq: 0 });
        q.push(Item {
            t: 2.0 * year,
            seq: 1,
        });
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert!(q.jumps > 0, "the far pop should have jumped");
        // ...then two adjacent items pop without scanning a whole year.
        q.push(Item {
            t: 2.0 * year + 1.0,
            seq: 2,
        });
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.jumps, 0, "a clean pop must reset the counter");
    }

    /// Shrink at low occupancy: drain a large population down to a handful
    /// of stragglers and verify the wheel contracts (the parallel engine's
    /// per-LP queues live near this regime — a few events per LP), while
    /// the survivors still pop in key order.
    #[test]
    fn shrink_at_low_occupancy_preserves_order_and_contracts() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut q = CalendarQueue::new();
        for s in 0..4096u64 {
            q.push(Item {
                t: rng.random::<f64>() * 1e5,
                seq: s,
            });
        }
        let grown = q.buckets.len();
        assert!(grown > MIN_BUCKETS, "4096 items must grow the wheel");
        // Pop down to 3 stragglers: crosses len < OCCUPANCY·nb/4 repeatedly.
        let mut last = (f64::NEG_INFINITY, 0u64);
        while q.len() > 3 {
            let it = q.pop().unwrap();
            assert!((it.t, it.seq) > last, "order violated during shrink");
            last = (it.t, it.seq);
        }
        assert!(
            q.buckets.len() < grown,
            "wheel must shrink back toward MIN_BUCKETS (now {})",
            q.buckets.len()
        );
        let rest = drain(&mut q);
        assert_eq!(rest.len(), 3);
        assert!(rest.windows(2).all(|w| w[0] < w[1]));
    }

    /// Tie-heavy width estimation: when the rebuild's width sample is
    /// dominated by tied timestamps (constant service times produce exactly
    /// this), the estimate must count *distinct* gaps only — a zero or
    /// collapsed width would exile everything to overflow or spin on empty
    /// buckets. Drain order must match the heap regardless.
    #[test]
    fn tie_heavy_width_estimation_stays_positive() {
        // 64 distinct times, 16-way tied each: crosses the grow threshold
        // with a width sample that is 15/16 ties.
        let mut items = Vec::new();
        let mut seq = 0;
        for step in 0..64 {
            for _ in 0..16 {
                items.push(Item {
                    t: step as f64 * 3.0,
                    seq,
                });
                seq += 1;
            }
        }
        let mut q = CalendarQueue::new();
        for &i in &items {
            q.push(i);
        }
        assert!(
            q.width.is_finite() && q.width > 0.0,
            "tie-heavy rebuild collapsed the width to {}",
            q.width
        );
        both_agree(items);

        // Degenerate: every single item at one timestamp (distinct_steps ==
        // 0 keeps the previous width, any positive value works).
        let all_tied: Vec<Item> = (0..512).map(|s| Item { t: 7.0, seq: s }).collect();
        let mut q = CalendarQueue::new();
        for &i in &all_tied {
            q.push(i);
        }
        assert!(q.width.is_finite() && q.width > 0.0);
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|i| i.seq).collect();
        assert_eq!(seqs, (0..512).collect::<Vec<_>>(), "ties pop in seq order");
    }
}
