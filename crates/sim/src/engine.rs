//! The discrete-event engine: nodes, messages, handlers, and the event loop.
//!
//! Semantics implemented (Chapter 2 of the thesis, and the model/simulator
//! contract recorded in DESIGN.md §5):
//!
//! * Sending a message is free; it arrives exactly `St` later (contention-
//!   free network).
//! * An arriving message **interrupts** a computing thread immediately
//!   (preempt-resume); remaining work is banked and resumed later.
//! * Handlers are **atomic**: arrivals during a handler wait in an infinite
//!   FIFO. When a handler completes, queued messages run **before** the
//!   computation thread resumes.
//! * A request handler either forwards the request (multi-hop) or sends the
//!   reply to the originator; a reply handler unblocks the local thread and
//!   ends the cycle.
//! * With `protocol_processor = true`, handlers run on a per-node coprocessor
//!   and never interrupt computation (§5.1 "Modeling Shared Memory").

use std::collections::VecDeque;

use crate::config::{ConfigError, NodeId, SimConfig, StopCondition, Time};
use crate::sched::{BinaryHeapQueue, CalendarQueue, EventQueue, Keyed, Scheduler};
use crate::stats::{Aggregate, NodeStats, NodeSummary, SimReport, Welford};
use lopc_dist::Distribution;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Message kind: requests travel origin → server(s); the final server turns
/// the message into a reply back to the origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MsgKind {
    Request,
    Reply,
}

/// A message in flight or queued. Cycle-level bookkeeping lives on the
/// origin node (a fork-join cycle owns several messages at once); the
/// message itself carries only per-request state.
#[derive(Clone, Debug)]
struct Msg {
    kind: MsgKind,
    origin: NodeId,
    /// Handler visits remaining *after* the current one (multi-hop).
    hops_left: u32,
    /// Accumulated request-handler response time over all hops (`Rq`).
    rq_sum: f64,
    /// Arrival time at the node currently holding the message.
    arrived_at: Time,
}

/// CPU occupancy of a node.
#[derive(Clone, Copy, Debug)]
enum Cpu {
    Idle,
    /// Running a (non-preemptible) handler.
    Handler,
    /// Running the computation thread; completion is the event carrying
    /// `token`, invalidated by bumping the node's token on preemption.
    Compute {
        end: Time,
    },
}

/// Computation-thread state.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ThreadState {
    /// Has `remaining` work to do but the CPU is busy with handlers.
    Ready { remaining: f64 },
    /// Currently computing (CPU is `Compute`).
    Running,
    /// Request outstanding; spinning (interruptible at zero cost).
    Blocked,
    /// Finished its cycle quota (makespan mode).
    Done,
    /// A pure server: never computes, never requests.
    Absent,
}

/// Per-node state.
#[derive(Debug)]
struct Node {
    cpu: Cpu,
    thread: ThreadState,
    fifo: VecDeque<Msg>,
    in_service: Option<Msg>,
    // Protocol-processor state (used only when cfg.protocol_processor).
    pp_busy: bool,
    pp_fifo: VecDeque<Msg>,
    pp_in_service: Option<Msg>,
    // Cycle bookkeeping.
    t_cycle_start: Time,
    /// When this cycle's requests were injected.
    t_sent: Time,
    /// Replies still outstanding in the current fork-join cycle.
    outstanding: u32,
    /// Accumulated request-handler response over the cycle's requests.
    cyc_rq: f64,
    /// Accumulated reply-handler response over the cycle's replies.
    cyc_ry: f64,
    cycles_done: u64,
    compute_token: u64,
    /// Round-robin cursor for deterministic destination choosers.
    rr: usize,
    stats: NodeStats,
}

impl Node {
    fn new() -> Self {
        Node {
            cpu: Cpu::Idle,
            thread: ThreadState::Absent,
            fifo: VecDeque::new(),
            in_service: None,
            pp_busy: false,
            pp_fifo: VecDeque::new(),
            pp_in_service: None,
            t_cycle_start: 0.0,
            t_sent: 0.0,
            outstanding: 0,
            cyc_rq: 0.0,
            cyc_ry: 0.0,
            cycles_done: 0,
            compute_token: 0,
            rr: 0,
            stats: NodeStats::new(),
        }
    }
}

/// Event payload.
#[derive(Debug)]
enum EvKind {
    Arrive(Msg),
    HandlerDone,
    PpHandlerDone,
    ComputeDone { token: u64 },
    WarmupReset,
}

/// A scheduled event; ordered by `(time, seq)` so simultaneous events retain
/// FIFO scheduling order and runs are bit-reproducible.
#[derive(Debug)]
struct Ev {
    t: Time,
    seq: u64,
    node: NodeId,
    kind: EvKind,
}

impl Keyed for Ev {
    fn time(&self) -> Time {
        self.t
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// The engine's pending-event set: one of the [`Scheduler`] implementations,
/// dispatched by match so the hot loop pays no virtual-call cost.
enum PendingEvents {
    Calendar(CalendarQueue<Ev>),
    Heap(BinaryHeapQueue<Ev>),
}

impl PendingEvents {
    fn new(scheduler: Scheduler) -> Self {
        match scheduler {
            Scheduler::Calendar => PendingEvents::Calendar(CalendarQueue::new()),
            Scheduler::BinaryHeap => PendingEvents::Heap(BinaryHeapQueue::new()),
        }
    }

    fn kind(&self) -> Scheduler {
        match self {
            PendingEvents::Calendar(_) => Scheduler::Calendar,
            PendingEvents::Heap(_) => Scheduler::BinaryHeap,
        }
    }

    #[inline]
    fn push(&mut self, ev: Ev) {
        match self {
            PendingEvents::Calendar(q) => q.push(ev),
            PendingEvents::Heap(q) => q.push(ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Ev> {
        match self {
            PendingEvents::Calendar(q) => q.pop(),
            PendingEvents::Heap(q) => q.pop(),
        }
    }
}

/// The simulation engine. Construct with [`Engine::new`], then call
/// [`Engine::run_to_completion`] (or use the [`crate::run`] convenience).
pub struct Engine {
    cfg: SimConfig,
    now: Time,
    seq: u64,
    queue: PendingEvents,
    nodes: Vec<Node>,
    rng: SmallRng,
    events: u64,
    /// Cycles recorded only when they *start* at or after this time.
    warmup: Time,
    /// Horizon end (None in makespan mode).
    horizon_end: Option<Time>,
    /// Per-thread cycle quota (None in horizon mode).
    max_cycles: Option<u64>,
    /// Active threads not yet `Done` (makespan mode termination).
    active_remaining: usize,
    makespan: Time,
    /// When `Some`, measured cycles append their response time here in
    /// completion order (see [`Engine::with_cycle_trace`]).
    trace: Option<Vec<f64>>,
}

impl Engine {
    /// Build an engine for a validated configuration, picking the
    /// pending-event scheduler adaptively from the configuration's
    /// steady-state event population ([`Scheduler::auto_for`] over
    /// [`SimConfig::pending_hint`]): the binary heap for small machines,
    /// the calendar queue for large ones.
    ///
    /// The choice never affects results — schedulers are observationally
    /// equivalent (enforced by the differential tests) — only speed. The
    /// `LOPC_TEST_SCHEDULER` environment variable (`calendar` / `heap`)
    /// overrides the adaptive choice for CI matrix runs; use
    /// [`Engine::with_scheduler`] to pin one programmatically.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        let scheduler = crate::validate::env_scheduler()
            .unwrap_or_else(|| Scheduler::auto_for(cfg.pending_hint()));
        Self::with_scheduler(cfg, scheduler)
    }

    /// Build an engine with an explicit pending-event [`Scheduler`].
    ///
    /// Both schedulers produce bit-identical simulations (the differential
    /// tests in `tests/differential.rs` enforce this); the binary heap is
    /// kept selectable as the reference for such cross-checks.
    pub fn with_scheduler(cfg: SimConfig, scheduler: Scheduler) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let (warmup, horizon_end, max_cycles) = match cfg.stop {
            StopCondition::Horizon { warmup, end } => (warmup, Some(end), None),
            StopCondition::CyclesPerThread { n } => (0.0, None, Some(n)),
        };
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let mut eng = Engine {
            nodes: (0..cfg.p).map(|_| Node::new()).collect(),
            now: 0.0,
            seq: 0,
            queue: PendingEvents::new(scheduler),
            rng,
            events: 0,
            warmup,
            horizon_end,
            max_cycles,
            active_remaining: cfg.active_threads(),
            makespan: 0.0,
            trace: None,
            cfg,
        };
        eng.bootstrap();
        Ok(eng)
    }

    /// Prime every active thread with its first work quantum.
    fn bootstrap(&mut self) {
        for k in 0..self.cfg.p {
            if let Some(work) = &self.cfg.threads[k].work {
                let w = work.sample(&mut self.rng);
                self.nodes[k].t_cycle_start = 0.0;
                self.nodes[k].thread = ThreadState::Ready { remaining: w };
                self.start_compute(k);
            }
        }
        if self.warmup > 0.0 {
            self.schedule(self.warmup, 0, EvKind::WarmupReset);
        }
    }

    /// Sample this message's wire time: constant `St`, or drawn from the
    /// configured latency distribution (same mean, §5.2).
    #[inline]
    fn wire_time(&mut self) -> f64 {
        match &self.cfg.latency_dist {
            None => self.cfg.net_latency,
            Some(d) => d.sample(&mut self.rng),
        }
    }

    #[inline]
    fn schedule(&mut self, t: Time, node: NodeId, kind: EvKind) {
        self.seq += 1;
        self.queue.push(Ev {
            t,
            seq: self.seq,
            node,
            kind,
        });
    }

    /// Record the per-cycle response-time series: every measured cycle
    /// (pooled over nodes, in completion order) is appended to
    /// [`SimReport::cycle_trace`]. Off by default — the trace costs one
    /// `f64` of memory per cycle, which a long horizon turns into real
    /// footprint, so only runs that feed `lopc_stats::batch_means` ask for
    /// it.
    pub fn with_cycle_trace(mut self) -> Self {
        self.trace = Some(Vec::new());
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Which pending-event scheduler this engine is running on (the adaptive
    /// choice of [`Engine::new`], or whatever [`Engine::with_scheduler`]
    /// pinned).
    pub fn scheduler(&self) -> Scheduler {
        self.queue.kind()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Run until the stop condition is reached and produce the report.
    pub fn run_to_completion(mut self) -> SimReport {
        while let Some(ev) = self.queue.pop() {
            if let Some(end) = self.horizon_end {
                if ev.t > end {
                    break;
                }
            }
            debug_assert!(ev.t >= self.now, "time went backwards");
            self.now = ev.t;
            self.events += 1;
            match ev.kind {
                EvKind::Arrive(msg) => self.on_arrive(ev.node, msg),
                EvKind::HandlerDone => self.on_handler_done(ev.node),
                EvKind::PpHandlerDone => self.on_pp_handler_done(ev.node),
                EvKind::ComputeDone { token } => self.on_compute_done(ev.node, token),
                EvKind::WarmupReset => {
                    let t = self.now;
                    for n in &mut self.nodes {
                        n.stats.reset_time_averages(t);
                    }
                }
            }
            if self.max_cycles.is_some() && self.active_remaining == 0 {
                break;
            }
        }
        self.finalize()
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrive(&mut self, k: NodeId, mut msg: Msg) {
        msg.arrived_at = self.now;
        {
            let node = &mut self.nodes[k];
            match msg.kind {
                MsgKind::Request => node.stats.nq.add(self.now, 1.0),
                MsgKind::Reply => {
                    debug_assert_eq!(msg.origin, k, "reply must arrive at its origin");
                    node.stats.ny.add(self.now, 1.0);
                }
            }
            debug_assert!(
                node.stats.ny.level() <= self.cfg.threads[k].fanout as f64,
                "a node holds at most `fanout` replies"
            );
            let depth = node.stats.nq.level() + node.stats.ny.level();
            node.stats.max_depth = node.stats.max_depth.max(depth as u64);
        }

        if self.cfg.protocol_processor {
            if self.nodes[k].pp_busy {
                self.nodes[k].pp_fifo.push_back(msg);
            } else {
                self.start_pp_handler(k, msg);
            }
            return;
        }

        match self.nodes[k].cpu {
            Cpu::Idle => self.start_handler(k, msg),
            Cpu::Handler => self.nodes[k].fifo.push_back(msg),
            Cpu::Compute { end } => {
                // Preempt-resume: bank remaining work, invalidate the pending
                // completion event, run the handler now.
                let remaining = (end - self.now).max(0.0);
                let node = &mut self.nodes[k];
                node.compute_token += 1;
                node.thread = ThreadState::Ready { remaining };
                node.stats.busy_compute.set(self.now, 0.0);
                node.cpu = Cpu::Idle;
                self.start_handler(k, msg);
            }
        }
    }

    fn start_handler(&mut self, k: NodeId, msg: Msg) {
        debug_assert!(self.nodes[k].in_service.is_none());
        let service = match msg.kind {
            MsgKind::Request => self.cfg.request_handler.sample(&mut self.rng),
            MsgKind::Reply => self.cfg.reply_handler.sample(&mut self.rng),
        };
        {
            let node = &mut self.nodes[k];
            match msg.kind {
                MsgKind::Request => node.stats.busy_req.set(self.now, 1.0),
                MsgKind::Reply => node.stats.busy_rep.set(self.now, 1.0),
            }
            node.cpu = Cpu::Handler;
            node.in_service = Some(msg);
        }
        self.schedule(self.now + service, k, EvKind::HandlerDone);
    }

    fn start_pp_handler(&mut self, k: NodeId, msg: Msg) {
        debug_assert!(self.nodes[k].pp_in_service.is_none());
        let service = match msg.kind {
            MsgKind::Request => self.cfg.request_handler.sample(&mut self.rng),
            MsgKind::Reply => self.cfg.reply_handler.sample(&mut self.rng),
        };
        {
            let node = &mut self.nodes[k];
            match msg.kind {
                MsgKind::Request => node.stats.busy_req.set(self.now, 1.0),
                MsgKind::Reply => node.stats.busy_rep.set(self.now, 1.0),
            }
            node.pp_busy = true;
            node.pp_in_service = Some(msg);
        }
        self.schedule(self.now + service, k, EvKind::PpHandlerDone);
    }

    fn on_handler_done(&mut self, k: NodeId) {
        let msg = self.nodes[k]
            .in_service
            .take()
            .expect("HandlerDone with no handler in service");
        {
            let node = &mut self.nodes[k];
            node.cpu = Cpu::Idle;
            match msg.kind {
                MsgKind::Request => {
                    node.stats.busy_req.set(self.now, 0.0);
                    node.stats.nq.add(self.now, -1.0);
                }
                MsgKind::Reply => {
                    node.stats.busy_rep.set(self.now, 0.0);
                    node.stats.ny.add(self.now, -1.0);
                }
            }
        }
        self.complete_message(k, msg);

        // CPU dispatch: queued handlers run before the thread resumes (this
        // is the interference the BKT approximation charges to Rw).
        if let Some(next) = self.nodes[k].fifo.pop_front() {
            self.start_handler(k, next);
        } else if let ThreadState::Ready { .. } = self.nodes[k].thread {
            self.start_compute(k);
        }
    }

    fn on_pp_handler_done(&mut self, k: NodeId) {
        let msg = self.nodes[k]
            .pp_in_service
            .take()
            .expect("PpHandlerDone with no handler in service");
        {
            let node = &mut self.nodes[k];
            node.pp_busy = false;
            match msg.kind {
                MsgKind::Request => {
                    node.stats.busy_req.set(self.now, 0.0);
                    node.stats.nq.add(self.now, -1.0);
                }
                MsgKind::Reply => {
                    node.stats.busy_rep.set(self.now, 0.0);
                    node.stats.ny.add(self.now, -1.0);
                }
            }
        }
        self.complete_message(k, msg);

        // The CPU never ran the handler: start the thread only if it just
        // became ready and the CPU is idle.
        if let (Cpu::Idle, ThreadState::Ready { .. }) = (self.nodes[k].cpu, self.nodes[k].thread) {
            self.start_compute(k);
        }
        if let Some(next) = self.nodes[k].pp_fifo.pop_front() {
            self.start_pp_handler(k, next);
        }
    }

    /// Shared request/reply completion logic (CPU-handler and protocol-
    /// processor paths): forward, reply, or end the origin's cycle.
    fn complete_message(&mut self, k: NodeId, mut msg: Msg) {
        match msg.kind {
            MsgKind::Request => {
                let response = self.now - msg.arrived_at;
                msg.rq_sum += response;
                if msg.arrived_at >= self.warmup {
                    let node = &mut self.nodes[k];
                    node.stats.rq_at_server.push(response);
                    node.stats.requests_served += 1;
                }
                let wire = self.wire_time();
                if msg.hops_left > 0 {
                    msg.hops_left -= 1;
                    // Forwarding hop: uniform over the other nodes, like the
                    // multi-hop patterns of Appendix A.
                    let next = crate::routing::DestChooser::UniformOther.pick(
                        k,
                        self.cfg.p,
                        &mut self.rng,
                        &mut self.nodes[k].rr,
                    );
                    self.schedule(self.now + wire, next, EvKind::Arrive(msg));
                } else {
                    msg.kind = MsgKind::Reply;
                    let origin = msg.origin;
                    self.schedule(self.now + wire, origin, EvKind::Arrive(msg));
                }
            }
            MsgKind::Reply => {
                debug_assert_eq!(msg.origin, k);
                {
                    let node = &mut self.nodes[k];
                    debug_assert!(node.outstanding > 0, "unexpected reply");
                    node.cyc_rq += msg.rq_sum;
                    node.cyc_ry += self.now - msg.arrived_at;
                    node.outstanding -= 1;
                    if node.outstanding > 0 {
                        return; // fork-join: wait for the siblings
                    }
                }
                // Last reply of the cycle: record and start the next one.
                let (r, rw, cyc_rq, cyc_ry) = {
                    let node = &self.nodes[k];
                    (
                        self.now - node.t_cycle_start,
                        node.t_sent - node.t_cycle_start,
                        node.cyc_rq,
                        node.cyc_ry,
                    )
                };
                if self.nodes[k].t_cycle_start >= self.warmup {
                    let node = &mut self.nodes[k];
                    node.stats.r.push(r);
                    node.stats.rw.push(rw);
                    node.stats.rq.push(cyc_rq);
                    node.stats.ry.push(cyc_ry);
                    node.stats.cycles += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.push(r);
                    }
                }
                self.nodes[k].cycles_done += 1;
                self.makespan = self.now;

                let quota_left = self
                    .max_cycles
                    .is_none_or(|n| self.nodes[k].cycles_done < n);
                if quota_left {
                    let w = self.cfg.threads[k]
                        .work
                        .as_ref()
                        .expect("reply arrived at a server node")
                        .sample(&mut self.rng);
                    let node = &mut self.nodes[k];
                    node.t_cycle_start = self.now;
                    node.thread = ThreadState::Ready { remaining: w };
                } else {
                    self.nodes[k].thread = ThreadState::Done;
                    self.active_remaining -= 1;
                }
            }
        }
    }

    fn start_compute(&mut self, k: NodeId) {
        let remaining = match self.nodes[k].thread {
            ThreadState::Ready { remaining } => remaining,
            other => unreachable!("start_compute on thread in state {other:?}"),
        };
        debug_assert!(
            self.cfg.protocol_processor || self.nodes[k].fifo.is_empty(),
            "compute must not start with queued handlers"
        );
        let node = &mut self.nodes[k];
        node.compute_token += 1;
        let token = node.compute_token;
        node.thread = ThreadState::Running;
        node.cpu = Cpu::Compute {
            end: self.now + remaining,
        };
        node.stats.busy_compute.set(self.now, 1.0);
        self.schedule(self.now + remaining, k, EvKind::ComputeDone { token });
    }

    fn on_compute_done(&mut self, k: NodeId, token: u64) {
        if self.nodes[k].compute_token != token {
            return; // stale: the thread was preempted after scheduling this
        }
        debug_assert!(matches!(self.nodes[k].cpu, Cpu::Compute { .. }));
        debug_assert_eq!(self.nodes[k].thread, ThreadState::Running);
        {
            let node = &mut self.nodes[k];
            node.stats.busy_compute.set(self.now, 0.0);
            node.cpu = Cpu::Idle;
            node.thread = ThreadState::Blocked;
        }
        // Issue the cycle's blocking request(s); sending is free, each
        // message's wire time is St (or sampled).
        let spec = &self.cfg.threads[k];
        let hops = spec.hops;
        let fanout = spec.fanout;
        {
            let node = &mut self.nodes[k];
            node.t_sent = self.now;
            node.outstanding = fanout;
            node.cyc_rq = 0.0;
            node.cyc_ry = 0.0;
        }
        for _ in 0..fanout {
            let dst =
                self.cfg.threads[k]
                    .dest
                    .pick(k, self.cfg.p, &mut self.rng, &mut self.nodes[k].rr);
            debug_assert_ne!(dst, k, "requests must target another node");
            let msg = Msg {
                kind: MsgKind::Request,
                origin: k,
                hops_left: hops - 1,
                rq_sum: 0.0,
                arrived_at: 0.0,
            };
            let wire = self.wire_time();
            self.schedule(self.now + wire, dst, EvKind::Arrive(msg));
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    fn finalize(self) -> SimReport {
        let t_end = match self.horizon_end {
            Some(end) => end,
            None => self.makespan,
        };
        let window = match self.horizon_end {
            Some(end) => end - self.warmup,
            None => self.makespan,
        };

        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut pooled_r = Welford::new();
        let mut pooled_rw = Welford::new();
        let mut pooled_rq = Welford::new();
        let mut pooled_ry = Welford::new();
        let mut total_cycles = 0u64;
        let mut sum_uq = 0.0;
        let mut sum_uy = 0.0;
        let mut sum_qq = 0.0;
        let mut sum_qy = 0.0;

        for node in &self.nodes {
            let s = &node.stats;
            let summary = NodeSummary {
                mean_r: s.r.mean(),
                mean_rw: s.rw.mean(),
                mean_rq: s.rq.mean(),
                mean_ry: s.ry.mean(),
                mean_rq_at_server: s.rq_at_server.mean(),
                qq: s.nq.average(t_end),
                qy: s.ny.average(t_end),
                uq: s.busy_req.average(t_end),
                uy: s.busy_rep.average(t_end),
                u_compute: s.busy_compute.average(t_end),
                cycles: s.cycles,
                requests_served: s.requests_served,
                max_depth: s.max_depth,
            };
            pooled_r.merge(&s.r);
            pooled_rw.merge(&s.rw);
            pooled_rq.merge(&s.rq);
            pooled_ry.merge(&s.ry);
            total_cycles += s.cycles;
            sum_uq += summary.uq;
            sum_uy += summary.uy;
            sum_qq += summary.qq;
            sum_qy += summary.qy;
            nodes.push(summary);
        }

        let p = nodes.len() as f64;
        let aggregate = Aggregate {
            mean_r: pooled_r.mean(),
            r_std_err: pooled_r.std_err(),
            mean_rw: pooled_rw.mean(),
            mean_rq: pooled_rq.mean(),
            mean_ry: pooled_ry.mean(),
            mean_uq: sum_uq / p,
            mean_uy: sum_uy / p,
            mean_qq: sum_qq / p,
            mean_qy: sum_qy / p,
            total_cycles,
            throughput: if window > 0.0 {
                total_cycles as f64 / window
            } else {
                0.0
            },
        };

        SimReport {
            nodes,
            aggregate,
            window,
            makespan: self.makespan,
            events: self.events,
            cycle_trace: self.trace.unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, StopCondition, ThreadSpec};
    use crate::routing::DestChooser;
    use lopc_dist::ServiceTime;

    /// Two perfectly symmetric nodes with constant everything stay in
    /// lockstep: both block at the same instant, each serves the other's
    /// request while idle, and there is never any contention. The cycle time
    /// is then exactly `W + 2·St + 2·So`.
    #[test]
    fn two_node_pingpong_is_contention_free() {
        let (w, st, so) = (500.0, 25.0, 100.0);
        let cfg = SimConfig {
            p: 2,
            net_latency: st,
            request_handler: ServiceTime::constant(so),
            reply_handler: ServiceTime::constant(so),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(w)); 2],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::CyclesPerThread { n: 50 },
            seed: 9,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        let expected = w + 2.0 * st + 2.0 * so;
        assert!(
            (report.aggregate.mean_r - expected).abs() < 1e-9,
            "R = {} != {expected}",
            report.aggregate.mean_r
        );
        assert_eq!(report.aggregate.total_cycles, 100);
        // Components are exact too.
        assert!((report.aggregate.mean_rw - w).abs() < 1e-9);
        assert!((report.aggregate.mean_rq - so).abs() < 1e-9);
        assert!((report.aggregate.mean_ry - so).abs() < 1e-9);
    }

    /// Makespan of the deterministic ping-pong is n·R exactly.
    #[test]
    fn pingpong_makespan_is_n_times_r() {
        let (w, st, so, n) = (300.0, 10.0, 50.0, 20u64);
        let cfg = SimConfig {
            p: 2,
            net_latency: st,
            request_handler: ServiceTime::constant(so),
            reply_handler: ServiceTime::constant(so),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(w)); 2],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::CyclesPerThread { n },
            seed: 1,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        let r = w + 2.0 * st + 2.0 * so;
        assert!(
            (report.makespan - n as f64 * r).abs() < 1e-6,
            "makespan {} != {}",
            report.makespan,
            n as f64 * r
        );
    }

    /// Component identity: R = Rw + (h+1)·St + Rq + Ry for every measured
    /// cycle, so it must hold for the means.
    #[test]
    fn response_decomposition_identity() {
        let st = 25.0;
        let cfg = SimConfig {
            p: 8,
            net_latency: st,
            request_handler: ServiceTime::exponential(100.0),
            reply_handler: ServiceTime::exponential(100.0),
            threads: vec![ThreadSpec::worker(ServiceTime::exponential(400.0)); 8],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 20_000.0,
                end: 120_000.0,
            },
            seed: 77,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        let a = &report.aggregate;
        let recomposed = a.mean_rw + 2.0 * st + a.mean_rq + a.mean_ry;
        assert!(
            (a.mean_r - recomposed).abs() < 1e-6,
            "R {} != decomposition {recomposed}",
            a.mean_r
        );
    }

    /// Same seed, same report; different seed, (almost surely) different.
    #[test]
    fn determinism_by_seed() {
        let mk = |seed| {
            let cfg = SimConfig {
                p: 4,
                net_latency: 10.0,
                request_handler: ServiceTime::exponential(50.0),
                reply_handler: ServiceTime::exponential(50.0),
                threads: vec![ThreadSpec::worker(ServiceTime::exponential(200.0)); 4],
                protocol_processor: false,
                latency_dist: None,
                stop: StopCondition::Horizon {
                    warmup: 5_000.0,
                    end: 50_000.0,
                },
                seed,
            };
            Engine::new(cfg).unwrap().run_to_completion()
        };
        let a = mk(5);
        let b = mk(5);
        let c = mk(6);
        assert_eq!(a.aggregate.mean_r, b.aggregate.mean_r);
        assert_eq!(a.events, b.events);
        assert_ne!(a.aggregate.mean_r, c.aggregate.mean_r);
    }

    /// With a protocol processor the compute thread is never interrupted, so
    /// Rw == W exactly for constant work.
    #[test]
    fn protocol_processor_never_interrupts_compute() {
        let w = 300.0;
        let cfg = SimConfig {
            p: 8,
            net_latency: 10.0,
            request_handler: ServiceTime::exponential(150.0),
            reply_handler: ServiceTime::exponential(150.0),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(w)); 8],
            protocol_processor: true,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 20_000.0,
                end: 150_000.0,
            },
            seed: 3,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        assert!(
            (report.aggregate.mean_rw - w).abs() < 1e-9,
            "Rw = {} != W = {w}",
            report.aggregate.mean_rw
        );
        // But handlers still queue against each other: Rq > So on average.
        assert!(report.aggregate.mean_rq > 150.0);
    }

    /// Utilisations are probabilities.
    #[test]
    fn utilisations_bounded() {
        let cfg = SimConfig {
            p: 6,
            net_latency: 5.0,
            request_handler: ServiceTime::exponential(80.0),
            reply_handler: ServiceTime::exponential(80.0),
            threads: vec![ThreadSpec::worker(ServiceTime::exponential(100.0)); 6],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 10_000.0,
                end: 60_000.0,
            },
            seed: 12,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        for (i, n) in report.nodes.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(&n.uq), "uq[{i}] = {}", n.uq);
            assert!((0.0..=1.0 + 1e-9).contains(&n.uy), "uy[{i}] = {}", n.uy);
            assert!(
                n.uq + n.uy + n.u_compute <= 1.0 + 1e-9,
                "CPU over-committed at node {i}"
            );
        }
    }

    /// Multi-hop requests visit h handlers and pay (h+1) wire latencies.
    #[test]
    fn multihop_decomposition() {
        let st = 20.0;
        let hops = 3u32;
        let mut threads = vec![
            ThreadSpec {
                work: Some(ServiceTime::constant(500.0)),
                dest: DestChooser::UniformOther,
                hops,
                fanout: 1,
            };
            6
        ];
        threads[0].hops = hops;
        let cfg = SimConfig {
            p: 6,
            net_latency: st,
            request_handler: ServiceTime::constant(50.0),
            reply_handler: ServiceTime::constant(50.0),
            threads,
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 10_000.0,
                end: 100_000.0,
            },
            seed: 21,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        let a = &report.aggregate;
        let recomposed = a.mean_rw + (hops as f64 + 1.0) * st + a.mean_rq + a.mean_ry;
        assert!(
            (a.mean_r - recomposed).abs() < 1e-6,
            "R {} != multihop decomposition {recomposed}",
            a.mean_r
        );
        // Rq spans h handler visits: at least h·So.
        assert!(a.mean_rq >= hops as f64 * 50.0 - 1e-9);
    }

    /// Pure servers never complete cycles; clients complete all of them.
    #[test]
    fn client_server_roles() {
        let mut threads = vec![ThreadSpec::server(); 6];
        for spec in threads.iter_mut().skip(2) {
            *spec = ThreadSpec {
                work: Some(ServiceTime::exponential(400.0)),
                dest: DestChooser::UniformAmong(vec![0, 1]),
                hops: 1,
                fanout: 1,
            };
        }
        let cfg = SimConfig {
            p: 6,
            net_latency: 10.0,
            request_handler: ServiceTime::exponential(131.0),
            reply_handler: ServiceTime::exponential(131.0),
            threads,
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 20_000.0,
                end: 120_000.0,
            },
            seed: 8,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        assert_eq!(report.nodes[0].cycles, 0);
        assert_eq!(report.nodes[1].cycles, 0);
        for n in &report.nodes[2..] {
            assert!(n.cycles > 0);
        }
        // All requests land on the two servers.
        assert_eq!(
            report.nodes[2..]
                .iter()
                .map(|n| n.requests_served)
                .sum::<u64>(),
            0
        );
        assert!(report.nodes[0].requests_served > 0);
        assert!(report.nodes[1].requests_served > 0);
    }

    /// W = 0 (degenerate: thread re-requests instantly) must not wedge.
    #[test]
    fn zero_work_progresses() {
        let cfg = SimConfig {
            p: 4,
            net_latency: 10.0,
            request_handler: ServiceTime::constant(50.0),
            reply_handler: ServiceTime::constant(50.0),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(0.0)); 4],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 5_000.0,
                end: 50_000.0,
            },
            seed: 4,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        assert!(report.aggregate.total_cycles > 100);
        // R >= 2St + 2So even with no work.
        assert!(report.aggregate.mean_r >= 2.0 * 10.0 + 2.0 * 50.0 - 1e-9);
    }

    /// `Engine::new` resolves the scheduler adaptively from `P × fanout`
    /// (unless `LOPC_TEST_SCHEDULER` overrides it, which plain `cargo test`
    /// does not set).
    #[test]
    fn engine_new_picks_scheduler_adaptively() {
        if crate::validate::env_scheduler().is_some() {
            return; // matrix run: the override wins by design
        }
        let worker = ThreadSpec::worker(ServiceTime::constant(100.0));
        let small = SimConfig {
            p: 8,
            net_latency: 10.0,
            request_handler: ServiceTime::constant(50.0),
            reply_handler: ServiceTime::constant(50.0),
            threads: vec![worker.clone(); 8],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::CyclesPerThread { n: 1 },
            seed: 1,
        };
        assert_eq!(small.pending_hint(), 8);
        assert_eq!(
            Engine::new(small.clone()).unwrap().scheduler(),
            Scheduler::BinaryHeap
        );

        let mut large = small.clone();
        large.p = 64;
        large.threads = vec![worker.clone(); 64];
        assert_eq!(large.pending_hint(), 64);
        assert_eq!(Engine::new(large).unwrap().scheduler(), Scheduler::Calendar);

        // Fanout counts: 8 nodes × fanout 5 = 40 pending crosses over.
        let mut fanned = small;
        for t in &mut fanned.threads {
            t.fanout = 5;
        }
        assert_eq!(fanned.pending_hint(), 40);
        assert_eq!(
            Engine::new(fanned).unwrap().scheduler(),
            Scheduler::Calendar
        );
    }
}
