//! The discrete-event engine: nodes, messages, handlers, and the event loop.
//!
//! Semantics implemented (Chapter 2 of the thesis, and the model/simulator
//! contract recorded in DESIGN.md §5):
//!
//! * Sending a message is free; it arrives exactly `St` later (contention-
//!   free network).
//! * An arriving message **interrupts** a computing thread immediately
//!   (preempt-resume); remaining work is banked and resumed later.
//! * Handlers are **atomic**: arrivals during a handler wait in an infinite
//!   FIFO. When a handler completes, queued messages run **before** the
//!   computation thread resumes.
//! * A request handler either forwards the request (multi-hop) or sends the
//!   reply to the originator; a reply handler unblocks the local thread and
//!   ends the cycle.
//! * With `protocol_processor = true`, handlers run on a per-node coprocessor
//!   and never interrupt computation (§5.1 "Modeling Shared Memory").
//!
//! # Partition-aware core
//!
//! The event loop lives in `Core`, which owns a *contiguous block* of
//! nodes rather than all of them. The sequential [`Engine`] is a single
//! `Core` spanning `0..p`; the conservative parallel engine
//! ([`crate::par`]) runs one `Core` per logical process and ferries
//! cross-block events through its outbox. Three design rules make the two
//! modes bit-identical (DESIGN.md §13):
//!
//! * **Per-node RNG streams.** Every node draws from its own
//!   [`SmallRng`], seeded by counter-based splitting ([`stream_seed`]) of
//!   the configuration seed — never from a shared stream whose
//!   interleaving would depend on global event order.
//! * **Partition-independent event keys.** Tie-breaking uses
//!   `(creating node, per-node creation counter)` packed into the 64-bit
//!   `seq`, not a global counter, so simultaneous events sort the same way
//!   no matter which core created them.
//! * **Drain-to-empty termination.** In makespan mode the loop runs until
//!   the queue is empty (the only events after the last cycle are stale,
//!   token-invalidated `ComputeDone`s), so the processed-event set does not
//!   depend on the partition.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::config::{ConfigError, NodeId, SimConfig, StopCondition, Time};
use crate::sched::{BinaryHeapQueue, CalendarQueue, EventQueue, Keyed, Scheduler};
use crate::stats::{Aggregate, NodeStats, NodeSummary, SimReport, Welford};
use lopc_dist::Distribution;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Bits of the event tie-break key holding the per-node creation counter;
/// the creating node's id occupies the bits above (hence
/// [`crate::config::MAX_NODES`] = 2^(64−44) = 2²⁰).
const CTR_BITS: u32 = 44;

/// Derive the seed of RNG stream `stream` from a master seed by
/// counter-based splitting: a Weyl step by the golden-ratio increment
/// followed by the SplitMix64 finalizer. Unlike drawing seeds sequentially
/// from one RNG, stream `k`'s seed depends only on `(master, k)`, so any
/// subset of streams can be materialised independently — the property that
/// makes simulation results invariant under LP repartitioning (each node is
/// stream `k = node id`).
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Message kind: requests travel origin → server(s); the final server turns
/// the message into a reply back to the origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MsgKind {
    Request,
    Reply,
}

/// A message in flight or queued. Cycle-level bookkeeping lives on the
/// origin node (a fork-join cycle owns several messages at once); the
/// message itself carries only per-request state.
#[derive(Clone, Debug)]
pub(crate) struct Msg {
    kind: MsgKind,
    origin: NodeId,
    /// Handler visits remaining *after* the current one (multi-hop).
    hops_left: u32,
    /// Accumulated request-handler response time over all hops (`Rq`).
    rq_sum: f64,
    /// Arrival time at the node currently holding the message.
    arrived_at: Time,
}

/// CPU occupancy of a node.
#[derive(Clone, Copy, Debug)]
enum Cpu {
    Idle,
    /// Running a (non-preemptible) handler.
    Handler,
    /// Running the computation thread; completion is the event carrying
    /// `token`, invalidated by bumping the node's token on preemption.
    Compute {
        end: Time,
    },
}

/// Computation-thread state.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ThreadState {
    /// Has `remaining` work to do but the CPU is busy with handlers.
    Ready { remaining: f64 },
    /// Currently computing (CPU is `Compute`).
    Running,
    /// Request outstanding; spinning (interruptible at zero cost).
    Blocked,
    /// Finished its cycle quota (makespan mode).
    Done,
    /// A pure server: never computes, never requests.
    Absent,
}

/// Per-node state.
#[derive(Debug)]
struct Node {
    cpu: Cpu,
    thread: ThreadState,
    fifo: VecDeque<Msg>,
    in_service: Option<Msg>,
    // Protocol-processor state (used only when cfg.protocol_processor).
    pp_busy: bool,
    pp_fifo: VecDeque<Msg>,
    pp_in_service: Option<Msg>,
    // Cycle bookkeeping.
    t_cycle_start: Time,
    /// When this cycle's requests were injected.
    t_sent: Time,
    /// Replies still outstanding in the current fork-join cycle.
    outstanding: u32,
    /// Accumulated request-handler response over the cycle's requests.
    cyc_rq: f64,
    /// Accumulated reply-handler response over the cycle's replies.
    cyc_ry: f64,
    cycles_done: u64,
    compute_token: u64,
    /// Round-robin cursor for deterministic destination choosers.
    rr: usize,
    /// This node's private RNG stream (see [`stream_seed`]).
    rng: SmallRng,
    /// Events created by this node so far (low half of their tie-break key).
    ctr: u64,
    /// Whether the lazy warmup reset has run (first event at `t >= warmup`).
    warmup_done: bool,
    stats: NodeStats,
}

impl Node {
    fn new(rng: SmallRng) -> Self {
        Node {
            cpu: Cpu::Idle,
            thread: ThreadState::Absent,
            fifo: VecDeque::new(),
            in_service: None,
            pp_busy: false,
            pp_fifo: VecDeque::new(),
            pp_in_service: None,
            t_cycle_start: 0.0,
            t_sent: 0.0,
            outstanding: 0,
            cyc_rq: 0.0,
            cyc_ry: 0.0,
            cycles_done: 0,
            compute_token: 0,
            rr: 0,
            rng,
            ctr: 0,
            warmup_done: false,
            stats: NodeStats::new(),
        }
    }
}

/// Event payload.
#[derive(Debug)]
pub(crate) enum EvKind {
    Arrive(Msg),
    HandlerDone,
    PpHandlerDone,
    ComputeDone { token: u64 },
}

/// A scheduled event; ordered by `(time, seq)` where `seq` packs
/// `(creating node, per-node creation counter)` — unique, FIFO per creator,
/// and independent of the LP partition, so runs are bit-reproducible in
/// both the sequential and the parallel engine.
#[derive(Debug)]
pub(crate) struct Ev {
    pub(crate) t: Time,
    pub(crate) seq: u64,
    pub(crate) node: NodeId,
    pub(crate) kind: EvKind,
}

impl Keyed for Ev {
    fn time(&self) -> Time {
        self.t
    }
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// The engine's pending-event set: one of the [`Scheduler`] implementations,
/// dispatched by match so the hot loop pays no virtual-call cost.
enum PendingEvents {
    Calendar(CalendarQueue<Ev>),
    Heap(BinaryHeapQueue<Ev>),
}

impl PendingEvents {
    fn new(scheduler: Scheduler) -> Self {
        match scheduler {
            Scheduler::Calendar => PendingEvents::Calendar(CalendarQueue::new()),
            Scheduler::BinaryHeap => PendingEvents::Heap(BinaryHeapQueue::new()),
        }
    }

    fn kind(&self) -> Scheduler {
        match self {
            PendingEvents::Calendar(_) => Scheduler::Calendar,
            PendingEvents::Heap(_) => Scheduler::BinaryHeap,
        }
    }

    #[inline]
    fn push(&mut self, ev: Ev) {
        match self {
            PendingEvents::Calendar(q) => q.push(ev),
            PendingEvents::Heap(q) => q.push(ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Ev> {
        match self {
            PendingEvents::Calendar(q) => q.pop(),
            PendingEvents::Heap(q) => q.pop(),
        }
    }
}

/// Sample a message's wire time: constant `St`, or drawn from the node's
/// stream when a latency distribution is configured (same mean, §5.2).
#[inline]
fn wire_time(cfg: &SimConfig, rng: &mut SmallRng) -> f64 {
    match &cfg.latency_dist {
        None => cfg.net_latency,
        Some(d) => d.sample(rng),
    }
}

/// The event loop over one contiguous block of nodes `[lo, lo + len)`.
///
/// The sequential [`Engine`] wraps a single core spanning every node; the
/// parallel engine ([`crate::par`]) runs one core per logical process.
/// Events addressed outside the block land in [`Core::outbox`] for the
/// driver to ferry; events arriving from other blocks enter through
/// [`Core::receive`]. [`Core::process_until`] enforces the conservative
/// safe-time bound.
pub(crate) struct Core {
    cfg: Arc<SimConfig>,
    /// Global id of the first owned node (`nodes[i]` is node `lo + i`).
    lo: NodeId,
    nodes: Vec<Node>,
    queue: PendingEvents,
    now: Time,
    events: u64,
    /// Cycles recorded only when they *start* at or after this time.
    warmup: Time,
    /// Horizon end (None in makespan mode).
    horizon_end: Option<Time>,
    /// Per-thread cycle quota (None in horizon mode).
    max_cycles: Option<u64>,
    makespan: Time,
    /// Key of the event being dispatched; labels trace entries so per-core
    /// traces merge into the exact sequential completion order.
    cur_key: (Time, u64),
    /// When `Some`, measured cycles append `(t, seq, r)` here.
    trace: Option<Vec<(Time, u64, f64)>>,
    /// Events addressed to nodes outside the owned block.
    outbox: Vec<Ev>,
}

impl Core {
    /// Build the core for nodes `[lo, lo + len)` of a *validated*
    /// configuration and prime its threads with their first work quantum.
    pub(crate) fn new(
        cfg: Arc<SimConfig>,
        lo: NodeId,
        len: usize,
        scheduler: Scheduler,
        trace: bool,
    ) -> Self {
        debug_assert!(lo + len <= cfg.p && len > 0);
        let (warmup, horizon_end, max_cycles) = match cfg.stop {
            StopCondition::Horizon { warmup, end } => (warmup, Some(end), None),
            StopCondition::CyclesPerThread { n } => (0.0, None, Some(n)),
        };
        let seed = cfg.seed;
        let nodes = (lo..lo + len)
            .map(|k| Node::new(SmallRng::seed_from_u64(stream_seed(seed, k as u64))))
            .collect();
        let mut core = Core {
            cfg,
            lo,
            nodes,
            queue: PendingEvents::new(scheduler),
            now: 0.0,
            events: 0,
            warmup,
            horizon_end,
            max_cycles,
            makespan: 0.0,
            cur_key: (0.0, 0),
            trace: Some(Vec::new()).filter(|_| trace),
            outbox: Vec::new(),
        };
        core.bootstrap();
        core
    }

    /// Prime every owned active thread with its first work quantum.
    fn bootstrap(&mut self) {
        for k in self.lo..self.lo + self.nodes.len() {
            let i = k - self.lo;
            if let Some(work) = &self.cfg.threads[k].work {
                let w = work.sample(&mut self.nodes[i].rng);
                self.nodes[i].t_cycle_start = 0.0;
                self.nodes[i].thread = ThreadState::Ready { remaining: w };
                self.start_compute(k);
            }
        }
    }

    /// True when this core owns node `k`.
    #[inline]
    fn owns(&self, k: NodeId) -> bool {
        (self.lo..self.lo + self.nodes.len()).contains(&k)
    }

    /// Create an event on behalf of node `creator` (the node whose handler
    /// is running). The tie-break key is `(creator, creator's counter)`, so
    /// it does not depend on which core runs the creator. Events for nodes
    /// outside the block go to the outbox.
    #[inline]
    fn schedule(&mut self, creator: NodeId, t: Time, node: NodeId, kind: EvKind) {
        let c = &mut self.nodes[creator - self.lo];
        c.ctr += 1;
        debug_assert!(c.ctr < (1 << CTR_BITS));
        let seq = ((creator as u64) << CTR_BITS) | c.ctr;
        let ev = Ev { t, seq, node, kind };
        if self.owns(node) {
            self.queue.push(ev);
        } else {
            self.outbox.push(ev);
        }
    }

    /// Earliest pending event time, or `+∞` when the queue is empty (the
    /// conservative engine's null-message payload is this plus the
    /// lookahead).
    pub(crate) fn next_time(&mut self) -> Time {
        match self.queue.pop() {
            Some(ev) => {
                let t = ev.t;
                self.queue.push(ev);
                t
            }
            None => f64::INFINITY,
        }
    }

    /// Accept an event ferried from another core.
    pub(crate) fn receive(&mut self, ev: Ev) {
        debug_assert!(self.owns(ev.node));
        debug_assert!(ev.t >= self.now, "causality violation across LPs");
        self.queue.push(ev);
    }

    /// Drain the events addressed to other cores.
    pub(crate) fn take_outbox(&mut self) -> Vec<Ev> {
        std::mem::take(&mut self.outbox)
    }

    /// Process every pending event with `t < bound` (and, under a horizon,
    /// `t <= end`); the first event past either limit is pushed back intact.
    /// Sequential runs pass `+∞` and stop at the horizon or an empty queue.
    pub(crate) fn process_until(&mut self, bound: Time) {
        while let Some(ev) = self.queue.pop() {
            if ev.t >= bound || self.horizon_end.is_some_and(|end| ev.t > end) {
                self.queue.push(ev);
                break;
            }
            self.dispatch(ev);
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        debug_assert!(ev.t >= self.now, "time went backwards");
        self.now = ev.t;
        self.events += 1;
        self.cur_key = (ev.t, ev.seq);
        // Lazy warmup: the node's time-averages restart at exactly `warmup`
        // before its first post-warmup event — between its events the levels
        // are constant, so this equals an eager reset at `warmup`.
        let i = ev.node - self.lo;
        if !self.nodes[i].warmup_done && self.warmup > 0.0 && ev.t >= self.warmup {
            self.nodes[i].warmup_done = true;
            self.nodes[i].stats.reset_time_averages(self.warmup);
        }
        match ev.kind {
            EvKind::Arrive(msg) => self.on_arrive(ev.node, msg),
            EvKind::HandlerDone => self.on_handler_done(ev.node),
            EvKind::PpHandlerDone => self.on_pp_handler_done(ev.node),
            EvKind::ComputeDone { token } => self.on_compute_done(ev.node, token),
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_arrive(&mut self, k: NodeId, mut msg: Msg) {
        let i = k - self.lo;
        msg.arrived_at = self.now;
        {
            let node = &mut self.nodes[i];
            match msg.kind {
                MsgKind::Request => node.stats.nq.add(self.now, 1.0),
                MsgKind::Reply => {
                    debug_assert_eq!(msg.origin, k, "reply must arrive at its origin");
                    node.stats.ny.add(self.now, 1.0);
                }
            }
            debug_assert!(
                node.stats.ny.level() <= self.cfg.threads[k].fanout as f64,
                "a node holds at most `fanout` replies"
            );
            let depth = node.stats.nq.level() + node.stats.ny.level();
            node.stats.max_depth = node.stats.max_depth.max(depth as u64);
        }

        if self.cfg.protocol_processor {
            if self.nodes[i].pp_busy {
                self.nodes[i].pp_fifo.push_back(msg);
            } else {
                self.start_pp_handler(k, msg);
            }
            return;
        }

        match self.nodes[i].cpu {
            Cpu::Idle => self.start_handler(k, msg),
            Cpu::Handler => self.nodes[i].fifo.push_back(msg),
            Cpu::Compute { end } => {
                // Preempt-resume: bank remaining work, invalidate the pending
                // completion event, run the handler now.
                let remaining = (end - self.now).max(0.0);
                let node = &mut self.nodes[i];
                node.compute_token += 1;
                node.thread = ThreadState::Ready { remaining };
                node.stats.busy_compute.set(self.now, 0.0);
                node.cpu = Cpu::Idle;
                self.start_handler(k, msg);
            }
        }
    }

    fn start_handler(&mut self, k: NodeId, msg: Msg) {
        let i = k - self.lo;
        debug_assert!(self.nodes[i].in_service.is_none());
        let service = match msg.kind {
            MsgKind::Request => self.cfg.request_handler.sample(&mut self.nodes[i].rng),
            MsgKind::Reply => self.cfg.reply_handler.sample(&mut self.nodes[i].rng),
        };
        {
            let node = &mut self.nodes[i];
            match msg.kind {
                MsgKind::Request => node.stats.busy_req.set(self.now, 1.0),
                MsgKind::Reply => node.stats.busy_rep.set(self.now, 1.0),
            }
            node.cpu = Cpu::Handler;
            node.in_service = Some(msg);
        }
        self.schedule(k, self.now + service, k, EvKind::HandlerDone);
    }

    fn start_pp_handler(&mut self, k: NodeId, msg: Msg) {
        let i = k - self.lo;
        debug_assert!(self.nodes[i].pp_in_service.is_none());
        let service = match msg.kind {
            MsgKind::Request => self.cfg.request_handler.sample(&mut self.nodes[i].rng),
            MsgKind::Reply => self.cfg.reply_handler.sample(&mut self.nodes[i].rng),
        };
        {
            let node = &mut self.nodes[i];
            match msg.kind {
                MsgKind::Request => node.stats.busy_req.set(self.now, 1.0),
                MsgKind::Reply => node.stats.busy_rep.set(self.now, 1.0),
            }
            node.pp_busy = true;
            node.pp_in_service = Some(msg);
        }
        self.schedule(k, self.now + service, k, EvKind::PpHandlerDone);
    }

    fn on_handler_done(&mut self, k: NodeId) {
        let i = k - self.lo;
        let msg = self.nodes[i]
            .in_service
            .take()
            .expect("HandlerDone with no handler in service");
        {
            let node = &mut self.nodes[i];
            node.cpu = Cpu::Idle;
            match msg.kind {
                MsgKind::Request => {
                    node.stats.busy_req.set(self.now, 0.0);
                    node.stats.nq.add(self.now, -1.0);
                }
                MsgKind::Reply => {
                    node.stats.busy_rep.set(self.now, 0.0);
                    node.stats.ny.add(self.now, -1.0);
                }
            }
        }
        self.complete_message(k, msg);

        // CPU dispatch: queued handlers run before the thread resumes (this
        // is the interference the BKT approximation charges to Rw).
        if let Some(next) = self.nodes[i].fifo.pop_front() {
            self.start_handler(k, next);
        } else if let ThreadState::Ready { .. } = self.nodes[i].thread {
            self.start_compute(k);
        }
    }

    fn on_pp_handler_done(&mut self, k: NodeId) {
        let i = k - self.lo;
        let msg = self.nodes[i]
            .pp_in_service
            .take()
            .expect("PpHandlerDone with no handler in service");
        {
            let node = &mut self.nodes[i];
            node.pp_busy = false;
            match msg.kind {
                MsgKind::Request => {
                    node.stats.busy_req.set(self.now, 0.0);
                    node.stats.nq.add(self.now, -1.0);
                }
                MsgKind::Reply => {
                    node.stats.busy_rep.set(self.now, 0.0);
                    node.stats.ny.add(self.now, -1.0);
                }
            }
        }
        self.complete_message(k, msg);

        // The CPU never ran the handler: start the thread only if it just
        // became ready and the CPU is idle.
        if let (Cpu::Idle, ThreadState::Ready { .. }) = (self.nodes[i].cpu, self.nodes[i].thread) {
            self.start_compute(k);
        }
        if let Some(next) = self.nodes[i].pp_fifo.pop_front() {
            self.start_pp_handler(k, next);
        }
    }

    /// Shared request/reply completion logic (CPU-handler and protocol-
    /// processor paths): forward, reply, or end the origin's cycle.
    fn complete_message(&mut self, k: NodeId, mut msg: Msg) {
        let i = k - self.lo;
        match msg.kind {
            MsgKind::Request => {
                let response = self.now - msg.arrived_at;
                msg.rq_sum += response;
                if msg.arrived_at >= self.warmup {
                    let node = &mut self.nodes[i];
                    node.stats.rq_at_server.push(response);
                    node.stats.requests_served += 1;
                }
                let wire = wire_time(&self.cfg, &mut self.nodes[i].rng);
                if msg.hops_left > 0 {
                    msg.hops_left -= 1;
                    // Forwarding hop: uniform over the other nodes, like the
                    // multi-hop patterns of Appendix A.
                    let node = &mut self.nodes[i];
                    let next = crate::routing::DestChooser::UniformOther.pick(
                        k,
                        self.cfg.p,
                        &mut node.rng,
                        &mut node.rr,
                    );
                    self.schedule(k, self.now + wire, next, EvKind::Arrive(msg));
                } else {
                    msg.kind = MsgKind::Reply;
                    let origin = msg.origin;
                    self.schedule(k, self.now + wire, origin, EvKind::Arrive(msg));
                }
            }
            MsgKind::Reply => {
                debug_assert_eq!(msg.origin, k);
                {
                    let node = &mut self.nodes[i];
                    debug_assert!(node.outstanding > 0, "unexpected reply");
                    node.cyc_rq += msg.rq_sum;
                    node.cyc_ry += self.now - msg.arrived_at;
                    node.outstanding -= 1;
                    if node.outstanding > 0 {
                        return; // fork-join: wait for the siblings
                    }
                }
                // Last reply of the cycle: record and start the next one.
                let (r, rw, cyc_rq, cyc_ry) = {
                    let node = &self.nodes[i];
                    (
                        self.now - node.t_cycle_start,
                        node.t_sent - node.t_cycle_start,
                        node.cyc_rq,
                        node.cyc_ry,
                    )
                };
                if self.nodes[i].t_cycle_start >= self.warmup {
                    let node = &mut self.nodes[i];
                    node.stats.r.push(r);
                    node.stats.rw.push(rw);
                    node.stats.rq.push(cyc_rq);
                    node.stats.ry.push(cyc_ry);
                    node.stats.cycles += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.push((self.cur_key.0, self.cur_key.1, r));
                    }
                }
                self.nodes[i].cycles_done += 1;
                self.makespan = self.now;

                let quota_left = self
                    .max_cycles
                    .is_none_or(|n| self.nodes[i].cycles_done < n);
                if quota_left {
                    let w = self.cfg.threads[k]
                        .work
                        .as_ref()
                        .expect("reply arrived at a server node")
                        .sample(&mut self.nodes[i].rng);
                    let node = &mut self.nodes[i];
                    node.t_cycle_start = self.now;
                    node.thread = ThreadState::Ready { remaining: w };
                } else {
                    self.nodes[i].thread = ThreadState::Done;
                }
            }
        }
    }

    fn start_compute(&mut self, k: NodeId) {
        let i = k - self.lo;
        let remaining = match self.nodes[i].thread {
            ThreadState::Ready { remaining } => remaining,
            other => unreachable!("start_compute on thread in state {other:?}"),
        };
        debug_assert!(
            self.cfg.protocol_processor || self.nodes[i].fifo.is_empty(),
            "compute must not start with queued handlers"
        );
        let node = &mut self.nodes[i];
        node.compute_token += 1;
        let token = node.compute_token;
        node.thread = ThreadState::Running;
        node.cpu = Cpu::Compute {
            end: self.now + remaining,
        };
        node.stats.busy_compute.set(self.now, 1.0);
        self.schedule(k, self.now + remaining, k, EvKind::ComputeDone { token });
    }

    fn on_compute_done(&mut self, k: NodeId, token: u64) {
        let i = k - self.lo;
        if self.nodes[i].compute_token != token {
            return; // stale: the thread was preempted after scheduling this
        }
        debug_assert!(matches!(self.nodes[i].cpu, Cpu::Compute { .. }));
        debug_assert_eq!(self.nodes[i].thread, ThreadState::Running);
        {
            let node = &mut self.nodes[i];
            node.stats.busy_compute.set(self.now, 0.0);
            node.cpu = Cpu::Idle;
            node.thread = ThreadState::Blocked;
        }
        // Issue the cycle's blocking request(s); sending is free, each
        // message's wire time is St (or sampled).
        let spec = &self.cfg.threads[k];
        let hops = spec.hops;
        let fanout = spec.fanout;
        {
            let node = &mut self.nodes[i];
            node.t_sent = self.now;
            node.outstanding = fanout;
            node.cyc_rq = 0.0;
            node.cyc_ry = 0.0;
        }
        for _ in 0..fanout {
            let node = &mut self.nodes[i];
            let dst = self.cfg.threads[k]
                .dest
                .pick(k, self.cfg.p, &mut node.rng, &mut node.rr);
            debug_assert_ne!(dst, k, "requests must target another node");
            let msg = Msg {
                kind: MsgKind::Request,
                origin: k,
                hops_left: hops - 1,
                rq_sum: 0.0,
                arrived_at: 0.0,
            };
            let wire = wire_time(&self.cfg, &mut self.nodes[i].rng);
            self.schedule(k, self.now + wire, dst, EvKind::Arrive(msg));
        }
    }
}

/// Assemble the [`SimReport`] from the finished cores of one run (the
/// sequential engine passes exactly one spanning `0..p`). Cores are visited
/// in node order, so per-node summaries, the Welford merge sequence — and
/// therefore every pooled statistic — are bit-identical however the node
/// set was partitioned.
pub(crate) fn finalize_report(mut cores: Vec<Core>) -> SimReport {
    cores.sort_by_key(|c| c.lo);
    debug_assert!(!cores.is_empty());
    let warmup = cores[0].warmup;
    let horizon_end = cores[0].horizon_end;
    let makespan = cores.iter().map(|c| c.makespan).fold(0.0f64, f64::max);
    let events: u64 = cores.iter().map(|c| c.events).sum();
    let (t_end, window) = match horizon_end {
        Some(end) => (end, end - warmup),
        None => (makespan, makespan),
    };

    // Nodes whose events all predate the warmup boundary (or that never saw
    // an event) missed the lazy reset; apply it now so their time-averages
    // cover the measurement window like everyone else's.
    if warmup > 0.0 {
        for core in &mut cores {
            for node in &mut core.nodes {
                if !node.warmup_done {
                    node.warmup_done = true;
                    node.stats.reset_time_averages(warmup);
                }
            }
        }
    }

    let p_total: usize = cores.iter().map(|c| c.nodes.len()).sum();
    let mut nodes = Vec::with_capacity(p_total);
    let mut pooled_r = Welford::new();
    let mut pooled_rw = Welford::new();
    let mut pooled_rq = Welford::new();
    let mut pooled_ry = Welford::new();
    let mut total_cycles = 0u64;
    let mut sum_uq = 0.0;
    let mut sum_uy = 0.0;
    let mut sum_qq = 0.0;
    let mut sum_qy = 0.0;

    for node in cores.iter().flat_map(|c| c.nodes.iter()) {
        let s = &node.stats;
        let summary = NodeSummary {
            mean_r: s.r.mean(),
            mean_rw: s.rw.mean(),
            mean_rq: s.rq.mean(),
            mean_ry: s.ry.mean(),
            mean_rq_at_server: s.rq_at_server.mean(),
            qq: s.nq.average(t_end),
            qy: s.ny.average(t_end),
            uq: s.busy_req.average(t_end),
            uy: s.busy_rep.average(t_end),
            u_compute: s.busy_compute.average(t_end),
            cycles: s.cycles,
            requests_served: s.requests_served,
            max_depth: s.max_depth,
        };
        pooled_r.merge(&s.r);
        pooled_rw.merge(&s.rw);
        pooled_rq.merge(&s.rq);
        pooled_ry.merge(&s.ry);
        total_cycles += s.cycles;
        sum_uq += summary.uq;
        sum_uy += summary.uy;
        sum_qq += summary.qq;
        sum_qy += summary.qy;
        nodes.push(summary);
    }

    let p = nodes.len() as f64;
    let aggregate = Aggregate {
        mean_r: pooled_r.mean(),
        r_std_err: pooled_r.std_err(),
        mean_rw: pooled_rw.mean(),
        mean_rq: pooled_rq.mean(),
        mean_ry: pooled_ry.mean(),
        mean_uq: sum_uq / p,
        mean_uy: sum_uy / p,
        mean_qq: sum_qq / p,
        mean_qy: sum_qy / p,
        total_cycles,
        throughput: if window > 0.0 {
            total_cycles as f64 / window
        } else {
            0.0
        },
    };

    // Measured cycles keyed by their completing event: per-core traces are
    // already in key order, and the merged order equals the sequential
    // completion order exactly.
    let mut keyed: Vec<(Time, u64, f64)> = Vec::new();
    for core in &mut cores {
        if let Some(tr) = core.trace.take() {
            keyed.extend(tr);
        }
    }
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    SimReport {
        nodes,
        aggregate,
        window,
        makespan,
        events,
        cycle_trace: keyed.into_iter().map(|(_, _, r)| r).collect(),
    }
}

/// The sequential simulation engine: one `Core` spanning every node.
/// Construct with [`Engine::new`], then call [`Engine::run_to_completion`]
/// (or use the [`crate::run`] convenience).
pub struct Engine {
    core: Core,
}

impl Engine {
    /// Build an engine for a validated configuration, picking the
    /// pending-event scheduler adaptively from the configuration's
    /// steady-state event population ([`Scheduler::auto_for`] over
    /// [`SimConfig::pending_hint`]): the binary heap for small machines,
    /// the calendar queue for large ones.
    ///
    /// The choice never affects results — schedulers are observationally
    /// equivalent (enforced by the differential tests) — only speed. The
    /// `LOPC_TEST_SCHEDULER` environment variable (`calendar` / `heap`)
    /// overrides the adaptive choice for CI matrix runs; use
    /// [`Engine::with_scheduler`] to pin one programmatically.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        let scheduler = crate::validate::env_scheduler()
            .unwrap_or_else(|| Scheduler::auto_for(cfg.pending_hint()));
        Self::with_scheduler(cfg, scheduler)
    }

    /// Build an engine with an explicit pending-event [`Scheduler`].
    ///
    /// Both schedulers produce bit-identical simulations (the differential
    /// tests in `tests/differential.rs` enforce this); the binary heap is
    /// kept selectable as the reference for such cross-checks.
    pub fn with_scheduler(cfg: SimConfig, scheduler: Scheduler) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let p = cfg.p;
        Ok(Engine {
            core: Core::new(Arc::new(cfg), 0, p, scheduler, false),
        })
    }

    /// Record the per-cycle response-time series: every measured cycle
    /// (pooled over nodes, in completion order) is appended to
    /// [`SimReport::cycle_trace`]. Off by default — the trace costs one
    /// entry of memory per cycle, which a long horizon turns into real
    /// footprint, so only runs that feed `lopc_stats::batch_means` ask for
    /// it.
    pub fn with_cycle_trace(mut self) -> Self {
        self.core.trace = Some(Vec::new());
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.core.now
    }

    /// Which pending-event scheduler this engine is running on (the adaptive
    /// choice of [`Engine::new`], or whatever [`Engine::with_scheduler`]
    /// pinned).
    pub fn scheduler(&self) -> Scheduler {
        self.core.queue.kind()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events
    }

    /// Run until the stop condition is reached and produce the report.
    pub fn run_to_completion(mut self) -> SimReport {
        self.core.process_until(f64::INFINITY);
        debug_assert!(
            self.core.outbox.is_empty(),
            "sequential core owns all nodes"
        );
        finalize_report(vec![self.core])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, StopCondition, ThreadSpec};
    use crate::routing::DestChooser;
    use lopc_dist::ServiceTime;

    /// Two perfectly symmetric nodes with constant everything stay in
    /// lockstep: both block at the same instant, each serves the other's
    /// request while idle, and there is never any contention. The cycle time
    /// is then exactly `W + 2·St + 2·So`.
    #[test]
    fn two_node_pingpong_is_contention_free() {
        let (w, st, so) = (500.0, 25.0, 100.0);
        let cfg = SimConfig {
            p: 2,
            net_latency: st,
            request_handler: ServiceTime::constant(so),
            reply_handler: ServiceTime::constant(so),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(w)); 2],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::CyclesPerThread { n: 50 },
            seed: 9,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        let expected = w + 2.0 * st + 2.0 * so;
        assert!(
            (report.aggregate.mean_r - expected).abs() < 1e-9,
            "R = {} != {expected}",
            report.aggregate.mean_r
        );
        assert_eq!(report.aggregate.total_cycles, 100);
        // Components are exact too.
        assert!((report.aggregate.mean_rw - w).abs() < 1e-9);
        assert!((report.aggregate.mean_rq - so).abs() < 1e-9);
        assert!((report.aggregate.mean_ry - so).abs() < 1e-9);
    }

    /// Makespan of the deterministic ping-pong is n·R exactly.
    #[test]
    fn pingpong_makespan_is_n_times_r() {
        let (w, st, so, n) = (300.0, 10.0, 50.0, 20u64);
        let cfg = SimConfig {
            p: 2,
            net_latency: st,
            request_handler: ServiceTime::constant(so),
            reply_handler: ServiceTime::constant(so),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(w)); 2],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::CyclesPerThread { n },
            seed: 1,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        let r = w + 2.0 * st + 2.0 * so;
        assert!(
            (report.makespan - n as f64 * r).abs() < 1e-6,
            "makespan {} != {}",
            report.makespan,
            n as f64 * r
        );
    }

    /// Component identity: R = Rw + (h+1)·St + Rq + Ry for every measured
    /// cycle, so it must hold for the means.
    #[test]
    fn response_decomposition_identity() {
        let st = 25.0;
        let cfg = SimConfig {
            p: 8,
            net_latency: st,
            request_handler: ServiceTime::exponential(100.0),
            reply_handler: ServiceTime::exponential(100.0),
            threads: vec![ThreadSpec::worker(ServiceTime::exponential(400.0)); 8],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 20_000.0,
                end: 120_000.0,
            },
            seed: 77,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        let a = &report.aggregate;
        let recomposed = a.mean_rw + 2.0 * st + a.mean_rq + a.mean_ry;
        assert!(
            (a.mean_r - recomposed).abs() < 1e-6,
            "R {} != decomposition {recomposed}",
            a.mean_r
        );
    }

    /// Same seed, same report; different seed, (almost surely) different.
    #[test]
    fn determinism_by_seed() {
        let mk = |seed| {
            let cfg = SimConfig {
                p: 4,
                net_latency: 10.0,
                request_handler: ServiceTime::exponential(50.0),
                reply_handler: ServiceTime::exponential(50.0),
                threads: vec![ThreadSpec::worker(ServiceTime::exponential(200.0)); 4],
                protocol_processor: false,
                latency_dist: None,
                stop: StopCondition::Horizon {
                    warmup: 5_000.0,
                    end: 50_000.0,
                },
                seed,
            };
            Engine::new(cfg).unwrap().run_to_completion()
        };
        let a = mk(5);
        let b = mk(5);
        let c = mk(6);
        assert_eq!(a.aggregate.mean_r, b.aggregate.mean_r);
        assert_eq!(a.events, b.events);
        assert_ne!(a.aggregate.mean_r, c.aggregate.mean_r);
    }

    /// With a protocol processor the compute thread is never interrupted, so
    /// Rw == W exactly for constant work.
    #[test]
    fn protocol_processor_never_interrupts_compute() {
        let w = 300.0;
        let cfg = SimConfig {
            p: 8,
            net_latency: 10.0,
            request_handler: ServiceTime::exponential(150.0),
            reply_handler: ServiceTime::exponential(150.0),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(w)); 8],
            protocol_processor: true,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 20_000.0,
                end: 150_000.0,
            },
            seed: 3,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        assert!(
            (report.aggregate.mean_rw - w).abs() < 1e-9,
            "Rw = {} != W = {w}",
            report.aggregate.mean_rw
        );
        // But handlers still queue against each other: Rq > So on average.
        assert!(report.aggregate.mean_rq > 150.0);
    }

    /// Utilisations are probabilities.
    #[test]
    fn utilisations_bounded() {
        let cfg = SimConfig {
            p: 6,
            net_latency: 5.0,
            request_handler: ServiceTime::exponential(80.0),
            reply_handler: ServiceTime::exponential(80.0),
            threads: vec![ThreadSpec::worker(ServiceTime::exponential(100.0)); 6],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 10_000.0,
                end: 60_000.0,
            },
            seed: 12,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        for (i, n) in report.nodes.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(&n.uq), "uq[{i}] = {}", n.uq);
            assert!((0.0..=1.0 + 1e-9).contains(&n.uy), "uy[{i}] = {}", n.uy);
            assert!(
                n.uq + n.uy + n.u_compute <= 1.0 + 1e-9,
                "CPU over-committed at node {i}"
            );
        }
    }

    /// Multi-hop requests visit h handlers and pay (h+1) wire latencies.
    #[test]
    fn multihop_decomposition() {
        let st = 20.0;
        let hops = 3u32;
        let mut threads = vec![
            ThreadSpec {
                work: Some(ServiceTime::constant(500.0)),
                dest: DestChooser::UniformOther,
                hops,
                fanout: 1,
            };
            6
        ];
        threads[0].hops = hops;
        let cfg = SimConfig {
            p: 6,
            net_latency: st,
            request_handler: ServiceTime::constant(50.0),
            reply_handler: ServiceTime::constant(50.0),
            threads,
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 10_000.0,
                end: 100_000.0,
            },
            seed: 21,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        let a = &report.aggregate;
        let recomposed = a.mean_rw + (hops as f64 + 1.0) * st + a.mean_rq + a.mean_ry;
        assert!(
            (a.mean_r - recomposed).abs() < 1e-6,
            "R {} != multihop decomposition {recomposed}",
            a.mean_r
        );
        // Rq spans h handler visits: at least h·So.
        assert!(a.mean_rq >= hops as f64 * 50.0 - 1e-9);
    }

    /// Pure servers never complete cycles; clients complete all of them.
    #[test]
    fn client_server_roles() {
        let mut threads = vec![ThreadSpec::server(); 6];
        for spec in threads.iter_mut().skip(2) {
            *spec = ThreadSpec {
                work: Some(ServiceTime::exponential(400.0)),
                dest: DestChooser::UniformAmong(vec![0, 1]),
                hops: 1,
                fanout: 1,
            };
        }
        let cfg = SimConfig {
            p: 6,
            net_latency: 10.0,
            request_handler: ServiceTime::exponential(131.0),
            reply_handler: ServiceTime::exponential(131.0),
            threads,
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 20_000.0,
                end: 120_000.0,
            },
            seed: 8,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        assert_eq!(report.nodes[0].cycles, 0);
        assert_eq!(report.nodes[1].cycles, 0);
        for n in &report.nodes[2..] {
            assert!(n.cycles > 0);
        }
        // All requests land on the two servers.
        assert_eq!(
            report.nodes[2..]
                .iter()
                .map(|n| n.requests_served)
                .sum::<u64>(),
            0
        );
        assert!(report.nodes[0].requests_served > 0);
        assert!(report.nodes[1].requests_served > 0);
    }

    /// W = 0 (degenerate: thread re-requests instantly) must not wedge.
    #[test]
    fn zero_work_progresses() {
        let cfg = SimConfig {
            p: 4,
            net_latency: 10.0,
            request_handler: ServiceTime::constant(50.0),
            reply_handler: ServiceTime::constant(50.0),
            threads: vec![ThreadSpec::worker(ServiceTime::constant(0.0)); 4],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::Horizon {
                warmup: 5_000.0,
                end: 50_000.0,
            },
            seed: 4,
        };
        let report = Engine::new(cfg).unwrap().run_to_completion();
        assert!(report.aggregate.total_cycles > 100);
        // R >= 2St + 2So even with no work.
        assert!(report.aggregate.mean_r >= 2.0 * 10.0 + 2.0 * 50.0 - 1e-9);
    }

    /// `Engine::new` resolves the scheduler adaptively from `P × fanout`
    /// (unless `LOPC_TEST_SCHEDULER` overrides it, which plain `cargo test`
    /// does not set).
    #[test]
    fn engine_new_picks_scheduler_adaptively() {
        if crate::validate::env_scheduler().is_some() {
            return; // matrix run: the override wins by design
        }
        let worker = ThreadSpec::worker(ServiceTime::constant(100.0));
        let small = SimConfig {
            p: 8,
            net_latency: 10.0,
            request_handler: ServiceTime::constant(50.0),
            reply_handler: ServiceTime::constant(50.0),
            threads: vec![worker.clone(); 8],
            protocol_processor: false,
            latency_dist: None,
            stop: StopCondition::CyclesPerThread { n: 1 },
            seed: 1,
        };
        assert_eq!(small.pending_hint(), 8);
        assert_eq!(
            Engine::new(small.clone()).unwrap().scheduler(),
            Scheduler::BinaryHeap
        );

        let mut large = small.clone();
        large.p = 64;
        large.threads = vec![worker.clone(); 64];
        assert_eq!(large.pending_hint(), 64);
        assert_eq!(Engine::new(large).unwrap().scheduler(), Scheduler::Calendar);

        // Fanout counts: 8 nodes × fanout 5 = 40 pending crosses over.
        let mut fanned = small;
        for t in &mut fanned.threads {
            t.fanout = 5;
        }
        assert_eq!(fanned.pending_hint(), 40);
        assert_eq!(
            Engine::new(fanned).unwrap().scheduler(),
            Scheduler::Calendar
        );
    }

    /// Stream seeds are a pure function of `(master, stream)` — counter
    /// splitting, not sequential draws — pinned by golden values so the
    /// mapping (and with it every archived simulation result) cannot drift
    /// silently. See `stream_seed`.
    #[test]
    fn stream_seed_golden_pin() {
        // SplitMix64 finalizer over master + (stream+1)·golden-gamma.
        assert_eq!(stream_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(stream_seed(42, 0), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(stream_seed(42, 1), 0x28EF_E333_B266_F103);
    }

    /// Adjacent streams (and adjacent masters) decorrelate: every pair of
    /// seeds differs, and so do the first draws of the RNGs they seed.
    #[test]
    fn stream_seeds_are_independent() {
        use rand::Rng;
        let master = 42;
        let mut seeds = Vec::new();
        for k in 0..256u64 {
            seeds.push(stream_seed(master, k));
        }
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "stream seeds must be distinct");

        // Neighbouring masters must not produce overlapping stream seeds
        // (replication i uses master seed+i).
        for k in 0..256u64 {
            assert_ne!(stream_seed(master, k), stream_seed(master + 1, k));
        }

        // And the streams themselves diverge from the first draw.
        let mut firsts: Vec<u64> = seeds
            .iter()
            .map(|&s| SmallRng::seed_from_u64(s).random::<u64>())
            .collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), seeds.len(), "first draws must be distinct");
    }

    /// The event tie-break key packs (creator, counter): distinct creators
    /// and successive events at one creator never collide, and keys order
    /// lexicographically by (creator, counter) at equal times.
    #[test]
    fn packed_event_keys_are_unique_and_fifo_per_creator() {
        let key = |node: u64, ctr: u64| (node << CTR_BITS) | ctr;
        assert!(key(0, 1) < key(0, 2), "FIFO per creator");
        assert!(
            key(0, (1 << CTR_BITS) - 1) < key(1, 1),
            "creator-major order"
        );
        assert_ne!(key(3, 7), key(7, 3));
        // The packing accommodates MAX_NODES creators.
        let top = (crate::config::MAX_NODES - 1) as u64;
        assert_eq!(key(top, 1) >> CTR_BITS, top);
    }
}
